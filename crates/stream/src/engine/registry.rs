//! Key hashing, per-key seed derivation, and the slab key registry.
//!
//! The registry is the engine's `key → slot` side, deliberately separated
//! from sampler storage: an open-addressing index table of `tag | slot`
//! words over a dense first-touch-ordered key slab. Slot ids are handed
//! to the backing store ([`super::Store`]), which keeps per-key sampler
//! state at the same index — so the registry is identical for both fleet
//! backends and the probe loop never depends on how samplers are laid
//! out.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// FxHash: multiply-rotate hashing as used by rustc. Not cryptographic —
/// exactly what a shard selector wants.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

/// `BuildHasher` for [`FxHasher`], usable as a `HashMap` hasher.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[inline]
pub(crate) fn fx_hash_key<K: Hash>(key: &K) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// SplitMix64 finalizer: decorrelates the per-key seed from the raw key
/// hash so adjacent keys do not get adjacent RNG streams.
#[inline]
pub(crate) fn mix_seed(template_seed: u64, key_hash: u64) -> u64 {
    let mut z = template_seed ^ key_hash.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Empty-bucket sentinel in the open-addressing index table. A real
/// bucket word is `tag | slot` with `slot < u32::MAX`, so all-ones can
/// never collide with one.
const EMPTY: u64 = u64::MAX;

/// High half of a bucket word: the key hash's top 32 bits. Probes
/// compare tags in-register and only touch a key-slab entry on a tag
/// match, so collision probes stay inside the (dense, cache-resident)
/// table.
const TAG_MASK: u64 = 0xffff_ffff_0000_0000;

/// Low half of a bucket word: the slab slot id.
pub(crate) const SLOT_MASK: u64 = 0x0000_0000_ffff_ffff;

/// One shard's `key → u32` side: an open-addressing index table (linear
/// probing, power-of-two capacity, load factor ≤ ½) over a contiguous
/// key slab in first-touch order. The key's hash is *not* cached: the
/// bucket word's 32-bit tag already filters non-matches down to 2⁻³²
/// noise, so key equality is checked directly, and the rare rehash
/// recomputes hashes from the keys.
#[derive(Debug)]
pub(crate) struct KeyRegistry<K> {
    /// `tag | slot` words ([`EMPTY`] = vacant).
    buckets: Vec<u64>,
    /// The key slab: slot id = index.
    keys: Vec<K>,
}

impl<K> KeyRegistry<K> {
    pub(crate) fn new() -> Self {
        Self {
            buckets: vec![EMPTY; 8],
            keys: Vec::new(),
        }
    }

    /// Number of materialized keys.
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// The keys, slot-ordered (= first-touch order).
    pub(crate) fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Index-table + key-slab bookkeeping in words (8 bytes): the tagged
    /// bucket words plus each slab key. Per-key *store* scaffolding (box
    /// pointers on the erased backend; nothing on SoA) is accounted by
    /// the store itself.
    pub(crate) fn overhead_words(&self) -> usize {
        let key_words = std::mem::size_of::<K>().div_ceil(8);
        self.buckets.len() + self.keys.len() * key_words
    }
}

impl<K: Hash + Eq + Clone> KeyRegistry<K> {
    /// Branchless single-bucket read for the staged batch probe: the
    /// bucket word `hash` homes to, regardless of occupancy.
    #[inline]
    pub(crate) fn home_bucket(&self, hash: u64) -> u64 {
        self.buckets[hash as usize & (self.buckets.len() - 1)]
    }

    /// Probe for `key` without materializing.
    pub(crate) fn find(&self, hash: u64, key: &K) -> Option<usize> {
        let mask = self.buckets.len() - 1;
        let tag = hash & TAG_MASK;
        let mut i = hash as usize & mask;
        loop {
            let b = self.buckets[i];
            if b == EMPTY {
                return None;
            }
            if b & TAG_MASK == tag && self.keys[(b & SLOT_MASK) as usize] == *key {
                return Some((b & SLOT_MASK) as usize);
            }
            i = (i + 1) & mask;
        }
    }

    /// Probe for `key`, appending a fresh slot on first touch. Returns
    /// `(slot id, is_new)`; on `is_new` the caller must push matching
    /// per-key sampler state into its store so slot ids stay aligned.
    pub(crate) fn get_or_insert(&mut self, hash: u64, key: &K) -> (usize, bool) {
        let mask = self.buckets.len() - 1;
        let tag = hash & TAG_MASK;
        let mut i = hash as usize & mask;
        loop {
            let b = self.buckets[i];
            if b == EMPTY {
                let id = self.keys.len();
                assert!(id < SLOT_MASK as usize, "shard exceeds u32 slot ids");
                self.keys.push(key.clone());
                // Keep load factor ≤ ½ so probe chains stay short.
                if (id + 1) * 2 > self.buckets.len() {
                    self.grow(); // re-homes every slot, the new one included
                } else {
                    self.buckets[i] = tag | id as u64;
                }
                return (id, true);
            }
            if b & TAG_MASK == tag && self.keys[(b & SLOT_MASK) as usize] == *key {
                return ((b & SLOT_MASK) as usize, false);
            }
            i = (i + 1) & mask;
        }
    }

    /// Double the index table and re-home every slot, recomputing each
    /// key's hash (the slab itself never moves entries; doublings are
    /// O(log keys) events, so the rehash cost is amortized noise).
    fn grow(&mut self) {
        let cap = (self.buckets.len() * 2).max(16);
        self.buckets.clear();
        self.buckets.resize(cap, EMPTY);
        let mask = cap - 1;
        for (id, key) in self.keys.iter().enumerate() {
            let hash = fx_hash_key(key);
            let mut i = hash as usize & mask;
            while self.buckets[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.buckets[i] = (hash & TAG_MASK) | id as u64;
        }
    }
}
