//! The struct-of-arrays store: one monomorphized fleet per shard.
//!
//! [`SoaStore`] is the [`FleetBackend::Soa`] side of a shard: a single
//! enum dispatch **per batch** selects the template's family, and the
//! chosen arm runs a tight monomorphized loop over the fleet's
//! field-major slabs ([`swsample_core::soa`]) — per-key hot heads dense
//! in one array, `k`-slot sample blocks inline, per-key RNGs in a cold
//! lane. Compare the erased store, which pays a vtable call and a
//! scattered ~3-cache-line box per *element*.
//!
//! Slot ids are assigned by the shard's
//! [`KeyRegistry`](super::registry::KeyRegistry); this store only ever
//! appends (`push_key`) and indexes, so the two stay aligned by
//! construction.
//!
//! [`FleetBackend::Soa`]: swsample_core::spec::FleetBackend::Soa

use swsample_core::soa::{SeqWorFleet, SeqWrFleet, StreamLFleet, TsWorFleet, TsWrFleet};
use swsample_core::spec::{Algorithm, Replacement, SamplerSpec, SpecError, WindowKind};
use swsample_core::state::{SamplerState, StateError};
use swsample_core::Sample;

/// A shard's homogeneous fleet, monomorphized per template family.
pub(crate) enum SoaStore<T: Clone> {
    SeqWr(SeqWrFleet<T>),
    SeqWor(SeqWorFleet<T>),
    TsWr(TsWrFleet<T>),
    TsWor(TsWorFleet<T>),
    StreamL(StreamLFleet<T>),
}

impl<T: Clone> SoaStore<T> {
    /// Build the empty fleet for a template, or explain why the template
    /// has no fleet kernel (callers check
    /// [`SamplerSpec::soa_eligible`] first; this error surfaces an
    /// explicit `--backend soa` request over a baseline template).
    pub(crate) fn new(template: &SamplerSpec) -> Result<Self, SpecError> {
        template.validate()?;
        let k = template.k;
        match (template.algorithm, template.window, template.replacement) {
            (Algorithm::Paper, WindowKind::Sequence(n), Replacement::With) => {
                Ok(SoaStore::SeqWr(SeqWrFleet::new(n, k)))
            }
            (Algorithm::Paper, WindowKind::Sequence(n), Replacement::Without) => {
                Ok(SoaStore::SeqWor(SeqWorFleet::new(n, k)))
            }
            (Algorithm::Paper, WindowKind::Timestamp(w), Replacement::With) => {
                Ok(SoaStore::TsWr(TsWrFleet::new(w, k)))
            }
            (Algorithm::Paper, WindowKind::Timestamp(w), Replacement::Without) => {
                Ok(SoaStore::TsWor(TsWorFleet::new(w, k)))
            }
            (Algorithm::ReservoirL, ..) => Ok(SoaStore::StreamL(StreamLFleet::new(k))),
            (algo, ..) => Err(SpecError::Invalid(format!(
                "backend `soa`: algorithm `{}` has no struct-of-arrays \
                 fleet kernel; use `--backend erased`",
                algo.token()
            ))),
        }
    }

    /// Materialize the next key slot with the given derived seed.
    pub(crate) fn push_key(&mut self, seed: u64) {
        match self {
            SoaStore::SeqWr(f) => {
                f.push_key(seed);
            }
            SoaStore::SeqWor(f) => {
                f.push_key(seed);
            }
            SoaStore::TsWr(f) => {
                f.push_key(seed);
            }
            SoaStore::TsWor(f) => {
                f.push_key(seed);
            }
            SoaStore::StreamL(f) => {
                f.push_key(seed);
            }
        }
    }

    /// One key's `k`-sample without mutation, when the family's query is
    /// RNG-free (seq-WR, whole-stream reservoir contents): the engine's
    /// shared-read-lock fast path. `None` means "needs the write lock",
    /// not "empty window".
    pub(crate) fn shared_sample_k(&self, slot: usize) -> Option<Option<Vec<Sample<T>>>> {
        match self {
            SoaStore::SeqWr(f) => Some(f.sample_k(slot)),
            SoaStore::StreamL(f) => Some(f.sample_k(slot)),
            _ => None,
        }
    }

    /// One key's single sample without mutation, where RNG-free (only
    /// seq-WR: its `sample` is defined as the first instance's).
    pub(crate) fn shared_sample(&self, slot: usize) -> Option<Option<Sample<T>>> {
        match self {
            SoaStore::SeqWr(f) => Some(f.sample(slot)),
            _ => None,
        }
    }

    pub(crate) fn sample_k(&mut self, slot: usize) -> Option<Vec<Sample<T>>> {
        match self {
            SoaStore::SeqWr(f) => f.sample_k(slot),
            SoaStore::SeqWor(f) => f.sample_k(slot),
            SoaStore::TsWr(f) => f.sample_k(slot),
            SoaStore::TsWor(f) => f.sample_k(slot),
            SoaStore::StreamL(f) => f.sample_k(slot),
        }
    }

    pub(crate) fn sample(&mut self, slot: usize) -> Option<Sample<T>> {
        match self {
            SoaStore::SeqWr(f) => f.sample(slot),
            SoaStore::SeqWor(f) => f.sample(slot),
            SoaStore::TsWr(f) => f.sample(slot),
            SoaStore::TsWor(f) => f.sample(slot),
            SoaStore::StreamL(f) => f.sample(slot),
        }
    }

    pub(crate) fn memory_words(&self, slot: usize) -> usize {
        match self {
            SoaStore::SeqWr(f) => f.memory_words(slot),
            SoaStore::SeqWor(f) => f.memory_words(slot),
            SoaStore::TsWr(f) => f.memory_words(slot),
            SoaStore::TsWor(f) => f.memory_words(slot),
            SoaStore::StreamL(f) => f.memory_words(slot),
        }
    }

    /// One key's checkpoint record. The fleets emit the *same*
    /// [`SamplerState`] an equivalent boxed sampler would, so snapshots
    /// port between backends (and across shard-count changes).
    pub(crate) fn save_slot(&self, slot: usize) -> Option<SamplerState<T>> {
        match self {
            SoaStore::SeqWr(f) => f.save_slot(slot),
            SoaStore::SeqWor(f) => f.save_slot(slot),
            SoaStore::TsWr(f) => f.save_slot(slot),
            SoaStore::TsWor(f) => f.save_slot(slot),
            SoaStore::StreamL(f) => f.save_slot(slot),
        }
    }

    /// Overwrite one key's slab state from a checkpoint record.
    pub(crate) fn restore_slot(
        &mut self,
        slot: usize,
        state: SamplerState<T>,
    ) -> Result<(), StateError> {
        match self {
            SoaStore::SeqWr(f) => f.restore_slot(slot, state),
            SoaStore::SeqWor(f) => f.restore_slot(slot, state),
            SoaStore::TsWr(f) => f.restore_slot(slot, state),
            SoaStore::TsWor(f) => f.restore_slot(slot, state),
            SoaStore::StreamL(f) => f.restore_slot(slot, state),
        }
    }
}
