//! Skip-ahead sampling of reservoir acceptance gaps (Vitter \[60\] §4 /
//! Li \[53\], adapted to the paper's per-bucket reservoirs).
//!
//! A k=1 reservoir offers element `c` (1-based) an *independent*
//! Bernoulli(1/c) acceptance — the record process. Instead of paying one
//! RNG draw per arrival to realize each Bernoulli, [`record_skip`] draws
//! the index of the **next** acceptance directly from the gap
//! distribution: conditioned on an acceptance at count `m`,
//!
//! ```text
//! P(next > x) = m/x,          P(next = c) = m / (c (c − 1)),
//! ```
//!
//! so arrivals between acceptances cost *zero* draws, and a window of `n`
//! arrivals triggers only `H(n) = Θ(log n)` acceptances in expectation
//! (`O(log n)` w.h.p. — Chernoff over the independent indicators).
//!
//! Unlike the classic float inversion (`ceil(m/U)`), the sampler here is
//! **exact**: it composes an octave search — `P(next > 2a | next > a) =
//! (m/2a)/(m/a) = 1/2` exactly, so one fair coin per doubling — with an
//! integer rejection step inside the located octave, all realized through
//! the exactly-uniform `gen_range` and the 128-bit
//! `bernoulli_ratio` (in the crate-private `rngutil` module) primitive. The naive per-arrival
//! path and this skip path are therefore *distribution-identical*, not
//! merely approximately so; the statistical tests in `seq::wr` hold both
//! to the same chi-square thresholds.
//!
//! [`geometric_skip`] covers the constant-probability tail regime needed
//! by chain sampling (adoption probability frozen at `1/(n+1)` once the
//! window fills); its inverse transform goes through `f64`, which is fine
//! there because chain sampling is a *baseline* whose own guarantees are
//! already randomized.

use crate::rngutil::{bernoulli_ratio, BitSource};
use rand::Rng;

/// Next acceptance of the record process after an acceptance at count `m`,
/// truncated at `cap`: returns `Some(c)` with `m < c ≤ cap` distributed as
/// `P(c) = m/(c(c−1))`, or `None` when the next acceptance falls beyond
/// `cap` (probability exactly `m/cap`).
///
/// Counts are 1-based: the element at count `c` is the `c`-th offered to
/// the reservoir, and count 1 is always accepted (use `m = 1` after it).
///
/// Expected RNG draws: `O(1)` coins for the octave search plus an
/// accept-rate ≳ 1/2 rejection loop — independent of `cap`. The octave
/// coins within one call are served from a transient [`BitSource`];
/// callers that skip repeatedly (chain sampling's per-instance schedulers)
/// should hold a persistent `BitSource` and use [`record_skip_with_bits`],
/// which amortizes one RNG word over up to 64 coins *across* calls.
///
/// # Panics
/// Panics if `m == 0` or `cap > 2^62` (headroom for the octave doubling).
pub fn record_skip<R: Rng>(rng: &mut R, m: u64, cap: u64) -> Option<u64> {
    record_skip_with_bits(rng, &mut BitSource::new(), m, cap)
}

/// [`record_skip`] drawing its octave coins from a caller-held
/// [`BitSource`], so the coin cost amortizes across calls (64 coins per
/// RNG word). The result distribution is identical — the buffered bits
/// are exactly-fair, independent coins.
///
/// # Panics
/// Panics if `m == 0` or `cap > 2^62` (headroom for the octave doubling).
pub fn record_skip_with_bits<R: Rng>(
    rng: &mut R,
    bits: &mut BitSource,
    m: u64,
    cap: u64,
) -> Option<u64> {
    assert!(m >= 1, "record_skip: count must be 1-based");
    assert!(cap <= 1 << 62, "record_skip: cap too large");
    if m >= cap {
        return None;
    }
    // Octave search: survival halves exactly at each doubling, so a fair
    // coin decides `next ∈ (a, 2a]` vs `next > 2a`.
    let mut a = m;
    loop {
        if a >= cap {
            return None;
        }
        if bits.bit(rng) {
            break;
        }
        a *= 2;
    }
    // Within (a, 2a] the gap law is p(c) ∝ 1/(c(c−1)). Propose uniformly
    // and accept with probability a(a+1)/(c(c−1)) ≤ 1 (equality at c=a+1);
    // overall acceptance rate is at least 1/2.
    loop {
        let c = rng.gen_range(a + 1..=2 * a);
        let num = a as u128 * (a as u128 + 1);
        let den = c as u128 * (c as u128 - 1);
        if bernoulli_ratio(rng, num, den) {
            return if c > cap { None } else { Some(c) };
        }
    }
}

/// Number of failures before the first success of independent
/// Bernoulli(1/den) trials — the skip length of a constant-probability
/// acceptance process (chain sampling's steady state).
///
/// Sampled by inverse transform through `f64`; the ≈2⁻⁵³ rounding bias is
/// far below what any statistical test in this workspace can resolve.
///
/// # Panics
/// Panics if `den == 0`.
pub fn geometric_skip<R: Rng>(rng: &mut R, den: u64) -> u64 {
    assert!(den >= 1, "geometric_skip: zero denominator");
    if den == 1 {
        return 0; // success probability 1: no failures possible
    }
    let ln_q = (1.0 - 1.0 / den as f64).ln();
    loop {
        let u: f64 = rng.gen_range(0.0..1.0);
        if u > 0.0 {
            let s = (u.ln() / ln_q).floor();
            if s.is_finite() && s >= 0.0 {
                // Clamp astronomically long skips so the cast is sound.
                return s.min(9.0e18) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::{chi_square_test, chi_square_uniform_test};

    #[test]
    fn first_count_is_never_skipped_from_zero_gap() {
        // m >= cap means no acceptance can remain below the cap.
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(record_skip(&mut rng, 5, 5), None);
        assert_eq!(record_skip(&mut rng, 9, 4), None);
    }

    #[test]
    fn gap_law_matches_exact_probabilities() {
        // P(c) = m/(c(c-1)) for c in (m, cap], P(None) = m/cap.
        let (m, cap) = (3u64, 12u64);
        let trials = 200_000u64;
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0u64; (cap - m + 1) as usize]; // last bin = None
        for _ in 0..trials {
            match record_skip(&mut rng, m, cap) {
                Some(c) => counts[(c - m - 1) as usize] += 1,
                None => counts[(cap - m) as usize] += 1,
            }
        }
        let mut probs: Vec<f64> = ((m + 1)..=cap)
            .map(|c| m as f64 / (c as f64 * (c - 1) as f64))
            .collect();
        probs.push(m as f64 / cap as f64);
        let out = chi_square_test(&counts, &probs);
        assert!(out.p_value > 1e-4, "gap law off: p = {}", out.p_value);
    }

    #[test]
    fn skip_process_equals_naive_record_process() {
        // Run a full k=1 reservoir over n elements both ways; the final
        // accepted position must be uniform over 0..n in both.
        let n = 32u64;
        let trials = 60_000u64;
        let mut counts = vec![0u64; n as usize];
        for t in 0..trials {
            let mut rng = SmallRng::seed_from_u64(10_000 + t);
            let mut last = 0u64; // count 1 always accepts
            let mut m = 1u64;
            while let Some(c) = record_skip(&mut rng, m, n) {
                last = c - 1;
                m = c;
            }
            counts[last as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "skip-driven reservoir not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn acceptances_per_window_are_logarithmic() {
        // The number of acceptances over n arrivals is 1 + sum of
        // Bernoulli(1/c): mean H(n), O(log n) w.h.p. With n = 4096 and
        // 2000 windows, the max must stay below 4·H(n) comfortably.
        let n = 4096u64;
        let mut rng = SmallRng::seed_from_u64(2);
        let mut max_accepts = 0u64;
        let mut total = 0u64;
        for _ in 0..2000 {
            let mut accepts = 1u64; // count 1
            let mut m = 1u64;
            while let Some(c) = record_skip(&mut rng, m, n) {
                accepts += 1;
                m = c;
            }
            max_accepts = max_accepts.max(accepts);
            total += accepts;
        }
        let h_n = (n as f64).ln() + 0.5772;
        let mean = total as f64 / 2000.0;
        assert!(
            (mean - h_n).abs() < 0.5,
            "mean acceptances {mean} far from H(n) = {h_n}"
        );
        assert!(
            (max_accepts as f64) < 4.0 * h_n,
            "max acceptances {max_accepts} not O(log n)"
        );
    }

    #[test]
    fn shared_bit_source_pins_the_octave_coin_savings() {
        use crate::rng::CountingRng;
        // Reference: the pre-BitSource shape — one full RNG word per octave
        // coin (`gen_range(0..2)`), same search, same rejection step.
        fn record_skip_word_coins<R: rand::Rng>(rng: &mut R, m: u64, cap: u64) -> Option<u64> {
            let mut a = m;
            loop {
                if a >= cap {
                    return None;
                }
                if rng.gen_range(0..2u64) == 0 {
                    break;
                }
                a *= 2;
            }
            loop {
                let c = rng.gen_range(a + 1..=2 * a);
                let num = a as u128 * (a as u128 + 1);
                let den = c as u128 * (c as u128 - 1);
                if bernoulli_ratio(rng, num, den) {
                    return if c > cap { None } else { Some(c) };
                }
            }
        }
        // Chain-sampling warm-up shape: restart the record process from
        // m = 1 over a 2^16 window, repeatedly. Coins dominate (octave
        // doubles ~16 times from small m), so packing 64 coins per word
        // must cut the word count well below the reference.
        let cap = 1 << 16;
        let runs = 2_000u64;
        let mut reference = CountingRng::new(SmallRng::seed_from_u64(5));
        for _ in 0..runs {
            let mut m = 1u64;
            while let Some(c) = record_skip_word_coins(&mut reference, m, cap) {
                m = c;
            }
        }
        let mut packed = CountingRng::new(SmallRng::seed_from_u64(5));
        let mut bits = BitSource::new();
        for _ in 0..runs {
            let mut m = 1u64;
            while let Some(c) = record_skip_with_bits(&mut packed, &mut bits, m, cap) {
                m = c;
            }
        }
        // The rejection-phase words (uniform proposal + bernoulli) are
        // identical on both sides; the packing eliminates essentially all
        // octave-coin words, which is ≳ 20% of the total in this regime.
        assert!(
            packed.words() * 5 <= reference.words() * 4,
            "bit packing saved too little: {} vs {} words",
            packed.words(),
            reference.words()
        );
    }

    #[test]
    fn geometric_skip_mean_matches() {
        // failures ~ Geometric(p = 1/den): mean (1-p)/p = den - 1.
        let den = 16u64;
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 100_000u64;
        let sum: u64 = (0..trials).map(|_| geometric_skip(&mut rng, den)).sum();
        let mean = sum as f64 / trials as f64;
        assert!(
            (mean - (den - 1) as f64).abs() < 0.3,
            "geometric mean {mean} vs expected {}",
            den - 1
        );
    }

    #[test]
    fn geometric_skip_degenerate() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(geometric_skip(&mut rng, 1), 0);
        }
    }
}
