//! The persistent shard-worker pool behind
//! [`MultiStreamEngine::ingest_parallel`](super::MultiStreamEngine::ingest_parallel).

use std::hash::Hash;
use std::sync::mpsc;
use std::sync::{Arc, RwLock};

use super::{KeyedEvent, Route, Shard};

/// One parallel-ingestion work item: a shard plus its portion of the
/// batch (with the route precomputed by the dispatching thread).
pub(crate) struct IngestJob<K, T: Clone> {
    pub(crate) shard: Arc<RwLock<Shard<K, T>>>,
    pub(crate) batch: Vec<KeyedEvent<K, T>>,
    pub(crate) route: Route,
    pub(crate) done: mpsc::Sender<()>,
}

/// A persistent pool of `std::thread` ingestion workers fed
/// [`IngestJob`]s over channels.
///
/// Shard-ownership is the safety argument: within one
/// `ingest_parallel` call each shard appears in at most one job, and
/// calls are separated by a completion barrier, so no two jobs of one
/// call ever contend on a shard — each worker takes the shard's write
/// lock for the duration of its job, which also lets read-only queries
/// on *other* shards proceed concurrently. Workers hold nothing between
/// jobs; the pool dies with the engine (dropping the senders ends every
/// worker loop).
pub(crate) struct ShardWorkerPool<K, T: Clone> {
    senders: Vec<mpsc::Sender<IngestJob<K, T>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<K, T> ShardWorkerPool<K, T>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    pub(crate) fn spawn(threads: usize) -> Self {
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, rx) = mpsc::channel::<IngestJob<K, T>>();
            let handle = std::thread::Builder::new()
                .name(format!("swsample-shard-worker-{w}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job.shard
                            .write()
                            .expect("shard lock poisoned")
                            .ingest(&job.batch, &job.route);
                        // Receiver gone means the dispatcher already
                        // panicked; nothing left to signal.
                        let _ = job.done.send(());
                    }
                })
                .expect("spawn shard worker");
            senders.push(tx);
            handles.push(handle);
        }
        Self { senders, handles }
    }

    pub(crate) fn threads(&self) -> usize {
        self.senders.len()
    }

    pub(crate) fn sender(&self, worker: usize) -> &mpsc::Sender<IngestJob<K, T>> {
        &self.senders[worker]
    }
}

impl<K, T: Clone> Drop for ShardWorkerPool<K, T> {
    fn drop(&mut self) {
        self.senders.clear(); // closes every channel; workers exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
