//! E12 / E14 — structural properties: independence of disjoint windows
//! (§1.3.4) and the step-biased sampling extension (§5).

use crate::{f3, table_header, table_row};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample_apps::biased::{BiasStep, StepBiasedSampler};
use swsample_core::seq::SeqSamplerWr;
use swsample_core::WindowSampler;
use swsample_stats::{chi_square_test, chi_square_uniform_test};

/// E12: samples taken over non-overlapping windows are independent
/// (§1.3.4) — the joint distribution over the two window positions must be
/// the product of uniforms.
pub fn e12_independence() {
    let n = 8u64;
    let trials = 60_000u64;
    let mut joint = vec![0u64; (n * n) as usize];
    for t in 0..trials {
        let mut s = SeqSamplerWr::new(n, 1, SmallRng::seed_from_u64(2_000_000 + t));
        // First window: arrivals 0..8 -> query; second: arrivals 8..16
        // (disjoint) -> query.
        for i in 0..n {
            s.insert(i);
        }
        let first = s.sample().expect("nonempty").index();
        for i in n..2 * n {
            s.insert(i);
        }
        let second = s.sample().expect("nonempty").index() - n;
        joint[(first * n + second) as usize] += 1;
    }
    let out = chi_square_uniform_test(&joint);
    table_header(
        "E12 — §1.3.4 independence of disjoint windows (n = 8, 60k trials)",
        &["joint cells", "chi² statistic", "dof", "p-value"],
    );
    table_row(&[
        (n * n).to_string(),
        f3(out.statistic),
        out.dof.to_string(),
        f3(out.p_value),
    ]);
    assert!(
        out.p_value > 1e-5,
        "E12: disjoint-window samples look dependent"
    );
}

/// E14: step-biased sampling (§5) — realized age distribution vs the step
/// specification.
pub fn e14_step_biased() {
    let steps = [
        BiasStep {
            window: 8,
            weight: 2.0,
        },
        BiasStep {
            window: 32,
            weight: 1.0,
        },
        BiasStep {
            window: 128,
            weight: 1.0,
        },
    ];
    let trials = 40_000u64;
    let mut counts = vec![0u64; 128];
    for t in 0..trials {
        let mut s: StepBiasedSampler<u64, SmallRng> =
            StepBiasedSampler::new(&steps, SmallRng::seed_from_u64(3_000_000 + t));
        for i in 0..256u64 {
            s.insert(i);
        }
        let mut rng = SmallRng::seed_from_u64(7_000_000 + t);
        let got = s.sample(&mut rng).expect("nonempty");
        counts[(255 - got.index()) as usize] += 1;
    }
    let spec: StepBiasedSampler<u64, SmallRng> =
        StepBiasedSampler::new(&steps, SmallRng::seed_from_u64(0));
    let probs: Vec<f64> = (0..128).map(|a| spec.step_probability(a)).collect();
    let out = chi_square_test(&counts, &probs);
    table_header(
        "E14 — §5 step-biased sampling: realized vs specified age distribution",
        &["ages", "spec steps", "chi² statistic", "p-value"],
    );
    table_row(&[
        "0..128".into(),
        format!("{:?}", [8u64, 32, 128]),
        f3(out.statistic),
        f3(out.p_value),
    ]);
    // Spot-check the three plateau levels.
    let measured_level = |lo: usize, hi: usize| -> f64 {
        let total: u64 = counts[lo..hi].iter().sum();
        total as f64 / trials as f64 / (hi - lo) as f64
    };
    table_header(
        "E14b — plateau levels (probability per age)",
        &["age range", "specified", "measured"],
    );
    for (lo, hi) in [(0usize, 8usize), (8, 32), (32, 128)] {
        table_row(&[
            format!("{lo}..{hi}"),
            f3(spec.step_probability(lo as u64)),
            f3(measured_level(lo, hi)),
        ]);
    }
    assert!(out.p_value > 1e-5, "E14: biased sampler off specification");
}
