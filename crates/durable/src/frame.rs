//! CRC-framed record I/O — the one wire shape every durable file uses:
//! `[len u32 LE][crc32(payload) u32 LE][payload]`.
//!
//! Reading distinguishes three outcomes: a valid frame, a clean EOF
//! exactly on a frame boundary, and a *torn* read — incomplete header,
//! short payload, implausible length, or checksum mismatch. Whether a
//! torn read is tolerable (the final record of the final WAL segment
//! after a crash) or fatal (anywhere else) is the caller's call; the
//! frame layer only ever reports it.

use std::io::{self, Read, Write};

use swsample_core::state::crc32;

/// Bytes of framing ahead of each payload (`len` + `crc`).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on a single frame's payload. Nothing legitimate comes
/// close; a length above this is treated as framing corruption rather
/// than an allocation request.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

/// Outcome of [`read_frame`].
#[derive(Debug)]
pub enum FrameRead {
    /// A complete, checksum-valid frame.
    Frame(Vec<u8>),
    /// Clean end of input, exactly on a frame boundary.
    Eof,
    /// The stream ended mid-frame or the frame failed validation; the
    /// string says how. The reader may have consumed bytes.
    Torn(String),
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES as usize);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Read as many bytes as available into `buf`, returning how many were
/// read (short only at end of input).
fn read_up_to(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Read one frame. `Err` is reserved for real I/O failures; malformed
/// bytes come back as [`FrameRead::Torn`].
pub fn read_frame(r: &mut impl Read) -> io::Result<FrameRead> {
    read_frame_capped(r, MAX_FRAME_BYTES)
}

/// [`read_frame`] with a caller-chosen payload cap. Network servers use
/// a much tighter bound than the on-disk [`MAX_FRAME_BYTES`]: a length
/// prefix above the cap is torn framing, not an allocation request.
pub fn read_frame_capped(r: &mut impl Read, max_payload: u32) -> io::Result<FrameRead> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    let got = read_up_to(r, &mut header)?;
    if got == 0 {
        return Ok(FrameRead::Eof);
    }
    if got < FRAME_HEADER_BYTES {
        return Ok(FrameRead::Torn(format!(
            "truncated frame header: {got} of {FRAME_HEADER_BYTES} bytes"
        )));
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let stored_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > max_payload {
        return Ok(FrameRead::Torn(format!(
            "implausible frame length {len} (cap {max_payload})"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_up_to(r, &mut payload)?;
    if got < payload.len() {
        return Ok(FrameRead::Torn(format!(
            "truncated frame payload: {got} of {len} bytes"
        )));
    }
    let actual = crc32(&payload);
    if actual != stored_crc {
        return Ok(FrameRead::Torn(format!(
            "frame checksum mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(FrameRead::Frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            write_frame(&mut out, p).expect("vec write");
        }
        out
    }

    #[test]
    fn round_trips_multiple_frames() {
        let bytes = framed(&[b"alpha", b"", b"gamma gamma"]);
        let mut r = &bytes[..];
        for expected in [&b"alpha"[..], b"", b"gamma gamma"] {
            match read_frame(&mut r).expect("io") {
                FrameRead::Frame(p) => assert_eq!(p, expected),
                other => panic!("expected frame, got {other:?}"),
            }
        }
        assert!(matches!(read_frame(&mut r).expect("io"), FrameRead::Eof));
    }

    #[test]
    fn every_truncation_is_torn_never_panics() {
        let bytes = framed(&[b"payload goes here"]);
        for cut in 1..bytes.len() {
            let mut r = &bytes[..cut];
            match read_frame(&mut r).expect("io") {
                FrameRead::Torn(_) => {}
                other => panic!("cut at {cut}: expected torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = framed(&[b"sensitive"]);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[i] ^= 1 << bit;
                let mut r = &mutated[..];
                match read_frame(&mut r).expect("io") {
                    // A flip in the length field may leave a "valid"
                    // short frame whose crc then mismatches, or ask for
                    // more bytes than exist — both are torn. A flip
                    // anywhere else breaks the checksum.
                    FrameRead::Torn(_) => {}
                    FrameRead::Frame(p) => {
                        panic!("flip at byte {i} bit {bit} accepted: {p:?}")
                    }
                    FrameRead::Eof => panic!("flip at byte {i} bit {bit} read as eof"),
                }
            }
        }
    }

    #[test]
    fn implausible_length_does_not_allocate() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut r = &bytes[..];
        assert!(matches!(
            read_frame(&mut r).expect("io"),
            FrameRead::Torn(_)
        ));
    }

    #[test]
    fn capped_reader_rejects_frames_over_the_cap() {
        let bytes = framed(&[&[0u8; 100]]);
        let mut r = &bytes[..];
        assert!(matches!(
            read_frame_capped(&mut r, 64).expect("io"),
            FrameRead::Torn(_)
        ));
        let mut r = &bytes[..];
        assert!(matches!(
            read_frame_capped(&mut r, 100).expect("io"),
            FrameRead::Frame(p) if p.len() == 100
        ));
    }
}
