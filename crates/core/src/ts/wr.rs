//! Sampling **with replacement** from timestamp-based windows
//! (§3, Theorem 3.9): `k` independent single-sample engines.

use super::engine::TsEngine;
use crate::memory::MemoryWords;
use crate::sample::Sample;
use crate::track::{NullTracker, SampleTracker};
use crate::traits::WindowSampler;
use rand::Rng;

/// `k` independent uniform samples, *with replacement*, over a timestamp
/// window of width `t0` — `O(k log n)` memory words, deterministic.
///
/// ```
/// use swsample_core::ts::TsSamplerWr;
/// use swsample_core::WindowSampler;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut s = TsSamplerWr::new(60, 2, SmallRng::seed_from_u64(9));
/// for tick in 0..1000u64 {
///     s.advance_time(tick);
///     s.insert(tick * 7); // one arrival per tick
/// }
/// let samples = s.sample_k().unwrap();
/// assert_eq!(samples.len(), 2);
/// for smp in samples {
///     assert!(999 - smp.timestamp() < 60); // all active
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TsSamplerWr<T, R, K: SampleTracker<T> = NullTracker> {
    engines: Vec<TsEngine<T, K>>,
    rng: R,
    now: u64,
    next_index: u64,
}

impl<T: Clone, R: Rng> TsSamplerWr<T, R, NullTracker> {
    /// Sampler over windows of width `t0 ≥ 1` keeping `k ≥ 1` independent
    /// samples.
    pub fn new(t0: u64, k: usize, rng: R) -> Self {
        Self::with_tracker(t0, k, rng, NullTracker)
    }
}

impl<T: Clone, R: Rng, K: SampleTracker<T> + Clone> TsSamplerWr<T, R, K> {
    /// Like [`TsSamplerWr::new`] with a per-candidate suffix tracker
    /// (Theorem 5.1 support — each engine gets a clone of `tracker`).
    pub fn with_tracker(t0: u64, k: usize, rng: R, tracker: K) -> Self {
        assert!(k >= 1, "TsSamplerWr: k must be at least 1");
        Self {
            engines: (0..k)
                .map(|_| TsEngine::with_tracker(t0, tracker.clone()))
                .collect(),
            rng,
            now: 0,
            next_index: 0,
        }
    }

    /// Draw the `k` samples together with their tracker statistics;
    /// `None` when the window is empty.
    pub fn sample_k_with_stats(&mut self) -> Option<Vec<(Sample<T>, K::Stat)>> {
        let mut out = Vec::with_capacity(self.engines.len());
        for e in &mut self.engines {
            out.push(e.sample_with_stat(&mut self.rng)?);
        }
        Some(out)
    }

    /// Window width `t0`.
    pub fn window(&self) -> u64 {
        self.engines[0].window()
    }

    /// Current clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total arrivals observed.
    pub fn len_seen(&self) -> u64 {
        self.next_index
    }
}

impl<T, R, K: SampleTracker<T>> MemoryWords for TsSamplerWr<T, R, K> {
    fn memory_words(&self) -> usize {
        self.engines.memory_words() + 2 // + (now, next_index)
    }
}

impl<T: Clone, R: Rng, K: SampleTracker<T>> WindowSampler<T> for TsSamplerWr<T, R, K> {
    fn advance_time(&mut self, now: u64) {
        assert!(now >= self.now, "TsSamplerWr: clock moved backwards");
        self.now = now;
        for e in &mut self.engines {
            e.advance_time(now);
        }
    }

    fn insert(&mut self, value: T) {
        let idx = self.next_index;
        self.next_index += 1;
        for e in &mut self.engines {
            e.insert(&mut self.rng, value.clone(), idx, self.now);
        }
    }

    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        // Engine-major iteration: each engine ingests the whole run while
        // its covering decomposition is hot in cache, instead of touching
        // all k coverings per arrival. Engines are independent, so the
        // reordering of RNG consumption across engines leaves every
        // engine's distribution unchanged.
        let first = self.next_index;
        self.next_index += values.len() as u64;
        let now = self.now;
        for e in &mut self.engines {
            for (j, v) in values.iter().enumerate() {
                e.insert(&mut self.rng, v.clone(), first + j as u64, now);
            }
        }
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        self.engines[0].sample(&mut self.rng)
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        let mut out = Vec::with_capacity(self.engines.len());
        for e in &mut self.engines {
            out.push(e.sample(&mut self.rng)?);
        }
        Some(out)
    }

    fn k(&self) -> usize {
        self.engines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    #[test]
    fn empty_returns_none() {
        let mut s: TsSamplerWr<u64, _> = TsSamplerWr::new(5, 3, SmallRng::seed_from_u64(0));
        assert!(s.sample().is_none());
        assert!(s.sample_k().is_none());
    }

    #[test]
    fn k_samples_all_active() {
        let mut s = TsSamplerWr::new(8, 4, SmallRng::seed_from_u64(1));
        for tick in 0..100u64 {
            s.advance_time(tick);
            s.insert(tick);
            let got = s.sample_k().expect("nonempty");
            assert_eq!(got.len(), 4);
            for smp in got {
                assert!(tick - smp.timestamp() < 8);
            }
        }
    }

    #[test]
    fn joint_distribution_of_two_engines_is_product() {
        // k = 2 independent engines over a 3-element window.
        let trials = 40_000u64;
        let mut counts = vec![0u64; 9];
        for t in 0..trials {
            let mut s = TsSamplerWr::new(3, 2, SmallRng::seed_from_u64(50_000 + t));
            for tick in 0..10u64 {
                s.advance_time(tick);
                s.insert(tick);
            }
            let got = s.sample_k().expect("nonempty");
            let a = got[0].index() - 7;
            let b = got[1].index() - 7;
            counts[(a * 3 + b) as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "joint not product-uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn memory_linear_in_k() {
        let mut one = TsSamplerWr::new(16, 1, SmallRng::seed_from_u64(2));
        let mut four = TsSamplerWr::new(16, 4, SmallRng::seed_from_u64(3));
        for tick in 0..200u64 {
            one.advance_time(tick);
            four.advance_time(tick);
            for _ in 0..4 {
                one.insert(tick);
                four.insert(tick);
            }
        }
        let (m1, m4) = (one.memory_words(), four.memory_words());
        assert!(m4 <= 4 * m1 + 8, "k=4 memory {m4} vs k=1 {m1}");
    }

    #[test]
    fn expiry_empties_sampler() {
        let mut s = TsSamplerWr::new(5, 2, SmallRng::seed_from_u64(4));
        s.advance_time(0);
        s.insert(1u64);
        s.advance_time(100);
        assert!(s.sample_k().is_none());
    }

    #[test]
    fn tracker_counts_suffix_occurrences_on_ts_windows() {
        use crate::track::OccurrenceTracker;
        // Constant stream: the sampled element's suffix count must equal
        // (total arrivals − sample index), exactly as for sequence windows.
        let mut s = TsSamplerWr::with_tracker(10, 1, SmallRng::seed_from_u64(5), OccurrenceTracker);
        let total = 30u64;
        for tick in 0..total {
            s.advance_time(tick);
            s.insert(7u64);
        }
        let (smp, (val, count)) = s
            .sample_k_with_stats()
            .expect("nonempty")
            .pop()
            .expect("k = 1");
        assert_eq!(val, 7);
        assert_eq!(count, total - smp.index());
    }

    #[test]
    fn tracker_stat_survives_merges_and_straddle() {
        use crate::track::OccurrenceTracker;
        // Mixed values; the stat must always count occurrences of the
        // sampled value from its position onward, whatever bucket merges or
        // case-2 transitions happened in between.
        let mut s = TsSamplerWr::with_tracker(6, 1, SmallRng::seed_from_u64(6), OccurrenceTracker);
        let mut values = Vec::new();
        let mut idx = 0u64;
        for tick in 0..60u64 {
            s.advance_time(tick);
            for j in 0..(tick % 3) + 1 {
                let v = (tick + j) % 4;
                s.insert(v);
                values.push(v);
                idx += 1;
            }
            if let Some((smp, (val, count))) = s.sample_k_with_stats().and_then(|mut v| v.pop()) {
                let truth = values[smp.index() as usize..]
                    .iter()
                    .filter(|&&x| x == val)
                    .count() as u64;
                assert_eq!(count, truth, "stat mismatch at tick {tick} (idx {idx})");
            }
        }
    }
}
