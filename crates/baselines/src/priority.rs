//! Priority sampling (Babcock, Datar, Motwani — SODA'02) for
//! timestamp-based windows.
//!
//! Every element draws a uniform priority; the window sample is the active
//! element of highest priority. It suffices to store the *right-maxima*:
//! elements whose priority exceeds that of every later element — the
//! stored set forms a descending-priority list whose head is always the
//! answer. The expected stored count over a window of `n` elements is
//! `H_n = Θ(log n)` per instance, but the bound is randomized: no
//! deterministic ceiling exists (Lemma 3.10's schedule forces `Ω(log n)`
//! *and* the constant is luck-dependent — see experiments E4/E6).
//!
//! Unlike reservoir-style acceptance (see `swsample_core::skip`), priority
//! sampling admits **no** skip-ahead: every arrival is provisionally a
//! right-maximum (it is the newest active element, hence survives expiry
//! the longest) and so must draw a priority and be pushed; there are no
//! "non-accepted" arrivals to hop over. The optimized form here instead
//! (a) draws raw `u64` priorities — one RNG word and an integer compare,
//! no floating-point conversion (ties have probability ≈ n²·2⁻⁶⁴,
//! statistically invisible) — and (b) ingests batches instance-major so
//! each right-maxima deque stays hot in cache.
//!
//! # Why the `k` priorities per element cannot be shared
//!
//! The `k` draws per arrival (`draws_per_element = k` in
//! `BENCH_throughput.json`) look redundant next to
//! [`PriorityTopK`](crate::PriorityTopK), which draws **one** priority per
//! element for a whole `k`-sample. The difference is the sampling mode.
//! `PriorityTopK` answers the *without-replacement* query: the top-`k`
//! priorities of distinct elements are automatically distinct elements,
//! so one priority per element suffices. `PrioritySampler` answers the
//! *with-replacement* query of BDM'02: `k` **mutually independent**
//! uniform samples. An element's priority is the sole source of
//! randomness in an instance's answer — two instances fed identical
//! priorities maintain identical right-maxima lists and return the *same*
//! element forever, collapsing the joint distribution from the product of
//! uniforms to its diagonal (every WR estimator built on independence,
//! e.g. variance via independent replicas, silently breaks). So the
//! replication is load-bearing, not waste:
//! `shared_priorities_collapse_the_joint_distribution` below demonstrates
//! the collapse, and `k_instances_are_mutually_independent` pins the
//! product law that the per-instance draws buy.

use rand::Rng;
use std::collections::VecDeque;
use swsample_core::state::{self, SamplerState, StateError};
use swsample_core::{MemoryWords, Sample, WindowSampler};

/// One priority-sampling instance: the right-maxima list.
#[derive(Debug, Clone)]
struct PriorityInstance<T> {
    /// `(element, priority)`, descending priority, ascending arrival.
    stack: VecDeque<(Sample<T>, u64)>,
}

impl<T: Clone> PriorityInstance<T> {
    fn new() -> Self {
        Self {
            stack: VecDeque::new(),
        }
    }

    fn insert<R: Rng>(&mut self, rng: &mut R, value: &T, idx: u64, ts: u64) {
        let priority: u64 = rng.gen();
        while self.stack.back().is_some_and(|(_, p)| *p < priority) {
            self.stack.pop_back();
        }
        self.stack
            .push_back((Sample::new(value.clone(), idx, ts), priority));
    }

    fn expire(&mut self, now: u64, t0: u64) {
        while self
            .stack
            .front()
            .is_some_and(|(s, _)| now - s.timestamp() >= t0)
        {
            self.stack.pop_front();
        }
    }

    fn sample(&self) -> Option<&Sample<T>> {
        self.stack.front().map(|(s, _)| s)
    }
}

impl<T> PriorityInstance<T> {
    fn words(&self) -> usize {
        // value + index + ts + priority per stored element.
        self.stack.len() * 4
    }
}

/// `k` independent priority samplers over a timestamp window of width `t0`
/// — sampling with replacement, expected `O(k log n)` but randomized memory.
#[derive(Debug, Clone)]
pub struct PrioritySampler<T, R> {
    t0: u64,
    now: u64,
    next_index: u64,
    rng: R,
    instances: Vec<PriorityInstance<T>>,
}

impl<T: Clone, R: Rng> PrioritySampler<T, R> {
    /// Priority sampler over windows of width `t0 ≥ 1` with `k ≥ 1`
    /// independent samples.
    pub fn new(t0: u64, k: usize, rng: R) -> Self {
        assert!(t0 >= 1 && k >= 1);
        Self {
            t0,
            now: 0,
            next_index: 0,
            rng,
            instances: (0..k).map(|_| PriorityInstance::new()).collect(),
        }
    }

    /// Largest stored right-maxima list across instances.
    pub fn max_stored(&self) -> usize {
        self.instances
            .iter()
            .map(|i| i.stack.len())
            .max()
            .unwrap_or(0)
    }
}

impl<T, R> MemoryWords for PrioritySampler<T, R> {
    fn memory_words(&self) -> usize {
        self.instances
            .iter()
            .map(PriorityInstance::words)
            .sum::<usize>()
            + 3
    }
}

impl<T: Clone, R: Rng + 'static> WindowSampler<T> for PrioritySampler<T, R> {
    fn advance_time(&mut self, now: u64) {
        assert!(now >= self.now, "PrioritySampler: clock moved backwards");
        self.now = now;
        for i in &mut self.instances {
            i.expire(now, self.t0);
        }
    }

    fn insert(&mut self, value: T) {
        let idx = self.next_index;
        self.next_index += 1;
        for i in &mut self.instances {
            i.insert(&mut self.rng, &value, idx, self.now);
        }
    }

    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        // Instance-major: each right-maxima deque consumes the whole run
        // while hot in cache (no skip exists for priority sampling — see
        // the module docs — so locality is the available win).
        let first = self.next_index;
        let now = self.now;
        for inst in &mut self.instances {
            for (j, v) in values.iter().enumerate() {
                inst.insert(&mut self.rng, v, first + j as u64, now);
            }
        }
        self.next_index += values.len() as u64;
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        self.instances[0].sample().cloned()
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        self.instances.iter().map(|i| i.sample().cloned()).collect()
    }

    fn k(&self) -> usize {
        self.instances.len()
    }

    fn save_state(&self) -> Option<SamplerState<T>> {
        Some(SamplerState::Priority {
            now: self.now,
            next_index: self.next_index,
            rng: state::capture_rng(&self.rng)?,
            stacks: self
                .instances
                .iter()
                .map(|i| i.stack.iter().cloned().collect())
                .collect(),
        })
    }

    fn restore_state(&mut self, state: SamplerState<T>) -> Result<(), StateError> {
        let (now, next_index, rng, stacks) = match state {
            SamplerState::Priority {
                now,
                next_index,
                rng,
                stacks,
            } => (now, next_index, rng, stacks),
            other => {
                return Err(StateError::Mismatch {
                    expected: "priority",
                    found: other.family(),
                })
            }
        };
        if stacks.len() != self.instances.len() {
            return Err(StateError::Corrupt(format!(
                "priority state has {} stacks for k = {}",
                stacks.len(),
                self.instances.len()
            )));
        }
        if !state::restore_rng(&mut self.rng, &rng) {
            return Err(StateError::Unsupported);
        }
        for (inst, stack) in self.instances.iter_mut().zip(stacks) {
            inst.stack = stack.into();
        }
        self.now = now;
        self.next_index = next_index;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    #[test]
    fn empty_returns_none() {
        let mut s: PrioritySampler<u64, _> = PrioritySampler::new(5, 1, SmallRng::seed_from_u64(0));
        assert!(s.sample().is_none());
    }

    #[test]
    fn sample_always_active() {
        let mut s = PrioritySampler::new(6, 2, SmallRng::seed_from_u64(1));
        for tick in 0..300u64 {
            s.advance_time(tick);
            s.insert(tick);
            for smp in s.sample_k().expect("nonempty") {
                assert!(tick - smp.timestamp() < 6);
            }
        }
    }

    #[test]
    fn uniform_over_window() {
        let t0 = 10u64;
        let ticks = 35u64;
        let trials = 25_000u64;
        let mut counts = vec![0u64; t0 as usize];
        for t in 0..trials {
            let mut s = PrioritySampler::new(t0, 1, SmallRng::seed_from_u64(20_000 + t));
            for tick in 0..ticks {
                s.advance_time(tick);
                s.insert(tick);
            }
            counts[(s.sample().expect("nonempty").index() - (ticks - t0)) as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "priority sampling not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn k_instances_are_mutually_independent() {
        // k = 2 over a 4-element window: the joint law over the 16 cells
        // must be the product of uniforms — this is what the k priority
        // draws per element pay for (see the module docs).
        let t0 = 4u64;
        let ticks = 12u64;
        let trials = 40_000u64;
        let mut counts = vec![0u64; (t0 * t0) as usize];
        for t in 0..trials {
            let mut s = PrioritySampler::new(t0, 2, SmallRng::seed_from_u64(70_000 + t));
            for tick in 0..ticks {
                s.advance_time(tick);
                s.insert(tick);
            }
            let got = s.sample_k().expect("nonempty");
            let a = got[0].index() - (ticks - t0);
            let b = got[1].index() - (ticks - t0);
            counts[(a * t0 + b) as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "k=2 joint not product-uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn shared_priorities_collapse_the_joint_distribution() {
        // The "optimization" the bench numbers suggest — one shared
        // priority per element across instances — is exactly two instances
        // consuming the same priority stream. Identically-seeded k = 1
        // samplers realize that: they agree on *every* query over a long
        // bursty stream, i.e. the joint distribution degenerates to the
        // diagonal instead of the 1/n² product. This is why
        // PrioritySampler must draw k priorities per element while
        // PriorityTopK (WOR semantics) needs only one.
        let mut a = PrioritySampler::new(16, 1, SmallRng::seed_from_u64(42));
        let mut b = PrioritySampler::new(16, 1, SmallRng::seed_from_u64(42));
        let mut sched = SmallRng::seed_from_u64(5);
        let mut idx = 0u64;
        let mut queries = 0u64;
        for tick in 0..500u64 {
            a.advance_time(tick);
            b.advance_time(tick);
            for _ in 0..sched.gen_range(0..4u64) {
                a.insert(idx);
                b.insert(idx);
                idx += 1;
            }
            if let (Some(sa), Some(sb)) = (a.sample(), b.sample()) {
                assert_eq!(
                    sa.index(),
                    sb.index(),
                    "shared priorities must force identical samples (tick {tick})"
                );
                queries += 1;
            }
        }
        // With n ≈ 16·2 active elements, independent instances would agree
        // on ≈ 1/n of queries; perfect agreement over hundreds of queries
        // is the collapse.
        assert!(queries > 400, "collapse demo needs many nonempty queries");
    }

    #[test]
    fn stored_count_fluctuates_logarithmically() {
        let mut s = PrioritySampler::new(1024, 1, SmallRng::seed_from_u64(3));
        let mut max_stored = 0;
        for tick in 0..20_000u64 {
            s.advance_time(tick);
            s.insert(tick);
            max_stored = max_stored.max(s.max_stored());
        }
        // Expected H_1024 ~ 7.5; the max over a long run must exceed that,
        // demonstrating the randomized bound.
        assert!(max_stored >= 8, "stored never grew: {max_stored}");
    }

    #[test]
    fn total_expiry_empties() {
        let mut s = PrioritySampler::new(4, 1, SmallRng::seed_from_u64(4));
        s.advance_time(0);
        s.insert(9u64);
        s.advance_time(100);
        assert!(s.sample().is_none());
    }
}
