//! Network-facing streaming ingestion for the keyed sampling fleet:
//! a std-only TCP server speaking a length-prefixed, crc32-framed
//! binary protocol, with bounded-queue backpressure, continuous
//! queries over sampled windows, and a load-generator client that
//! extends the engine's determinism contract across the wire.
//!
//! The pieces, one module each:
//!
//! * [`protocol`] — the frame grammar and message codecs (versioned
//!   hello, batched `INGEST` riding the WAL's columnar delta-varint
//!   batch record, `QUERY`, `SUBSCRIBE`, `STATS`, typed errors carrying
//!   the offending frame offset).
//! * [`server`] — the runtime: thread-per-connection transport with
//!   panic isolation, a bounded central ingest queue whose watermark
//!   pushes `BUSY` back instead of buffering unboundedly, a scheduler
//!   evaluating standing queries against snapshot-consistent shard
//!   reads, drop-oldest per-subscriber rings, and graceful shutdown
//!   that drains, fsyncs, and snapshots the WAL.
//! * [`stats`] — atomically-snapshotted per-connection and global
//!   counters behind the `STATS` frame.
//! * [`client`] — a blocking protocol client.
//! * [`loadgen`] — N-connection zipf load with latency percentiles and
//!   the byte-identical offline-replay verification.
//!
//! Determinism across the wire: per-key sampler state folds over that
//! key's own batched event subsequence, and the load generator routes
//! each key to one connection whose batches enter the server's FIFO
//! ingest queue in order — so an offline engine replaying the same
//! batches answers byte-identically, at any thread count, on either
//! backend, with or without a WAL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::{Backoff, Client, IngestOutcome};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use protocol::{
    ClientMsg, ErrorCode, ProtocolError, ServerMsg, SubscribeKind, MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig};
pub use stats::{ConnStats, EngineStats, GlobalStats, StatsSnapshot};
