//! *Hard* fault injection for crash-recovery testing.
//!
//! A [`FailPlan`] tells the durable engine where to misbehave
//! *unrecoverably*: kill the process after N WAL appends (optionally
//! writing a torn partial record first), flip a byte in the next
//! snapshot, or start failing appends with a synthetic disk-full
//! error. Plans parse from the `SWSAMPLE_FAILPOINT` environment
//! variable so the CI smoke can crash a real `swsample multi` run
//! mid-ingest:
//!
//! ```text
//! SWSAMPLE_FAILPOINT=kill-after-appends=40,torn-tail=13
//! SWSAMPLE_FAILPOINT=corrupt-snapshot-byte=200
//! SWSAMPLE_FAILPOINT=disk-full-after=25
//! ```
//!
//! These faults are counted, not seeded: a kill plan fires on exactly
//! the Nth append. *Transient* (retryable) faults — flaky appends and
//! fsyncs the engine rides out with a bounded retry, plus every
//! network-level fault the server injects — live in the shared seeded
//! schedule [`swsample_core::fault`] (`SWSAMPLE_FAULTS`), wired in via
//! [`DurableOptions::faults`](crate::DurableOptions). The two layers
//! compose: a chaos run can schedule transient `wal-append` errors
//! *and* a hard kill in the same process.

/// Exit code used by the kill failpoint, so harnesses can tell an
/// injected crash (expected) from a genuine panic or error (not).
pub const CRASH_EXIT_CODE: i32 = 42;

/// Exit code used by the graceful-shutdown failpoint — distinct from
/// [`CRASH_EXIT_CODE`] because the two exercise different recovery
/// paths (snapshot-only restore vs WAL replay).
pub const SHUTDOWN_EXIT_CODE: i32 = 43;

/// Name of the environment variable [`FailPlan::from_env`] reads.
pub const FAILPOINT_ENV: &str = "SWSAMPLE_FAILPOINT";

/// A fault-injection plan. The default plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailPlan {
    /// Exit the process with [`CRASH_EXIT_CODE`] immediately after the
    /// Nth successful WAL append (1-based), before the batch is applied
    /// to the in-memory engine.
    pub kill_after_appends: Option<u64>,
    /// When the kill fires, first write this many bytes of partial-frame
    /// garbage to the WAL — simulating a crash mid-append.
    pub torn_tail_bytes: Option<u64>,
    /// XOR byte at this offset of the next snapshot file with `0xFF`
    /// after it is written — simulating silent on-disk corruption.
    pub corrupt_snapshot_byte: Option<u64>,
    /// Fail every WAL append after the Nth with a synthetic
    /// out-of-space I/O error.
    pub disk_full_after_appends: Option<u64>,
    /// Take the graceful-shutdown path (final snapshot, then exit with
    /// [`SHUTDOWN_EXIT_CODE`]) after the Nth append is applied —
    /// simulating SIGINT mid-stream.
    pub shutdown_after_appends: Option<u64>,
}

impl FailPlan {
    /// True if no fault is configured.
    pub fn is_empty(&self) -> bool {
        *self == FailPlan::default()
    }

    /// Parse a plan from the [`FAILPOINT_ENV`] environment variable.
    /// Unset or empty means no faults; a malformed value is an error
    /// (silently ignoring a typo'd failpoint would make the harness
    /// pass vacuously).
    pub fn from_env() -> Result<Self, String> {
        match std::env::var(FAILPOINT_ENV) {
            Ok(raw) => raw.parse(),
            Err(_) => Ok(FailPlan::default()),
        }
    }
}

impl std::str::FromStr for FailPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FailPlan::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, value) = part
                .split_once('=')
                .ok_or_else(|| format!("failpoint `{part}`: expected name=value"))?;
            let value: u64 = value.trim().parse().map_err(|_| {
                format!("failpoint `{name}`: expected an unsigned integer, got `{value}`")
            })?;
            let slot = match name.trim() {
                "kill-after-appends" => &mut plan.kill_after_appends,
                "torn-tail" => &mut plan.torn_tail_bytes,
                "corrupt-snapshot-byte" => &mut plan.corrupt_snapshot_byte,
                "disk-full-after" => &mut plan.disk_full_after_appends,
                "shutdown-after-appends" => &mut plan.shutdown_after_appends,
                other => return Err(format!("unknown failpoint `{other}`")),
            };
            if slot.replace(value).is_some() {
                return Err(format!("failpoint `{name}` given twice"));
            }
        }
        if plan.torn_tail_bytes.is_some() && plan.kill_after_appends.is_none() {
            return Err("torn-tail requires kill-after-appends".to_string());
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_plan() {
        let plan: FailPlan = "kill-after-appends=40, torn-tail=13"
            .parse()
            .expect("parse");
        assert_eq!(plan.kill_after_appends, Some(40));
        assert_eq!(plan.torn_tail_bytes, Some(13));
        assert_eq!(plan.corrupt_snapshot_byte, None);
        assert!(!plan.is_empty());
    }

    #[test]
    fn parses_shutdown_plan() {
        let plan: FailPlan = "shutdown-after-appends=7".parse().expect("parse");
        assert_eq!(plan.shutdown_after_appends, Some(7));
        assert!(!plan.is_empty());
    }

    #[test]
    fn empty_string_is_no_faults() {
        let plan: FailPlan = "".parse().expect("parse");
        assert!(plan.is_empty());
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!("kill-after-append=3".parse::<FailPlan>().is_err());
        assert!("kill-after-appends".parse::<FailPlan>().is_err());
        assert!("kill-after-appends=lots".parse::<FailPlan>().is_err());
        assert!("kill-after-appends=1,kill-after-appends=2"
            .parse::<FailPlan>()
            .is_err());
        assert!("torn-tail=4".parse::<FailPlan>().is_err());
    }
}
