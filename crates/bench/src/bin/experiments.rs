//! `experiments` — regenerate the paper's evaluation tables.
//!
//! ```text
//! experiments           # run everything (E1–E14)
//! experiments e4 e6     # run selected experiments
//! experiments --list    # show the experiment index
//! ```
//!
//! Every table corresponds to one row of the per-experiment index in
//! `DESIGN.md`; `EXPERIMENTS.md` records expected-vs-measured.

use swsample_bench::experiments;

const INDEX: &[(&str, &str)] = &[
    (
        "e1",
        "Theorem 2.1 — SEQ-WR: O(k) deterministic words, uniformity",
    ),
    (
        "e2",
        "Theorem 2.2 — SEQ-WOR: O(k) deterministic words, uniform inclusion",
    ),
    (
        "e3",
        "Theorem 3.9 — TS-WR: Θ(log n) words, bursty-stream uniformity",
    ),
    (
        "e4",
        "Lemma 3.10 — adversarial stream: randomized vs deterministic peaks",
    ),
    ("e5", "Theorem 4.4 — TS-WOR: O(k log n) deterministic words"),
    ("e6", "deterministic vs randomized memory, all algorithms"),
    (
        "e7",
        "per-element cost (coarse; see `cargo bench` for precise)",
    ),
    ("e8", "over-sampling failure probability vs occupancy model"),
    (
        "e9",
        "Corollary 5.2 — frequency moments over sliding windows",
    ),
    (
        "e10",
        "Corollary 5.3 — triangle counting over sliding windows",
    ),
    ("e11", "Corollary 5.4 — entropy over sliding windows"),
    ("e12", "§1.3.4 — independence of disjoint windows"),
    ("e14", "§5 — step-biased sampling"),
    ("e15", "DGIM window counter accuracy vs analytic bound"),
    (
        "e16",
        "sample-based query layer: aggregates, quantiles, heavy hitters",
    ),
    (
        "e17",
        "Corollaries 5.2/5.4 on timestamp windows (DGIM-assisted)",
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for (id, desc) in INDEX {
            println!("{id:>4}  {desc}");
        }
        return;
    }
    let ids: Vec<String> = if args.is_empty() {
        vec!["all".into()]
    } else {
        args
    };
    for id in &ids {
        if !experiments::run(id) {
            eprintln!("unknown experiment `{id}` — try --list");
            std::process::exit(1);
        }
    }
}
