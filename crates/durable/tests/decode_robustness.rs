//! Adversarial-bytes robustness: no sequence of bit flips or
//! truncations applied to durable files — sampler state records,
//! snapshot files, WAL segments — may ever panic a decoder or smuggle
//! corrupt state past one. Corruption is always an `Err` (or, for the
//! WAL's final segment, a clean prefix).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;
use swsample_core::state::SamplerState;
use swsample_core::{FleetBackend, SamplerSpec};
use swsample_durable::snapshot::read_snapshot;
use swsample_durable::wal::SegmentLog;
use swsample_durable::{DurableEngine, DurableOptions};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn case_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("swsample-robust-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bytes of a genuine snapshot over a populated fleet, produced once.
fn real_snapshot_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let dir = case_dir("seed-snap");
        let spec: SamplerSpec = "--window ts --w 16 --mode wor --algo paper --k 3 --seed 5"
            .parse()
            .expect("spec");
        let mut durable = DurableEngine::<u64, u64>::create(
            &dir,
            spec,
            4,
            1,
            FleetBackend::Auto,
            DurableOptions::default(),
        )
        .expect("create");
        let batch: Vec<(u64, u64, u64)> = (0..200u64).map(|e| (e % 17, e / 5, e * 3)).collect();
        durable.ingest(&batch).expect("ingest");
        let path = durable.snapshot().expect("snapshot");
        let bytes = std::fs::read(path).expect("read snapshot");
        drop(durable);
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    })
}

/// A genuine state record to mutate.
fn real_state_record() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let spec: SamplerSpec = "--window seq --n 24 --mode wr --algo paper --k 3 --seed 9"
            .parse()
            .expect("spec");
        let mut sampler = spec.build::<u64>().expect("build");
        for i in 0..100 {
            sampler.insert(i);
        }
        sampler.save_state().expect("save").encode_record()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary bytes fed to the state-record decoder: never a panic.
    #[test]
    fn arbitrary_state_record_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = SamplerState::<u64>::decode_record(&bytes);
    }

    /// Any single bit flip in a real state record is rejected.
    #[test]
    fn flipped_state_record_is_rejected(pos in any::<u64>(), bit in 0u8..8) {
        let mut bytes = real_state_record().to_vec();
        let i = (pos % bytes.len() as u64) as usize;
        bytes[i] ^= 1 << bit;
        prop_assert!(SamplerState::<u64>::decode_record(&bytes).is_err(),
            "flip at byte {i} bit {bit} was accepted");
    }

    /// Any single bit flip anywhere in a real snapshot file is rejected.
    #[test]
    fn flipped_snapshot_is_rejected(pos in any::<u64>(), bit in 0u8..8) {
        let mut bytes = real_snapshot_bytes().to_vec();
        let i = (pos % bytes.len() as u64) as usize;
        bytes[i] ^= 1 << bit;
        let dir = case_dir("snapflip");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("snap-0000000000000001.snap");
        std::fs::write(&path, &bytes).expect("write");
        prop_assert!(read_snapshot::<u64, u64>(&path).is_err(),
            "flip at byte {i} bit {bit} was accepted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Any truncation of a real snapshot file is rejected.
    #[test]
    fn truncated_snapshot_is_rejected(cut in any::<u64>()) {
        let bytes = real_snapshot_bytes();
        let cut = (cut % bytes.len() as u64) as usize;
        let dir = case_dir("snapcut");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("snap-0000000000000001.snap");
        std::fs::write(&path, &bytes[..cut]).expect("write");
        prop_assert!(read_snapshot::<u64, u64>(&path).is_err(),
            "truncation to {cut} bytes was accepted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A WAL whose bytes were flipped anywhere never panics on open:
    /// either a corruption error, or (final-segment tolerance) a clean
    /// prefix of the original records.
    #[test]
    fn flipped_wal_yields_error_or_clean_prefix(
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let dir = case_dir("walflip");
        let mut log = SegmentLog::create(&dir, 96).expect("create");
        let originals: Vec<Vec<u8>> = (0..12u64)
            .map(|i| format!("payload-{i}-{}", "x".repeat(i as usize)).into_bytes())
            .collect();
        for p in &originals {
            log.append(p).expect("append");
        }
        log.sync().expect("sync");
        drop(log);
        // Pick a victim byte across all segments, deterministically.
        let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("read dir")
            .map(|e| e.expect("entry").path())
            .collect();
        segs.sort();
        let total: usize = segs.iter().map(|p| std::fs::metadata(p).expect("stat").len() as usize).sum();
        let mut victim = (pos % total as u64) as usize;
        for seg in &segs {
            let mut bytes = std::fs::read(seg).expect("read");
            if victim < bytes.len() {
                bytes[victim] ^= 1 << bit;
                std::fs::write(seg, bytes).expect("write");
                break;
            }
            victim -= bytes.len();
        }
        match SegmentLog::open(&dir, 96) {
            Err(_) => {}
            Ok((_, records)) => {
                prop_assert!(records.len() <= originals.len());
                for (i, (seq, payload)) in records.iter().enumerate() {
                    prop_assert_eq!(*seq, i as u64);
                    prop_assert_eq!(payload, &originals[i], "record {} mutated silently", i);
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A directory of pure garbage "segments" never panics the opener.
    #[test]
    fn garbage_wal_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..192)) {
        let dir = case_dir("walgarbage");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("wal-00000000.seg"), &bytes).expect("write");
        let _ = SegmentLog::open(&dir, 1024);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
