//! The write-ahead segment log: framed `[seq u64][payload]` records in
//! numbered segment files, fsync on segment roll, torn-tail tolerance in
//! the final segment only.
//!
//! One record per **ingest batch** — batch boundaries are part of the
//! replay contract, because some sampler families (notably priority)
//! draw RNG in batch-major order, so replaying with different chunking
//! would diverge from the original run.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::frame::{self, FrameRead, FRAME_HEADER_BYTES};
use crate::DurableError;

/// Default segment-roll threshold: 4 MiB of framed records.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

/// Name of segment `index` within the log directory.
fn segment_name(index: u64) -> String {
    format!("wal-{index:08}.seg")
}

/// Parse a segment file name back to its index.
fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Write-buffer size for the active segment. Appends are batch-sized
/// (tens of KB); a large buffer keeps the syscall rate far below the
/// append rate so the WAL tax stays encode + checksum bandwidth.
const WRITE_BUF_BYTES: usize = 256 << 10;

/// All segment paths in `dir`, ascending by index.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(index) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((index, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(i, _)| *i);
    Ok(out)
}

/// An append-only log of sequenced records across rolling segment files.
///
/// Durability policy: appends are buffered; the active segment is
/// flushed **and fsynced** when it rolls past the size threshold, and on
/// [`sync`](SegmentLog::sync) (which [`DurableEngine::snapshot`] calls
/// before recording a log position). A crash can therefore lose or tear
/// only the unsynced tail of the final segment — exactly the region
/// recovery tolerates.
///
/// [`DurableEngine::snapshot`]: crate::engine::DurableEngine::snapshot
#[derive(Debug)]
pub struct SegmentLog {
    dir: PathBuf,
    file: BufWriter<File>,
    segment_index: u64,
    segment_bytes: u64,
    /// Bytes written to the active segment so far.
    written: u64,
    next_seq: u64,
}

impl SegmentLog {
    /// Start a fresh log in `dir` (created if missing). Errors if the
    /// directory already holds WAL segments — recovery must go through
    /// [`open`](SegmentLog::open).
    pub fn create(dir: impl Into<PathBuf>, segment_bytes: u64) -> Result<Self, DurableError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        if let Some((_, path)) = list_segments(&dir)?.first() {
            return Err(DurableError::Config(format!(
                "refusing to create a fresh WAL over existing segment {}",
                path.display()
            )));
        }
        let path = dir.join(segment_name(0));
        let file = OpenOptions::new().create_new(true).write(true).open(path)?;
        Ok(Self {
            dir,
            file: BufWriter::with_capacity(WRITE_BUF_BYTES, file),
            segment_index: 0,
            segment_bytes: segment_bytes.max(1),
            written: 0,
            next_seq: 0,
        })
    }

    /// Reopen an existing log for appending, replaying every record.
    ///
    /// Returns the log positioned after the last valid record, plus the
    /// records themselves in `(seq, payload)` order. A torn tail in the
    /// **final** segment is truncated away (a crash's partial write);
    /// torn or corrupt records in any earlier segment — or a sequence
    /// gap — are [`DurableError::Corrupt`].
    #[allow(clippy::type_complexity)]
    pub fn open(
        dir: impl Into<PathBuf>,
        segment_bytes: u64,
    ) -> Result<(Self, Vec<(u64, Vec<u8>)>), DurableError> {
        let dir = dir.into();
        let segments = list_segments(&dir)?;
        if segments.is_empty() {
            let log = Self::create(dir, segment_bytes)?;
            return Ok((log, Vec::new()));
        }
        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut next_seq = 0u64;
        let last = segments.len() - 1;
        let mut tail_valid_bytes = 0u64;
        for (pos, (index, path)) in segments.iter().enumerate() {
            let is_last = pos == last;
            let mut reader = BufReader::new(File::open(path)?);
            let mut offset = 0u64;
            loop {
                match frame::read_frame(&mut reader)? {
                    FrameRead::Eof => break,
                    FrameRead::Torn(detail) if is_last => {
                        // The crash-truncated tail; everything before it
                        // replays, everything from it is discarded.
                        eprintln!(
                            "swsample-durable: discarding torn WAL tail in {} at byte {offset} ({detail})",
                            path.display()
                        );
                        break;
                    }
                    FrameRead::Torn(detail) => {
                        return Err(DurableError::Corrupt {
                            file: path.clone(),
                            detail: format!("segment {index} record at byte {offset}: {detail}"),
                        });
                    }
                    FrameRead::Frame(payload) => {
                        if payload.len() < 8 {
                            return Err(DurableError::Corrupt {
                                file: path.clone(),
                                detail: format!("record shorter than its seq at byte {offset}"),
                            });
                        }
                        let seq = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
                        if seq != next_seq {
                            return Err(DurableError::Corrupt {
                                file: path.clone(),
                                detail: format!("sequence gap: expected {next_seq}, found {seq}"),
                            });
                        }
                        next_seq += 1;
                        offset += (FRAME_HEADER_BYTES + payload.len()) as u64;
                        records.push((seq, payload[8..].to_vec()));
                    }
                }
            }
            if is_last {
                tail_valid_bytes = offset;
            }
        }
        // Reopen the final segment for append, truncating any torn tail
        // so old garbage never sits between valid records.
        let (last_index, last_path) = segments[last].clone();
        let mut file = OpenOptions::new().write(true).open(&last_path)?;
        file.set_len(tail_valid_bytes)?;
        file.seek(SeekFrom::Start(tail_valid_bytes))?;
        let log = Self {
            dir,
            file: BufWriter::with_capacity(WRITE_BUF_BYTES, file),
            segment_index: last_index,
            segment_bytes: segment_bytes.max(1),
            written: tail_valid_bytes,
            next_seq,
        };
        Ok((log, records))
    }

    /// Append one record, returning its sequence number. Rolls (flush +
    /// fsync + next segment file) once the active segment exceeds the
    /// threshold.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, DurableError> {
        let seq = self.next_seq;
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&seq.to_le_bytes());
        record.extend_from_slice(payload);
        frame::write_frame(&mut self.file, &record)?;
        self.next_seq += 1;
        self.written += (FRAME_HEADER_BYTES + record.len()) as u64;
        if self.written >= self.segment_bytes {
            self.roll()?;
        }
        Ok(seq)
    }

    /// Flush and fsync the active segment, then start the next one.
    fn roll(&mut self) -> Result<(), DurableError> {
        self.sync()?;
        self.segment_index += 1;
        let path = self.dir.join(segment_name(self.segment_index));
        let file = OpenOptions::new().create_new(true).write(true).open(path)?;
        self.file = BufWriter::with_capacity(WRITE_BUF_BYTES, file);
        self.written = 0;
        Ok(())
    }

    /// Flush buffered records and fsync the active segment.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        Ok(())
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The active segment's index.
    pub fn segment_index(&self) -> u64 {
        self.segment_index
    }

    /// Flush buffers **without** fsync and write `bytes` of raw garbage
    /// after the last record — the torn-tail fault injection (a crash
    /// mid-append).
    pub fn inject_torn_tail(&mut self, bytes: u64) -> Result<(), DurableError> {
        self.file.flush()?;
        // A plausible-looking partial frame: a header promising more
        // payload than will ever arrive.
        let mut garbage = Vec::with_capacity(bytes as usize);
        garbage.extend_from_slice(&(u32::MAX / 2).to_le_bytes());
        garbage.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        while (garbage.len() as u64) < bytes {
            garbage.push(0xAB);
        }
        garbage.truncate(bytes as usize);
        self.file.get_mut().write_all(&garbage)?;
        self.file.get_mut().flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swsample-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = tmp_dir("replay");
        let mut log = SegmentLog::create(&dir, 64).expect("create");
        for i in 0..20u64 {
            let seq = log.append(format!("batch-{i}").as_bytes()).expect("append");
            assert_eq!(seq, i);
        }
        log.sync().expect("sync");
        drop(log);
        // 64-byte segments force several rolls.
        assert!(list_segments(&dir).expect("list").len() > 1);
        let (log, records) = SegmentLog::open(&dir, 64).expect("open");
        assert_eq!(log.next_seq(), 20);
        assert_eq!(records.len(), 20);
        for (i, (seq, payload)) in records.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(payload, format!("batch-{i}").as_bytes());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_in_final_segment_is_truncated() {
        let dir = tmp_dir("torn");
        let mut log = SegmentLog::create(&dir, 1 << 20).expect("create");
        for i in 0..5u64 {
            log.append(&i.to_le_bytes()).expect("append");
        }
        log.inject_torn_tail(13).expect("tear");
        drop(log);
        let (mut log, records) = SegmentLog::open(&dir, 1 << 20).expect("open tolerates tail");
        assert_eq!(records.len(), 5);
        assert_eq!(log.next_seq(), 5);
        // The torn bytes were truncated away: appending and reopening
        // yields a clean log.
        log.append(b"after-recovery").expect("append");
        log.sync().expect("sync");
        drop(log);
        let (_, records) = SegmentLog::open(&dir, 1 << 20).expect("clean reopen");
        assert_eq!(records.len(), 6);
        assert_eq!(records[5].1, b"after-recovery");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_in_earlier_segment_is_fatal() {
        let dir = tmp_dir("midcorrupt");
        let mut log = SegmentLog::create(&dir, 32).expect("create");
        for i in 0..10u64 {
            log.append(&[i as u8; 16]).expect("append");
        }
        log.sync().expect("sync");
        drop(log);
        let segments = list_segments(&dir).expect("list");
        assert!(segments.len() >= 3, "need a non-final segment to corrupt");
        // Flip one byte in the first segment.
        let victim = &segments[0].1;
        let mut bytes = fs::read(victim).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(victim, bytes).expect("write");
        match SegmentLog::open(&dir, 32) {
            Err(DurableError::Corrupt { file, .. }) => assert_eq!(&file, victim),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_existing_log() {
        let dir = tmp_dir("refuse");
        let mut log = SegmentLog::create(&dir, 1024).expect("create");
        log.append(b"x").expect("append");
        log.sync().expect("sync");
        drop(log);
        assert!(matches!(
            SegmentLog::create(&dir, 1024),
            Err(DurableError::Config(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
