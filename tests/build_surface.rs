//! Smoke test for the build surface itself: every target in the workspace
//! — libs, bins, examples, integration tests, *and the criterion benches*
//! — must keep compiling. `cargo test` / `cargo build` alone never compile
//! bench targets, so without this check (and the matching CI step) the
//! benches could silently rot out of the build.

use std::process::Command;

#[test]
fn every_workspace_target_compiles() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let out = Command::new(cargo)
        // --all-targets covers lib, bins, examples, tests, and benches.
        .args(["check", "--workspace", "--all-targets", "--quiet"])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn cargo check");
    assert!(
        out.status.success(),
        "cargo check --workspace --all-targets failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
