//! E1 / E2 — sequence-based windows: Theorems 2.1 and 2.2.
//!
//! Claims under test: uniformity (with and without replacement) and the
//! deterministic `O(k)` word bound, *independent of `n` and of the stream
//! length*.

use crate::{f3, profile_seq, table_header, table_row};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample_core::seq::{SeqSamplerWor, SeqSamplerWr};
use swsample_core::WindowSampler;
use swsample_stats::chi_square_uniform_test;

/// Uniformity p-value for a sequence sampler constructor at window `n`,
/// queried after `stop` arrivals, over `trials` independent runs.
fn uniformity_seq<S, F>(n: u64, stop: u64, trials: u64, mut mk: F) -> f64
where
    S: WindowSampler<u64>,
    F: FnMut(u64) -> S,
{
    let mut counts = vec![0u64; n as usize];
    for t in 0..trials {
        let mut s = mk(t);
        for i in 0..stop {
            s.insert(i);
        }
        for smp in s.sample_k().expect("window nonempty") {
            counts[(smp.index() - (stop - n)) as usize] += 1;
        }
    }
    chi_square_uniform_test(&counts).p_value
}

/// E1: sampling with replacement from sequence-based windows (Theorem 2.1).
pub fn e1_seq_wr() {
    table_header(
        "E1 — Theorem 2.1: SEQ-WR, O(k) deterministic words + uniformity",
        &[
            "n",
            "k",
            "stream",
            "mem max (words)",
            "bound 7k+3",
            "uniformity p",
        ],
    );
    for &n in &[64u64, 1024, 16384] {
        for &k in &[1usize, 8, 64] {
            let mut s = SeqSamplerWr::new(n, k, SmallRng::seed_from_u64(7));
            let stream = 4 * n;
            let prof = profile_seq(&mut s, stream, 11);
            let bound = 7 * k + 3;
            // Uniformity is only chi-squared at the small window (the cost
            // is trials × stream); larger windows inherit it structurally.
            let p = if n == 64 {
                uniformity_seq(n, n * 2 + 17, 12_000, |t| {
                    SeqSamplerWr::new(n, k.min(4), SmallRng::seed_from_u64(1_000 + t))
                })
            } else {
                f64::NAN
            };
            table_row(&[
                n.to_string(),
                k.to_string(),
                stream.to_string(),
                f3(prof.max),
                bound.to_string(),
                if p.is_nan() { "—".into() } else { f3(p) },
            ]);
            assert!(prof.max <= bound as f64, "E1: deterministic bound violated");
        }
    }
}

/// E2: sampling without replacement from sequence-based windows
/// (Theorem 2.2).
pub fn e2_seq_wor() {
    table_header(
        "E2 — Theorem 2.2: SEQ-WOR, O(k) deterministic words + uniform inclusion",
        &[
            "n",
            "k",
            "stream",
            "mem max (words)",
            "bound 6k+16",
            "marginal p",
        ],
    );
    for &n in &[64u64, 1024, 16384] {
        for &k in &[2usize, 8, 64] {
            let mut s = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(13));
            let stream = 4 * n;
            let prof = profile_seq(&mut s, stream, 17);
            let bound = 6 * k + 16;
            let p = if n == 64 {
                uniformity_seq(n, n * 2 + 9, 8_000, |t| {
                    SeqSamplerWor::new(n, k.min(8), SmallRng::seed_from_u64(2_000 + t))
                })
            } else {
                f64::NAN
            };
            table_row(&[
                n.to_string(),
                k.to_string(),
                stream.to_string(),
                f3(prof.max),
                bound.to_string(),
                if p.is_nan() { "—".into() } else { f3(p) },
            ]);
            assert!(prof.max <= bound as f64, "E2: deterministic bound violated");
        }
    }
    // Distinctness audit across awkward offsets.
    let mut violations = 0u64;
    for seed in 0..200u64 {
        let mut s = SeqSamplerWor::new(32, 8, SmallRng::seed_from_u64(30_000 + seed));
        for i in 0..100u64 {
            s.insert(i);
            if let Some(out) = s.sample_k() {
                let mut idx: Vec<u64> = out.iter().map(|x| x.index()).collect();
                idx.sort_unstable();
                let len = idx.len();
                idx.dedup();
                if idx.len() != len {
                    violations += 1;
                }
            }
        }
    }
    println!("distinctness violations over 20,000 queries: {violations}");
}
