//! The SoA fleet-backend acceptance suite (PR 6):
//!
//! 1. **Bit identity** — the struct-of-arrays backend produces exactly
//!    the erased backend's samples, key for key, for every homogeneous
//!    template family (seq-WR, seq-WOR, ts-WR, ts-WOR, stream
//!    reservoir-L), in lockstep after every batch, while mixing serial
//!    `ingest` and multi-thread `ingest_parallel` calls.
//! 2. **Backend surface** — `Auto` resolves per template; an explicit
//!    `Soa` over an ineligible template is a constructor error, not a
//!    silent fallback.
//! 3. **Scale** — the 100k-key zipf acceptance run forced onto the SoA
//!    backend, re-asserting the paper's `7k + 3` per-key word cap and
//!    the fleet/registry accounting.
//! 4. **Independence** — chi-square on the joint sample-position
//!    distribution of key pairs: per-key seeds keep keys statistically
//!    independent on the SoA path (shared slabs must not couple them).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample::core::spec::FleetBackend;
use swsample::core::MemoryWords;
use swsample::stats::chi_square_uniform_test;
use swsample::stream::{MultiStreamEngine, ValueGen, ZipfGen};

type Engine = MultiStreamEngine<u64, u64>;

fn build(template: &str, shards: usize, threads: usize, backend: FleetBackend) -> Engine {
    MultiStreamEngine::with_backend(
        template.parse().expect("template parses"),
        shards,
        swsample::baselines::spec::build::<u64>,
        threads,
        backend,
    )
    .expect("engine builds")
}

fn zipf_events(keys: u64, count: u64, seed: u64) -> Vec<(u64, u64, u64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut zipf = ZipfGen::new(keys, 1.2);
    (0..count)
        .map(|i| (zipf.next_value(&mut rng), i / 32, i))
        .collect()
}

/// Every homogeneous template family, SoA vs erased, compared in
/// lockstep: after *each* batch the two fleets hold byte-identical
/// samples for every probed key. Batches alternate between the serial
/// `ingest` path and the worker-pool `ingest_parallel` path (threads =
/// 2), so the run-carved SoA kernels are checked against per-element
/// erased dispatch under both ingestion modes.
#[test]
fn soa_and_erased_backends_bit_identical_lockstep() {
    for template in [
        "--window seq --n 64 --mode wr --k 4 --seed 101",
        "--window seq --n 64 --mode wor --k 4 --seed 102",
        "--window ts --w 16 --mode wr --k 4 --seed 103",
        "--window ts --w 16 --mode wor --k 4 --seed 104",
        "--window stream --mode wor --algo reservoir-l --k 4 --seed 105",
    ] {
        let events = zipf_events(300, 12_000, 4242);
        let mut erased = build(template, 16, 2, FleetBackend::Erased);
        let mut soa = build(template, 16, 2, FleetBackend::Soa);
        assert_eq!(erased.backend(), FleetBackend::Erased);
        assert_eq!(soa.backend(), FleetBackend::Soa);

        for (i, chunk) in events.chunks(1024).enumerate() {
            if i % 2 == 0 {
                erased.ingest(chunk);
                soa.ingest(chunk);
            } else {
                erased.ingest_parallel(chunk);
                soa.ingest_parallel(chunk);
            }
            assert_eq!(
                erased.num_keys(),
                soa.num_keys(),
                "{template}: key census diverges after batch {i}"
            );
            for key in erased.keys() {
                assert_eq!(
                    erased.sample_k(&key),
                    soa.sample_k(&key),
                    "{template}: key {key} diverges after batch {i}"
                );
            }
        }
        // Same accounting, not just same samples.
        assert_eq!(erased.memory_words(), soa.memory_words(), "{template}");
        assert_eq!(
            erased.max_key_memory_words(),
            soa.max_key_memory_words(),
            "{template}"
        );
    }
}

/// `Auto` resolves to SoA exactly when the template has a fleet kernel;
/// forcing `Soa` onto a baseline-algorithm template is a hard error.
#[test]
fn backend_resolution_and_ineligible_template_error() {
    let paper = build(
        "--window seq --n 64 --mode wr --k 4 --seed 1",
        16,
        1,
        FleetBackend::Auto,
    );
    assert_eq!(paper.backend(), FleetBackend::Soa);

    let chain_spec = "--window seq --n 64 --mode wr --algo chain --k 4 --seed 1";
    let chain = build(chain_spec, 16, 1, FleetBackend::Auto);
    assert_eq!(chain.backend(), FleetBackend::Erased);

    let err: Result<Engine, _> = MultiStreamEngine::with_backend(
        chain_spec.parse().expect("spec parses"),
        16,
        swsample::baselines::spec::build::<u64>,
        1,
        FleetBackend::Soa,
    );
    assert!(err.is_err(), "explicit Soa over chain algo must not build");
}

/// The 100k-key zipf acceptance run forced onto the SoA backend: every
/// materialized key stays under Theorem 2.1's deterministic `7k + 3`
/// ceiling, the fleet under `keys · cap`, and the registry scaffolding
/// under its own documented bound. The contiguous slabs must not cost
/// more words per key than the boxed samplers they replace.
#[test]
fn hundred_thousand_keys_soa_within_paper_caps() {
    let (keys, k) = (100_000u64, 16usize);
    let cap = 7 * k + 3;
    let engine = build(
        "--window seq --n 1000 --k 16 --seed 42",
        64,
        4,
        FleetBackend::Soa,
    );
    let mut rng = SmallRng::seed_from_u64(7);
    let mut zipf = ZipfGen::new(keys, 1.05);
    let events: Vec<(u64, u64, u64)> = (0..400_000u64)
        .map(|i| (zipf.next_value(&mut rng), i / 64, i))
        .collect();
    for c in events.chunks(8_192) {
        engine.ingest_parallel(c);
    }

    assert!(
        engine.num_keys() > 40_000,
        "zipf(1.05): expected ~48k distinct keys, got {}",
        engine.num_keys()
    );
    assert!(
        engine.max_key_memory_words() <= cap,
        "hottest key {} words > deterministic cap {cap}",
        engine.max_key_memory_words()
    );
    assert!(engine.memory_words() <= engine.num_keys() * cap);
    assert!(engine.registry_overhead_words() <= engine.num_keys() * 7);
    assert_eq!(engine.sample_k(&0).expect("hot key nonempty").len(), k);
}

/// Cross-key independence on the SoA path: give every key an identical
/// 8-arrival stream into an `n = 8, k = 1` WR window, so each key's
/// sampled position is uniform over 8 cells. Chi-square the *joint*
/// position of disjoint key pairs over the 64 joint cells: sharing
/// slabs (and a slab-wide ingest order) must not correlate keys, whose
/// RNGs are seeded from the key alone.
#[test]
fn soa_cross_key_samples_independent_and_uniform() {
    let (keys, n) = (40_000u64, 8u64);
    let mut engine = build(
        "--window seq --n 8 --mode wr --k 1 --seed 2024",
        64,
        1,
        FleetBackend::Soa,
    );
    let events: Vec<(u64, u64, u64)> = (0..n)
        .flat_map(|i| (0..keys).map(move |key| (key, i, key * n + i)))
        .collect();
    for c in events.chunks(8_192) {
        engine.ingest(c);
    }

    let pos = |key: u64| -> usize {
        let s = engine.sample_k(&key).expect("key materialized");
        assert_eq!(s.len(), 1);
        // `% n` maps the window's 8 consecutive arrival indices onto
        // [0, 8) bijectively, whatever the index base.
        (s[0].index() % n) as usize
    };
    let mut joint = vec![0u64; (n * n) as usize];
    for pair in 0..keys / 2 {
        joint[pos(2 * pair) * n as usize + pos(2 * pair + 1)] += 1;
    }
    let out = chi_square_uniform_test(&joint);
    assert!(
        out.p_value > 1e-4,
        "key-pair joint positions not uniform on SoA path: p = {}",
        out.p_value
    );
}
