//! E3 / E4 / E5 — timestamp-based windows: Theorem 3.9, Lemma 3.10,
//! Theorem 4.4.

use crate::{f3, profile_adversarial, profile_ts, table_header, table_row};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample_baselines::PrioritySampler;
use swsample_core::ts::{TsSamplerWor, TsSamplerWr};
use swsample_core::WindowSampler;
use swsample_stats::{chi_square_uniform_test, Summary};

/// E3: sampling with replacement from timestamp windows (Theorem 3.9) —
/// uniformity on bursty streams and `Θ(log n)` memory scaling.
pub fn e3_ts_wr() {
    table_header(
        "E3 — Theorem 3.9: TS-WR memory scales with log n (k = 1)",
        &[
            "t0 (ticks)",
            "per tick",
            "n (active)",
            "mem max (words)",
            "9·(2·log2 n + 3) + 4",
        ],
    );
    for &(t0, per_tick) in &[(16u64, 1u64), (64, 4), (256, 4), (1024, 8)] {
        let mut s = TsSamplerWr::new(t0, 1, SmallRng::seed_from_u64(23));
        let prof = profile_ts(&mut s, 4 * t0, per_tick, 29);
        let n = t0 * per_tick;
        let log_n = 64 - n.leading_zeros() as u64;
        let bound = 9 * (2 * log_n + 3) + 4;
        table_row(&[
            t0.to_string(),
            per_tick.to_string(),
            n.to_string(),
            f3(prof.max),
            bound.to_string(),
        ]);
        assert!(prof.max <= bound as f64, "E3: deterministic bound violated");
    }

    // Uniformity on a deterministic bursty schedule (same active set per
    // trial).
    let t0 = 4u64;
    let schedule: [(u64, u64); 10] = [
        (0, 3),
        (1, 7),
        (2, 2),
        (3, 1),
        (4, 6),
        (5, 2),
        (6, 5),
        (7, 1),
        (8, 4),
        (9, 2),
    ];
    let active: u64 = 5 + 1 + 4 + 2;
    let first_active: u64 = 3 + 7 + 2 + 1 + 6 + 2;
    let trials = 20_000u64;
    let mut counts = vec![0u64; active as usize];
    for t in 0..trials {
        let mut s = TsSamplerWr::new(t0, 1, SmallRng::seed_from_u64(40_000 + t));
        for &(tick, burst) in &schedule {
            s.advance_time(tick);
            for _ in 0..burst {
                s.insert(tick);
            }
        }
        let smp = s.sample().expect("nonempty");
        counts[(smp.index() - first_active) as usize] += 1;
    }
    let p = chi_square_uniform_test(&counts).p_value;
    println!(
        "uniformity over bursty window of {active} elements ({trials} trials): p = {}",
        f3(p)
    );
}

/// E4: the Lemma 3.10 lower-bound schedule — priority sampling's memory is
/// randomized and grows with `t0 = Θ(log n)`, while the paper's sampler has
/// the same asymptotics *with a hard deterministic cap*.
pub fn e4_lower_bound() {
    table_header(
        "E4 — Lemma 3.10 adversarial stream: peak memory (words), 20 repetitions",
        &[
            "t0",
            "~n",
            "priority mean-peak",
            "priority max-peak",
            "ours max-peak",
            "ours cap",
        ],
    );
    for &t0 in &[4u64, 6, 8, 10] {
        let cap = 1u64 << 14;
        let mut prio_peaks = Vec::new();
        let mut ours_peaks = Vec::new();
        for rep in 0..20u64 {
            let mut prio = PrioritySampler::new(t0, 1, SmallRng::seed_from_u64(rep));
            prio_peaks.push(profile_adversarial(&mut prio, t0, cap, 100 + rep).max);
            let mut ours = TsSamplerWr::new(t0, 1, SmallRng::seed_from_u64(rep));
            ours_peaks.push(profile_adversarial(&mut ours, t0, cap, 100 + rep).max);
        }
        let prio = Summary::of(&prio_peaks);
        let ours = Summary::of(&ours_peaks);
        // Active count peaks near the burst cap sum; our cap is in words.
        let n_approx = (1u64 << (2 * t0).min(14)).min(cap * 2);
        let log_n = 64 - n_approx.leading_zeros() as u64;
        let our_cap = 9 * (2 * log_n + 3) + 4;
        table_row(&[
            t0.to_string(),
            n_approx.to_string(),
            f3(prio.mean),
            f3(prio.max),
            f3(ours.max),
            our_cap.to_string(),
        ]);
        assert!(
            ours.max <= our_cap as f64,
            "E4: our deterministic cap violated"
        );
    }
    println!("(priority peaks vary run to run — randomized bound; ours never exceeds its cap)");
}

/// E5: sampling without replacement from timestamp windows (Theorem 4.4) —
/// `O(k log n)` deterministic words plus marginal-inclusion uniformity.
pub fn e5_ts_wor() {
    table_header(
        "E5 — Theorem 4.4: TS-WOR, O(k log n) deterministic words",
        &[
            "t0",
            "k",
            "n (active)",
            "mem max (words)",
            "cap k·(9(2log n+3)+3)+19",
        ],
    );
    for &t0 in &[64u64, 256] {
        for &k in &[2usize, 8, 32] {
            let per_tick = 4u64;
            let mut s = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(31));
            let prof = profile_ts(&mut s, 4 * t0, per_tick, 37);
            let n = t0 * per_tick;
            let log_n = 64 - n.leading_zeros() as u64;
            let cap = k as u64 * (9 * (2 * log_n + 3) + 3) + 19;
            table_row(&[
                t0.to_string(),
                k.to_string(),
                n.to_string(),
                f3(prof.max),
                cap.to_string(),
            ]);
            assert!(prof.max <= cap as f64, "E5: deterministic bound violated");
        }
    }

    // Marginal inclusion uniformity: n = 8 active, k = 3.
    let (t0, k, ticks) = (8u64, 3usize, 24u64);
    let trials = 15_000u64;
    let mut counts = vec![0u64; t0 as usize];
    for t in 0..trials {
        let mut s = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(70_000 + t));
        for tick in 0..ticks {
            s.advance_time(tick);
            s.insert(tick);
        }
        for smp in s.sample_k().expect("nonempty") {
            counts[(smp.index() - (ticks - t0)) as usize] += 1;
        }
    }
    let p = chi_square_uniform_test(&counts).p_value;
    println!(
        "marginal inclusion uniformity (n=8, k=3, {trials} trials): p = {}",
        f3(p)
    );
}
