//! The persistent shard-worker pool behind
//! [`MultiStreamEngine::ingest_parallel`](super::MultiStreamEngine::ingest_parallel),
//! and the structured [`WorkerPanic`] report it surfaces when a per-key
//! sampler panics mid-job.

use std::any::Any;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, RwLock};

use super::{KeyedEvent, Route, Shard};

/// Structured report of a shard-ingestion panic: which worker ran the
/// job, which shard it was ingesting, and the panic payload.
///
/// A sampler panic (e.g. a key's timestamps running backwards — a caller
/// contract violation) used to kill the worker thread and abort the
/// dispatching `ingest_parallel` with an opaque `recv` failure. Now the
/// worker catches the unwind **while still holding the shard's write
/// guard**, so the `RwLock` is never poisoned: the offending shard keeps
/// its pre-panic-visible state (the failed sub-batch may be partially
/// applied) and every shard — including this one — remains queryable and
/// ingestible afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the pool worker that ran the job (`0` on the inline
    /// serial path).
    pub worker: usize,
    /// Index of the engine shard whose ingestion panicked.
    pub shard: usize,
    /// The panic payload, when it was a string (the usual case);
    /// `"<non-string panic payload>"` otherwise.
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} ingestion panicked on worker {}: {}",
            self.shard, self.worker, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Extract the human-readable message from a `catch_unwind` payload.
pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run one shard sub-batch under `catch_unwind`, holding the write guard
/// across the catch so a panicking sampler never poisons the shard lock.
pub(crate) fn ingest_guarded<K, T>(
    shard: &Arc<RwLock<Shard<K, T>>>,
    batch: &[KeyedEvent<K, T>],
    route: &Route,
    worker: usize,
    shard_index: usize,
) -> Result<(), WorkerPanic>
where
    K: Hash + Eq + Clone,
    T: Clone + 'static,
{
    let mut guard = shard.write().expect("shard lock poisoned");
    catch_unwind(AssertUnwindSafe(|| guard.ingest(batch, route))).map_err(|payload| WorkerPanic {
        worker,
        shard: shard_index,
        message: panic_message(payload),
    })
}

/// One parallel-ingestion work item: a shard plus its portion of the
/// batch (with the route precomputed by the dispatching thread).
pub(crate) struct IngestJob<K, T: Clone> {
    pub(crate) shard_index: usize,
    pub(crate) shard: Arc<RwLock<Shard<K, T>>>,
    pub(crate) batch: Vec<KeyedEvent<K, T>>,
    pub(crate) route: Route,
    pub(crate) done: mpsc::Sender<Result<(), WorkerPanic>>,
}

/// A persistent pool of `std::thread` ingestion workers fed
/// [`IngestJob`]s over channels.
///
/// Shard-ownership is the safety argument: within one
/// `ingest_parallel` call each shard appears in at most one job, and
/// calls are separated by a completion barrier, so no two jobs of one
/// call ever contend on a shard — each worker takes the shard's write
/// lock for the duration of its job, which also lets read-only queries
/// on *other* shards proceed concurrently. Workers hold nothing between
/// jobs; the pool dies with the engine (dropping the senders ends every
/// worker loop). A panicking sampler does not kill its worker: the job
/// reports a [`WorkerPanic`] through its `done` channel and the worker
/// moves on to the next job.
pub(crate) struct ShardWorkerPool<K, T: Clone> {
    senders: Vec<mpsc::Sender<IngestJob<K, T>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<K, T> ShardWorkerPool<K, T>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    pub(crate) fn spawn(threads: usize) -> Self {
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, rx) = mpsc::channel::<IngestJob<K, T>>();
            let handle = std::thread::Builder::new()
                .name(format!("swsample-shard-worker-{w}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let result =
                            ingest_guarded(&job.shard, &job.batch, &job.route, w, job.shard_index);
                        // Receiver gone means the dispatcher already
                        // panicked; nothing left to signal.
                        let _ = job.done.send(result);
                    }
                })
                .expect("spawn shard worker");
            senders.push(tx);
            handles.push(handle);
        }
        Self { senders, handles }
    }

    pub(crate) fn threads(&self) -> usize {
        self.senders.len()
    }

    pub(crate) fn sender(&self, worker: usize) -> &mpsc::Sender<IngestJob<K, T>> {
        &self.senders[worker]
    }
}

impl<K, T: Clone> Drop for ShardWorkerPool<K, T> {
    fn drop(&mut self) {
        self.senders.clear(); // closes every channel; workers exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
