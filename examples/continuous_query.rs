//! A continuous approximate query over a timestamp window — the data-stream
//! system use case the paper's introduction motivates (STREAM, Babcock et
//! al.): maintain
//!
//! ```sql
//! SELECT COUNT(*), AVG(latency), QUANTILE(latency, 0.99),
//!        SHARE(latency > 200)
//! FROM requests [RANGE 300 SECONDS]
//! ```
//!
//! entirely from (a) a without-replacement window sample (Theorem 4.4) and
//! (b) a DGIM window counter — with memory independent of the traffic rate.
//!
//! ```sh
//! cargo run --example continuous_query
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swsample::core::MemoryWords;
use swsample::query::TsAggregator;

fn main() {
    let window_secs = 300u64;
    let k = 128usize;
    let mut agg = TsAggregator::new(window_secs, k, 0.05, SmallRng::seed_from_u64(1));
    let mut rng = SmallRng::seed_from_u64(2);

    // Exact reference (what a full buffer would compute).
    let mut exact: std::collections::VecDeque<(u64, u64)> = Default::default(); // (latency, ts)

    println!("continuous query over the last {window_secs}s, k = {k} samples\n");
    println!(
        "{:>6} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10} {:>11}",
        "t(s)", "count~", "count", "avg~", "avg", "p99~", "p99", "share>200~"
    );

    for minute in 1..=8u64 {
        // Traffic intensity and latency regime drift over time.
        let rate = 20 + 10 * (minute % 4); // requests per second
        let base = 40 + 30 * (minute % 3); // base latency
        for sec in (minute - 1) * 60..minute * 60 {
            agg.advance_time(sec);
            while exact
                .front()
                .is_some_and(|&(_, ts)| sec.saturating_sub(ts) >= window_secs)
            {
                exact.pop_front();
            }
            for _ in 0..rate {
                // Log-normal-ish long tail.
                let lat = base + (rng.gen_range(0.0f64..1.0).powi(4) * 1000.0) as u64;
                agg.insert(lat);
                exact.push_back((lat, sec));
            }
        }
        let est = agg.estimate().expect("window non-empty");
        let p99 = agg.quantile(0.99).expect("window non-empty");
        let share = agg.share(|&v| v > 200).expect("window non-empty");

        let true_count = exact.len() as f64;
        let true_avg = exact.iter().map(|&(l, _)| l).sum::<u64>() as f64 / true_count;
        let mut lats: Vec<u64> = exact.iter().map(|&(l, _)| l).collect();
        lats.sort_unstable();
        let true_p99 = lats[(lats.len() as f64 * 0.99) as usize];

        println!(
            "{:>6} {:>9.0} {:>9.0} {:>10.1} {:>10.1} {:>10} {:>10} {:>11.3}",
            minute * 60,
            est.count,
            true_count,
            est.mean,
            true_avg,
            p99,
            true_p99,
            share,
        );
    }
    println!(
        "\naggregator memory: {} words; exact buffering would need {} words",
        agg.memory_words(),
        exact.len() * 3
    );
}
