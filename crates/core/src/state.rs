//! Checkpointable sampler state: plain-data snapshots of every spec-built
//! family, with a versioned, checksummed binary encoding.
//!
//! Every sampler in this workspace is a pure function of `(spec, event
//! log)`: per-key seeds are splitmix-derived from keys, and the ts-bank's
//! bucket boundaries never consume randomness. [`SamplerState`] captures
//! the *stream-dependent* remainder of a sampler — retained samples,
//! counters, skip schedules, and the exact RNG/coin-buffer state — in
//! `O(k)` words per key, so that `restore` onto a freshly spec-built
//! sampler continues the run **bit-identically**: every subsequent RNG
//! draw, accept decision, and emitted sample matches the uninterrupted
//! execution.
//!
//! Config fields derivable from the [`crate::spec::SamplerSpec`] (window
//! width `n`, capacity `k`, seeds) are deliberately *not* stored: restore
//! always targets a sampler built from the same spec, which keeps the
//! records compact and makes snapshots portable across the erased and
//! struct-of-arrays fleet backends.
//!
//! The wire format is little-endian, length-prefixed, and framed as
//! `[version u32][payload][crc32 u32]` by [`SamplerState::encode_record`];
//! [`SamplerState::decode_record`] rejects any truncation, bit flip, or
//! version skew with a [`StateError`] — never a panic, never silently
//! wrong state (property-tested in `swsample-durable`).

use crate::sample::Sample;
use std::fmt;

/// Version tag stamped on every encoded state record.
pub const STATE_VERSION: u32 = 1;

/// Why a save, restore, or decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// This sampler configuration cannot be checkpointed (e.g. a
    /// non-checkpointable RNG type, a tracking `SampleTracker`, or a
    /// test-only backend).
    Unsupported,
    /// The record failed structural validation: bad checksum, truncated
    /// buffer, out-of-range field, or malformed framing.
    Corrupt(String),
    /// The record was written by an incompatible format version.
    Version(u32),
    /// The state belongs to a different sampler family than the target.
    Mismatch {
        /// Family the restoring sampler expected.
        expected: &'static str,
        /// Family found in the record.
        found: &'static str,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Unsupported => write!(f, "sampler state capture unsupported"),
            StateError::Corrupt(why) => write!(f, "corrupt state record: {why}"),
            StateError::Version(v) => {
                write!(f, "state record version {v} (expected {STATE_VERSION})")
            }
            StateError::Mismatch { expected, found } => {
                write!(
                    f,
                    "state family mismatch: expected {expected}, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for StateError {}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
/// used by every state record, WAL frame, and snapshot section.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Slicing-by-8: eight lookup tables let each iteration fold a full
    // u64 into the running remainder, the classic ~8x over the
    // byte-at-a-time loop. Table 0 is the standard reflected CRC-32
    // table; table k advances a byte k positions further through the
    // polynomial, so the eight lookups of one chunk are independent.
    // The result is bit-identical to the byte-at-a-time definition for
    // every input (the WAL/snapshot framing depends on that stability).
    const fn tables() -> [[u32; 256]; 8] {
        let mut t = [[0u32; 256]; 8];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut j = 0;
            while j < 8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                j += 1;
            }
            t[0][i] = c;
            i += 1;
        }
        let mut k = 1usize;
        while k < 8 {
            let mut i = 0usize;
            while i < 256 {
                t[k][i] = t[0][(t[k - 1][i] & 0xFF) as usize] ^ (t[k - 1][i] >> 8);
                i += 1;
            }
            k += 1;
        }
        t
    }
    static T: [[u32; 256]; 8] = tables();
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = T[7][(lo & 0xFF) as usize]
            ^ T[6][((lo >> 8) & 0xFF) as usize]
            ^ T[5][((lo >> 16) & 0xFF) as usize]
            ^ T[4][(lo >> 24) as usize]
            ^ T[3][(hi & 0xFF) as usize]
            ^ T[2][((hi >> 8) & 0xFF) as usize]
            ^ T[1][((hi >> 16) & 0xFF) as usize]
            ^ T[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = T[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Little-endian binary writer for state records.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh writer with `bytes` of preallocated capacity — for hot
    /// paths that know (a lower bound on) the encoded size up front.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bytes),
        }
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an LEB128 varint: 7 value bits per byte, low bits first,
    /// high bit set on every byte but the last. Small values cost one
    /// byte; any `u64` costs at most ten.
    pub fn put_varint_u64(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Append raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u32`-length-prefixed byte string.
    pub fn put_len_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.put_bytes(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over a state record. Every getter
/// returns [`StateError::Corrupt`] instead of panicking when the buffer
/// runs short.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                StateError::Corrupt(format!(
                    "truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len().saturating_sub(self.pos)
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Next byte.
    pub fn get_u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StateError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Next little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StateError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Next LEB128 varint (see [`StateWriter::put_varint_u64`]).
    /// Overlong or overflowing encodings are corruption, not panics.
    pub fn get_varint_u64(&mut self) -> Result<u64, StateError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.get_u8()?;
            if shift == 63 && b > 1 {
                return Err(StateError::Corrupt(format!(
                    "varint overflows u64 at offset {}",
                    self.pos
                )));
            }
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(StateError::Corrupt(format!(
                    "varint longer than 10 bytes at offset {}",
                    self.pos
                )));
            }
        }
    }

    /// Next `u32`-length-prefixed byte string.
    pub fn get_len_bytes(&mut self) -> Result<&'a [u8], StateError> {
        let n = self.get_u32()? as usize;
        self.take(n)
    }

    /// A collection length, validated against the bytes actually left
    /// (each element needs at least `min_elem_bytes`), so a corrupted
    /// length can never trigger a huge allocation.
    pub fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, StateError> {
        let n = self.get_u32()? as usize;
        let left = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > left {
            return Err(StateError::Corrupt(format!(
                "count {n} exceeds remaining {left} bytes"
            )));
        }
        Ok(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the record was consumed exactly.
    pub fn finish(&self) -> Result<(), StateError> {
        if self.remaining() != 0 {
            return Err(StateError::Corrupt(format!(
                "{} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Value types that can travel inside a state record or WAL frame.
pub trait StateCodec: Sized {
    /// Lower bound on the encoded size, used to validate collection
    /// lengths before allocating.
    const MIN_BYTES: usize;

    /// Append this value to `w`.
    fn encode_state(&self, w: &mut StateWriter);

    /// Decode one value.
    fn decode_state(r: &mut StateReader<'_>) -> Result<Self, StateError>;
}

impl StateCodec for u64 {
    const MIN_BYTES: usize = 8;

    fn encode_state(&self, w: &mut StateWriter) {
        w.put_u64(*self);
    }

    fn decode_state(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        r.get_u64()
    }
}

impl StateCodec for String {
    const MIN_BYTES: usize = 4;

    fn encode_state(&self, w: &mut StateWriter) {
        w.put_len_bytes(self.as_bytes());
    }

    fn decode_state(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let bytes = r.get_len_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StateError::Corrupt("invalid utf-8 in string value".into()))
    }
}

/// Captured xoshiro256++ state words (see `rand::rngs::SmallRng::state`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RngState(pub [u64; 4]);

/// Capture the state of `rng` when it is a
/// [`SmallRng`](rand::rngs::SmallRng) — the only checkpointable
/// generator — or `None` for any other type. Samplers are generic over
/// their RNG, so this is the narrow waist their `save_state` overrides
/// go through.
pub fn capture_rng<R: std::any::Any>(rng: &R) -> Option<RngState> {
    (rng as &dyn std::any::Any)
        .downcast_ref::<rand::rngs::SmallRng>()
        .map(|r| RngState(r.state()))
}

/// Overwrite `rng` from captured state when it is a
/// [`SmallRng`](rand::rngs::SmallRng); returns `false` (and leaves the
/// generator untouched) otherwise.
pub fn restore_rng<R: std::any::Any>(rng: &mut R, state: &RngState) -> bool {
    match (rng as &mut dyn std::any::Any).downcast_mut::<rand::rngs::SmallRng>() {
        Some(r) => {
            *r = rand::rngs::SmallRng::from_state(state.0);
            true
        }
        None => false,
    }
}

/// Captured [`crate::rngutil::BitSource`] coin buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitsState {
    /// Buffered coin bits, LSB next.
    pub buf: u64,
    /// Coins left in `buf` (≤ 64).
    pub left: u8,
}

/// One instance of the sequence-window WR two-bucket construction
/// (Theorem 2.1): the retained previous-bucket sample, the growing
/// current-bucket candidate, and the precomputed next acceptance.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqWrLaneState<T> {
    /// Sample of the completed previous bucket, with its acceptance count.
    pub prev: Option<Sample<T>>,
    /// Candidate of the in-progress bucket.
    pub cur: Option<Sample<T>>,
    /// 1-based stream count of the next acceptance (`u64::MAX` = no more
    /// accepts this bucket).
    pub next_accept: u64,
}

/// Algorithm L reservoir state: entries plus the geometric skip schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservoirLState<T> {
    /// Retained samples (≤ capacity).
    pub entries: Vec<Sample<T>>,
    /// Elements offered so far.
    pub seen: u64,
    /// Next 1-based arrival count at which a replacement happens.
    pub next_accept: u64,
    /// Algorithm L's running `W`, as raw IEEE-754 bits (exact round trip).
    pub w_bits: u64,
}

/// One chain-sample instance: its links and adoption schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainLaneState<T> {
    /// `(sample, successor index)` links, oldest first.
    pub links: Vec<(Sample<T>, u64)>,
    /// Stream index whose arrival the head is waiting to adopt.
    pub next_adopt: u64,
}

/// Captured [`crate::ts::TsEngineBank`] state: the shared covering
/// decomposition with per-bucket lane samples, plus the coin buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct TsBankState<T> {
    /// The bank's current clock.
    pub now: u64,
    /// Buffered merge coins.
    pub bits: BitsState,
    /// Covering phase and buckets.
    pub kind: TsBankKind<T>,
}

/// Which phase the bank's covering decomposition is in.
#[derive(Debug, Clone, PartialEq)]
pub enum TsBankKind<T> {
    /// No elements in scope.
    Empty,
    /// Window not yet full: one covering from the stream start.
    Full(Vec<TsBankBucketState<T>>),
    /// Window full: expired-straddling head bucket + in-window tail.
    Straddle {
        /// The bucket straddling the window boundary.
        head: TsBankBucketState<T>,
        /// The covering of buckets fully inside the window.
        tail: Vec<TsBankBucketState<T>>,
    },
}

/// One bucket of the bank's covering, with its lane samples in whichever
/// representation the bank had materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct TsBankBucketState<T> {
    /// Bucket timestamp interval start (inclusive).
    pub a: u64,
    /// Bucket timestamp interval end (exclusive).
    pub b: u64,
    /// Timestamp of the bucket's first arrival.
    pub ts_first: u64,
    /// Lane samples.
    pub samples: TsLaneSamplesState<T>,
}

/// Lazily-materialized lane samples of one bank bucket.
#[derive(Debug, Clone, PartialEq)]
pub enum TsLaneSamplesState<T> {
    /// All lanes share one sample (singleton bucket).
    Shared(Sample<T>),
    /// Two-way split after one merge: per-lane selectors pick `lo`/`hi`.
    Pair {
        /// Sample adopted by lanes whose `rsel` bit is 0.
        lo: Sample<T>,
        /// Sample adopted by lanes whose `rsel` bit is 1.
        hi: Sample<T>,
        /// Per-lane `r` selector bits (lane `j` = bit `j`).
        rsel: u64,
        /// Per-lane `q` selector bits.
        qsel: u64,
    },
    /// Fully materialized per-lane samples.
    PerLane {
        /// Per-lane `r` (uniform-in-bucket) samples.
        r: Vec<Sample<T>>,
        /// Per-lane `q` (first-in-bucket) samples.
        q: Vec<Sample<T>>,
    },
}

/// A checkpoint of one sampler's stream-dependent state — every retained
/// sample, counter, skip schedule, and RNG word needed to continue the
/// run bit-identically on a freshly spec-built sampler of the same
/// family. See the module docs for what is deliberately *not* stored.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplerState<T> {
    /// Sequence-window sampling with replacement (Theorem 2.1 buckets).
    SeqWr {
        /// Elements ingested.
        count: u64,
        /// Lifetime accepted-arrival count (diagnostic; the SoA backend
        /// does not track it and saves 0).
        accepts: u64,
        /// RNG state.
        rng: RngState,
        /// Per-instance bucket state.
        lanes: Vec<SeqWrLaneState<T>>,
    },
    /// Sequence-window sampling without replacement (Theorem 2.2).
    SeqWor {
        /// Elements ingested.
        count: u64,
        /// RNG state.
        rng: RngState,
        /// Previous bucket's k-sample.
        prev: Vec<Sample<T>>,
        /// Current bucket's in-progress reservoir.
        cur: ReservoirLState<T>,
    },
    /// Whole-stream Algorithm L reservoir.
    StreamL {
        /// Next stream index to assign.
        next_index: u64,
        /// RNG state.
        rng: RngState,
        /// The reservoir.
        res: ReservoirLState<T>,
    },
    /// Timestamp-window sampling with replacement (§3, fused bank).
    TsWr {
        /// Sampler clock.
        now: u64,
        /// Next stream index to assign.
        next_index: u64,
        /// RNG state.
        rng: RngState,
        /// The fused bank.
        bank: TsBankState<T>,
    },
    /// Timestamp-window sampling without replacement (§4 delayed engine).
    TsWor {
        /// Sampler clock.
        now: u64,
        /// Next stream index to assign.
        next_index: u64,
        /// RNG state.
        rng: RngState,
        /// The ≤ k most recent in-window arrivals, oldest first.
        recent: Vec<Sample<T>>,
        /// The delayed bank (uniform delay k−1).
        bank: TsBankState<T>,
    },
    /// Chain sampling baseline (Babcock–Datar–Motwani).
    Chain {
        /// Elements ingested.
        count: u64,
        /// RNG state.
        rng: RngState,
        /// Coin buffer.
        bits: BitsState,
        /// Per-instance chains.
        chains: Vec<ChainLaneState<T>>,
    },
    /// Priority sampling baseline (per-instance right-maxima stacks).
    Priority {
        /// Sampler clock.
        now: u64,
        /// Next stream index to assign.
        next_index: u64,
        /// RNG state.
        rng: RngState,
        /// Per-instance `(sample, priority)` stacks, oldest first.
        stacks: Vec<Vec<(Sample<T>, u64)>>,
    },
    /// Priority top-k baseline (single shared priority order).
    PriorityTopK {
        /// Sampler clock.
        now: u64,
        /// Next stream index to assign.
        next_index: u64,
        /// RNG state.
        rng: RngState,
        /// `(sample, priority)` entries, oldest first.
        entries: Vec<(Sample<T>, u64)>,
        /// Compaction watermark (entries below it are dominance-checked).
        watermark: u64,
    },
    /// Exact window buffer baseline.
    WindowBuffer {
        /// Sampler clock.
        now: u64,
        /// Next stream index to assign.
        next_index: u64,
        /// RNG state.
        rng: RngState,
        /// Every in-window element, oldest first.
        buf: Vec<Sample<T>>,
    },
}

const TAG_SEQ_WR: u8 = 1;
const TAG_SEQ_WOR: u8 = 2;
const TAG_STREAM_L: u8 = 3;
const TAG_TS_WR: u8 = 4;
const TAG_TS_WOR: u8 = 5;
const TAG_CHAIN: u8 = 6;
const TAG_PRIORITY: u8 = 7;
const TAG_PRIORITY_TOPK: u8 = 8;
const TAG_WINDOW_BUFFER: u8 = 9;

fn put_rng(w: &mut StateWriter, rng: &RngState) {
    for word in rng.0 {
        w.put_u64(word);
    }
}

fn get_rng(r: &mut StateReader<'_>) -> Result<RngState, StateError> {
    let mut s = [0u64; 4];
    for word in &mut s {
        *word = r.get_u64()?;
    }
    Ok(RngState(s))
}

fn put_bits(w: &mut StateWriter, bits: &BitsState) {
    w.put_u64(bits.buf);
    w.put_u8(bits.left);
}

fn get_bits(r: &mut StateReader<'_>) -> Result<BitsState, StateError> {
    let buf = r.get_u64()?;
    let left = r.get_u8()?;
    if left > 64 {
        return Err(StateError::Corrupt(format!("coin buffer left={left} > 64")));
    }
    Ok(BitsState { buf, left })
}

fn put_sample<T: StateCodec>(w: &mut StateWriter, s: &Sample<T>) {
    s.value().encode_state(w);
    w.put_u64(s.index());
    w.put_u64(s.timestamp());
}

fn get_sample<T: StateCodec>(r: &mut StateReader<'_>) -> Result<Sample<T>, StateError> {
    let value = T::decode_state(r)?;
    let index = r.get_u64()?;
    let timestamp = r.get_u64()?;
    Ok(Sample::new(value, index, timestamp))
}

const SAMPLE_MIN: usize = 16; // index + timestamp; value adds T::MIN_BYTES

fn put_opt_sample<T: StateCodec>(w: &mut StateWriter, s: &Option<Sample<T>>) {
    match s {
        None => w.put_u8(0),
        Some(s) => {
            w.put_u8(1);
            put_sample(w, s);
        }
    }
}

fn get_opt_sample<T: StateCodec>(r: &mut StateReader<'_>) -> Result<Option<Sample<T>>, StateError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_sample(r)?)),
        t => Err(StateError::Corrupt(format!("bad option tag {t}"))),
    }
}

fn put_samples<T: StateCodec>(w: &mut StateWriter, samples: &[Sample<T>]) {
    w.put_u32(samples.len() as u32);
    for s in samples {
        put_sample(w, s);
    }
}

fn get_samples<T: StateCodec>(r: &mut StateReader<'_>) -> Result<Vec<Sample<T>>, StateError> {
    let n = r.get_count(SAMPLE_MIN + T::MIN_BYTES)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_sample(r)?);
    }
    Ok(out)
}

fn put_prio_entries<T: StateCodec>(w: &mut StateWriter, entries: &[(Sample<T>, u64)]) {
    w.put_u32(entries.len() as u32);
    for (s, p) in entries {
        put_sample(w, s);
        w.put_u64(*p);
    }
}

fn get_prio_entries<T: StateCodec>(
    r: &mut StateReader<'_>,
) -> Result<Vec<(Sample<T>, u64)>, StateError> {
    let n = r.get_count(SAMPLE_MIN + T::MIN_BYTES + 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let s = get_sample(r)?;
        let p = r.get_u64()?;
        out.push((s, p));
    }
    Ok(out)
}

fn put_reservoir<T: StateCodec>(w: &mut StateWriter, res: &ReservoirLState<T>) {
    put_samples(w, &res.entries);
    w.put_u64(res.seen);
    w.put_u64(res.next_accept);
    w.put_u64(res.w_bits);
}

fn get_reservoir<T: StateCodec>(r: &mut StateReader<'_>) -> Result<ReservoirLState<T>, StateError> {
    let entries = get_samples(r)?;
    let seen = r.get_u64()?;
    let next_accept = r.get_u64()?;
    let w_bits = r.get_u64()?;
    Ok(ReservoirLState {
        entries,
        seen,
        next_accept,
        w_bits,
    })
}

fn put_bank_bucket<T: StateCodec>(w: &mut StateWriter, b: &TsBankBucketState<T>) {
    w.put_u64(b.a);
    w.put_u64(b.b);
    w.put_u64(b.ts_first);
    match &b.samples {
        TsLaneSamplesState::Shared(s) => {
            w.put_u8(0);
            put_sample(w, s);
        }
        TsLaneSamplesState::Pair { lo, hi, rsel, qsel } => {
            w.put_u8(1);
            put_sample(w, lo);
            put_sample(w, hi);
            w.put_u64(*rsel);
            w.put_u64(*qsel);
        }
        TsLaneSamplesState::PerLane { r, q } => {
            w.put_u8(2);
            put_samples(w, r);
            put_samples(w, q);
        }
    }
}

fn get_bank_bucket<T: StateCodec>(
    r: &mut StateReader<'_>,
) -> Result<TsBankBucketState<T>, StateError> {
    let a = r.get_u64()?;
    let b = r.get_u64()?;
    let ts_first = r.get_u64()?;
    let samples = match r.get_u8()? {
        0 => TsLaneSamplesState::Shared(get_sample(r)?),
        1 => {
            let lo = get_sample(r)?;
            let hi = get_sample(r)?;
            let rsel = r.get_u64()?;
            let qsel = r.get_u64()?;
            TsLaneSamplesState::Pair { lo, hi, rsel, qsel }
        }
        2 => {
            let rs = get_samples(r)?;
            let qs = get_samples(r)?;
            TsLaneSamplesState::PerLane { r: rs, q: qs }
        }
        t => return Err(StateError::Corrupt(format!("bad lane-samples tag {t}"))),
    };
    Ok(TsBankBucketState {
        a,
        b,
        ts_first,
        samples,
    })
}

const BUCKET_MIN: usize = 25; // a + b + ts_first + samples tag

fn put_bank_buckets<T: StateCodec>(w: &mut StateWriter, buckets: &[TsBankBucketState<T>]) {
    w.put_u32(buckets.len() as u32);
    for b in buckets {
        put_bank_bucket(w, b);
    }
}

fn get_bank_buckets<T: StateCodec>(
    r: &mut StateReader<'_>,
) -> Result<Vec<TsBankBucketState<T>>, StateError> {
    let n = r.get_count(BUCKET_MIN)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_bank_bucket(r)?);
    }
    Ok(out)
}

fn put_bank<T: StateCodec>(w: &mut StateWriter, bank: &TsBankState<T>) {
    w.put_u64(bank.now);
    put_bits(w, &bank.bits);
    match &bank.kind {
        TsBankKind::Empty => w.put_u8(0),
        TsBankKind::Full(buckets) => {
            w.put_u8(1);
            put_bank_buckets(w, buckets);
        }
        TsBankKind::Straddle { head, tail } => {
            w.put_u8(2);
            put_bank_bucket(w, head);
            put_bank_buckets(w, tail);
        }
    }
}

fn get_bank<T: StateCodec>(r: &mut StateReader<'_>) -> Result<TsBankState<T>, StateError> {
    let now = r.get_u64()?;
    let bits = get_bits(r)?;
    let kind = match r.get_u8()? {
        0 => TsBankKind::Empty,
        1 => TsBankKind::Full(get_bank_buckets(r)?),
        2 => {
            let head = get_bank_bucket(r)?;
            let tail = get_bank_buckets(r)?;
            TsBankKind::Straddle { head, tail }
        }
        t => return Err(StateError::Corrupt(format!("bad bank-state tag {t}"))),
    };
    Ok(TsBankState { now, bits, kind })
}

impl<T> SamplerState<T> {
    /// Short family name, used in mismatch errors and diagnostics.
    pub fn family(&self) -> &'static str {
        match self {
            SamplerState::SeqWr { .. } => "seq-wr",
            SamplerState::SeqWor { .. } => "seq-wor",
            SamplerState::StreamL { .. } => "stream-l",
            SamplerState::TsWr { .. } => "ts-wr",
            SamplerState::TsWor { .. } => "ts-wor",
            SamplerState::Chain { .. } => "chain",
            SamplerState::Priority { .. } => "priority",
            SamplerState::PriorityTopK { .. } => "priority-topk",
            SamplerState::WindowBuffer { .. } => "window-buffer",
        }
    }
}

impl<T: StateCodec> SamplerState<T> {
    /// Encode the bare payload (family tag + fields), without version or
    /// checksum framing.
    pub fn encode_payload(&self, w: &mut StateWriter) {
        match self {
            SamplerState::SeqWr {
                count,
                accepts,
                rng,
                lanes,
            } => {
                w.put_u8(TAG_SEQ_WR);
                w.put_u64(*count);
                w.put_u64(*accepts);
                put_rng(w, rng);
                w.put_u32(lanes.len() as u32);
                for lane in lanes {
                    put_opt_sample(w, &lane.prev);
                    put_opt_sample(w, &lane.cur);
                    w.put_u64(lane.next_accept);
                }
            }
            SamplerState::SeqWor {
                count,
                rng,
                prev,
                cur,
            } => {
                w.put_u8(TAG_SEQ_WOR);
                w.put_u64(*count);
                put_rng(w, rng);
                put_samples(w, prev);
                put_reservoir(w, cur);
            }
            SamplerState::StreamL {
                next_index,
                rng,
                res,
            } => {
                w.put_u8(TAG_STREAM_L);
                w.put_u64(*next_index);
                put_rng(w, rng);
                put_reservoir(w, res);
            }
            SamplerState::TsWr {
                now,
                next_index,
                rng,
                bank,
            } => {
                w.put_u8(TAG_TS_WR);
                w.put_u64(*now);
                w.put_u64(*next_index);
                put_rng(w, rng);
                put_bank(w, bank);
            }
            SamplerState::TsWor {
                now,
                next_index,
                rng,
                recent,
                bank,
            } => {
                w.put_u8(TAG_TS_WOR);
                w.put_u64(*now);
                w.put_u64(*next_index);
                put_rng(w, rng);
                put_samples(w, recent);
                put_bank(w, bank);
            }
            SamplerState::Chain {
                count,
                rng,
                bits,
                chains,
            } => {
                w.put_u8(TAG_CHAIN);
                w.put_u64(*count);
                put_rng(w, rng);
                put_bits(w, bits);
                w.put_u32(chains.len() as u32);
                for chain in chains {
                    put_prio_entries(w, &chain.links);
                    w.put_u64(chain.next_adopt);
                }
            }
            SamplerState::Priority {
                now,
                next_index,
                rng,
                stacks,
            } => {
                w.put_u8(TAG_PRIORITY);
                w.put_u64(*now);
                w.put_u64(*next_index);
                put_rng(w, rng);
                w.put_u32(stacks.len() as u32);
                for stack in stacks {
                    put_prio_entries(w, stack);
                }
            }
            SamplerState::PriorityTopK {
                now,
                next_index,
                rng,
                entries,
                watermark,
            } => {
                w.put_u8(TAG_PRIORITY_TOPK);
                w.put_u64(*now);
                w.put_u64(*next_index);
                put_rng(w, rng);
                put_prio_entries(w, entries);
                w.put_u64(*watermark);
            }
            SamplerState::WindowBuffer {
                now,
                next_index,
                rng,
                buf,
            } => {
                w.put_u8(TAG_WINDOW_BUFFER);
                w.put_u64(*now);
                w.put_u64(*next_index);
                put_rng(w, rng);
                put_samples(w, buf);
            }
        }
    }

    /// Decode a bare payload written by
    /// [`encode_payload`](SamplerState::encode_payload).
    pub fn decode_payload(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        match r.get_u8()? {
            TAG_SEQ_WR => {
                let count = r.get_u64()?;
                let accepts = r.get_u64()?;
                let rng = get_rng(r)?;
                let n = r.get_count(10)?; // two option tags + next_accept
                let mut lanes = Vec::with_capacity(n);
                for _ in 0..n {
                    let prev = get_opt_sample(r)?;
                    let cur = get_opt_sample(r)?;
                    let next_accept = r.get_u64()?;
                    lanes.push(SeqWrLaneState {
                        prev,
                        cur,
                        next_accept,
                    });
                }
                Ok(SamplerState::SeqWr {
                    count,
                    accepts,
                    rng,
                    lanes,
                })
            }
            TAG_SEQ_WOR => {
                let count = r.get_u64()?;
                let rng = get_rng(r)?;
                let prev = get_samples(r)?;
                let cur = get_reservoir(r)?;
                Ok(SamplerState::SeqWor {
                    count,
                    rng,
                    prev,
                    cur,
                })
            }
            TAG_STREAM_L => {
                let next_index = r.get_u64()?;
                let rng = get_rng(r)?;
                let res = get_reservoir(r)?;
                Ok(SamplerState::StreamL {
                    next_index,
                    rng,
                    res,
                })
            }
            TAG_TS_WR => {
                let now = r.get_u64()?;
                let next_index = r.get_u64()?;
                let rng = get_rng(r)?;
                let bank = get_bank(r)?;
                Ok(SamplerState::TsWr {
                    now,
                    next_index,
                    rng,
                    bank,
                })
            }
            TAG_TS_WOR => {
                let now = r.get_u64()?;
                let next_index = r.get_u64()?;
                let rng = get_rng(r)?;
                let recent = get_samples(r)?;
                let bank = get_bank(r)?;
                Ok(SamplerState::TsWor {
                    now,
                    next_index,
                    rng,
                    recent,
                    bank,
                })
            }
            TAG_CHAIN => {
                let count = r.get_u64()?;
                let rng = get_rng(r)?;
                let bits = get_bits(r)?;
                let n = r.get_count(12)?; // links count + next_adopt
                let mut chains = Vec::with_capacity(n);
                for _ in 0..n {
                    let links = get_prio_entries(r)?;
                    let next_adopt = r.get_u64()?;
                    chains.push(ChainLaneState { links, next_adopt });
                }
                Ok(SamplerState::Chain {
                    count,
                    rng,
                    bits,
                    chains,
                })
            }
            TAG_PRIORITY => {
                let now = r.get_u64()?;
                let next_index = r.get_u64()?;
                let rng = get_rng(r)?;
                let n = r.get_count(4)?;
                let mut stacks = Vec::with_capacity(n);
                for _ in 0..n {
                    stacks.push(get_prio_entries(r)?);
                }
                Ok(SamplerState::Priority {
                    now,
                    next_index,
                    rng,
                    stacks,
                })
            }
            TAG_PRIORITY_TOPK => {
                let now = r.get_u64()?;
                let next_index = r.get_u64()?;
                let rng = get_rng(r)?;
                let entries = get_prio_entries(r)?;
                let watermark = r.get_u64()?;
                Ok(SamplerState::PriorityTopK {
                    now,
                    next_index,
                    rng,
                    entries,
                    watermark,
                })
            }
            TAG_WINDOW_BUFFER => {
                let now = r.get_u64()?;
                let next_index = r.get_u64()?;
                let rng = get_rng(r)?;
                let buf = get_samples(r)?;
                Ok(SamplerState::WindowBuffer {
                    now,
                    next_index,
                    rng,
                    buf,
                })
            }
            t => Err(StateError::Corrupt(format!("unknown family tag {t}"))),
        }
    }

    /// Encode a self-validating record:
    /// `[version u32][payload][crc32(version ‖ payload) u32]`.
    pub fn encode_record(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_u32(STATE_VERSION);
        self.encode_payload(&mut w);
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Decode and fully validate a record written by
    /// [`encode_record`](SamplerState::encode_record): checksum first,
    /// then version, then payload, rejecting trailing bytes.
    pub fn decode_record(bytes: &[u8]) -> Result<Self, StateError> {
        if bytes.len() < 8 {
            return Err(StateError::Corrupt(format!(
                "record too short: {} bytes",
                bytes.len()
            )));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        let actual = crc32(body);
        if stored != actual {
            return Err(StateError::Corrupt(format!(
                "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        let mut r = StateReader::new(body);
        let version = r.get_u32()?;
        if version != STATE_VERSION {
            return Err(StateError::Version(version));
        }
        let state = Self::decode_payload(&mut r)?;
        r.finish()?;
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(v: u64) -> Sample<u64> {
        Sample::new(v, v + 1, v + 2)
    }

    fn example_states() -> Vec<SamplerState<u64>> {
        vec![
            SamplerState::SeqWr {
                count: 100,
                accepts: 7,
                rng: RngState([1, 2, 3, 4]),
                lanes: vec![
                    SeqWrLaneState {
                        prev: Some(sample(5)),
                        cur: None,
                        next_accept: u64::MAX,
                    },
                    SeqWrLaneState {
                        prev: None,
                        cur: Some(sample(9)),
                        next_accept: 42,
                    },
                ],
            },
            SamplerState::SeqWor {
                count: 50,
                rng: RngState([9, 8, 7, 6]),
                prev: vec![sample(1), sample(2)],
                cur: ReservoirLState {
                    entries: vec![sample(3)],
                    seen: 10,
                    next_accept: 12,
                    w_bits: 0.5f64.to_bits(),
                },
            },
            SamplerState::StreamL {
                next_index: 33,
                rng: RngState([0, 0, 0, 1]),
                res: ReservoirLState {
                    entries: vec![],
                    seen: 0,
                    next_accept: 0,
                    w_bits: 1.0f64.to_bits(),
                },
            },
            SamplerState::TsWr {
                now: 77,
                next_index: 12,
                rng: RngState([4, 3, 2, 1]),
                bank: TsBankState {
                    now: 77,
                    bits: BitsState {
                        buf: 0b1011,
                        left: 4,
                    },
                    kind: TsBankKind::Straddle {
                        head: TsBankBucketState {
                            a: 0,
                            b: 8,
                            ts_first: 1,
                            samples: TsLaneSamplesState::Pair {
                                lo: sample(1),
                                hi: sample(2),
                                rsel: 0b01,
                                qsel: 0b10,
                            },
                        },
                        tail: vec![TsBankBucketState {
                            a: 8,
                            b: 12,
                            ts_first: 8,
                            samples: TsLaneSamplesState::PerLane {
                                r: vec![sample(3), sample(4)],
                                q: vec![sample(5), sample(6)],
                            },
                        }],
                    },
                },
            },
            SamplerState::TsWor {
                now: 5,
                next_index: 6,
                rng: RngState([11, 12, 13, 14]),
                recent: vec![sample(7)],
                bank: TsBankState {
                    now: 4,
                    bits: BitsState { buf: 0, left: 0 },
                    kind: TsBankKind::Full(vec![TsBankBucketState {
                        a: 0,
                        b: 4,
                        ts_first: 0,
                        samples: TsLaneSamplesState::Shared(sample(8)),
                    }]),
                },
            },
            SamplerState::Chain {
                count: 9,
                rng: RngState([5, 5, 5, 5]),
                bits: BitsState {
                    buf: u64::MAX,
                    left: 64,
                },
                chains: vec![ChainLaneState {
                    links: vec![(sample(1), 4), (sample(4), 9)],
                    next_adopt: 9,
                }],
            },
            SamplerState::Priority {
                now: 3,
                next_index: 4,
                rng: RngState([6, 6, 6, 6]),
                stacks: vec![vec![(sample(1), 900), (sample(2), 400)], vec![]],
            },
            SamplerState::PriorityTopK {
                now: 3,
                next_index: 4,
                rng: RngState([7, 7, 7, 7]),
                entries: vec![(sample(1), 100)],
                watermark: 1,
            },
            SamplerState::WindowBuffer {
                now: 2,
                next_index: 3,
                rng: RngState([8, 8, 8, 8]),
                buf: vec![sample(0), sample(1)],
            },
        ]
    }

    #[test]
    fn round_trip_every_family() {
        for state in example_states() {
            let bytes = state.encode_record();
            let back = SamplerState::<u64>::decode_record(&bytes)
                .unwrap_or_else(|e| panic!("{}: {e}", state.family()));
            assert_eq!(back, state, "{}", state.family());
        }
    }

    #[test]
    fn string_values_round_trip() {
        let state = SamplerState::WindowBuffer {
            now: 1,
            next_index: 2,
            rng: RngState([1, 2, 3, 4]),
            buf: vec![Sample::new("héllo".to_string(), 0, 0)],
        };
        let bytes = state.encode_record();
        let back = SamplerState::<String>::decode_record(&bytes).expect("decode");
        assert_eq!(back, state);
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let state = &example_states()[0];
        let bytes = state.encode_record();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    SamplerState::<u64>::decode_record(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_an_error() {
        let state = &example_states()[3]; // ts-wr: deepest nesting
        let bytes = state.encode_record();
        for len in 0..bytes.len() {
            assert!(
                SamplerState::<u64>::decode_record(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn version_skew_is_reported() {
        let state = &example_states()[0];
        let mut bytes = state.encode_record();
        // Patch the version field and re-stamp the checksum so only the
        // version check can object.
        bytes[0] = 99;
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert_eq!(
            SamplerState::<u64>::decode_record(&bytes),
            Err(StateError::Version(99))
        );
    }

    #[test]
    fn varint_round_trips_and_rejects_overlong() {
        let probes = [
            0u64,
            1,
            0x7F,
            0x80,
            300,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut w = StateWriter::new();
        for &v in &probes {
            w.put_varint_u64(v);
        }
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        for &v in &probes {
            assert_eq!(r.get_varint_u64().expect("round trip"), v);
        }
        r.finish().expect("exact consumption");
        // 11 continuation bytes: longer than any valid u64 varint.
        let overlong = [0x80u8; 11];
        assert!(StateReader::new(&overlong).get_varint_u64().is_err());
        // 10 bytes whose final byte pushes past 64 bits.
        let overflow = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(StateReader::new(&overflow).get_varint_u64().is_err());
        // Truncated mid-varint is corruption, not a panic.
        assert!(StateReader::new(&[0x80u8]).get_varint_u64().is_err());
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_sliced_matches_bytewise_at_every_length() {
        // The slicing-by-8 fold must agree with the defining
        // byte-at-a-time recurrence at every length mod 8 (chunked
        // path, remainder path, and their seam).
        fn reference(bytes: &[u8]) -> u32 {
            let mut c = !0u32;
            for &b in bytes {
                c ^= b as u32;
                for _ in 0..8 {
                    c = if c & 1 == 1 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
            }
            !c
        }
        let data: Vec<u8> = (0u32..64)
            .map(|i| (i.wrapping_mul(167) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn huge_count_does_not_allocate() {
        // A corrupted count must be rejected by bounds, not by OOM.
        let mut w = StateWriter::new();
        w.put_u32(STATE_VERSION);
        w.put_u8(super::TAG_PRIORITY);
        w.put_u64(0);
        w.put_u64(0);
        put_rng(&mut w, &RngState([1, 2, 3, 4]));
        w.put_u32(u32::MAX); // absurd stack count
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let err = SamplerState::<u64>::decode_record(&bytes).expect_err("must reject");
        assert!(matches!(err, StateError::Corrupt(_)));
    }
}
