//! Library surface of the `swsample` CLI: flag parsing ([`args`]) and
//! the subcommand drivers ([`commands`]), written against generic
//! readers/writers so tests can run every command end-to-end in memory
//! — including the adversarial flag-garbling property tests, which
//! assert that no command line ever panics the parser.
//!
//! The installable binary (`src/main.rs`) is a thin shell over
//! [`commands::run`].

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
