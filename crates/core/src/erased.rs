//! The object-safe erased sampler surface: [`ErasedWindowSampler`].
//!
//! [`WindowSampler`] is the precise, generic
//! interface; it is not object-safe-friendly for *fleets* — code that
//! owns many windows of different concrete types (different algorithms,
//! different window disciplines) would need one type parameter per
//! sampler. `ErasedWindowSampler` is the companion dyn-compatible trait:
//! batch-first ingestion, `k`-sample queries, word-exact memory
//! accounting, and [`spec`](ErasedWindowSampler::spec) introspection,
//! blanket-implemented for every `WindowSampler<T>` (which already
//! carries `MemoryWords` as a supertrait). Anything that implements the
//! precise trait is an erased sampler for free:
//!
//! ```
//! use rand::{rngs::SmallRng, SeedableRng};
//! use swsample_core::seq::SeqSamplerWr;
//! use swsample_core::ts::TsSamplerWor;
//! use swsample_core::ErasedWindowSampler;
//!
//! // A heterogeneous fleet: different algorithms, one element type.
//! let mut fleet: Vec<Box<dyn ErasedWindowSampler<u64>>> = vec![
//!     Box::new(SeqSamplerWr::new(100, 2, SmallRng::seed_from_u64(1))),
//!     Box::new(TsSamplerWor::new(60, 4, SmallRng::seed_from_u64(2))),
//! ];
//! for s in &mut fleet {
//!     s.advance_and_insert(1, &[10, 20, 30]);
//!     assert!(s.sample_k().is_some());
//! }
//! let total_words: usize = fleet.iter().map(|s| s.memory_words()).sum();
//! assert!(total_words > 0);
//! ```
//!
//! Samplers constructed through [`SamplerSpec::build`](crate::spec::SamplerSpec::build)
//! additionally answer [`spec`](ErasedWindowSampler::spec) with the record
//! that built them; hand-boxed concrete samplers answer `None`.

use crate::memory::MemoryWords;
use crate::sample::Sample;
use crate::spec::SamplerSpec;
use crate::state::{SamplerState, StateError};
use crate::traits::WindowSampler;

/// Object-safe view of any sliding-window sampler.
///
/// The contract is [`WindowSampler`]'s, restated
/// without generic methods so `Box<dyn ErasedWindowSampler<T>>` works:
/// optionally advance the clock, insert (batches preferred on hot
/// paths — they are what the skip-ahead fast paths key on), query at any
/// point.
///
/// `Send + Sync` are supertraits: erased samplers are what fleets hold,
/// and fleets shard across worker threads (`MultiStreamEngine`'s parallel
/// ingestion), so every erased sampler must be free to cross a thread
/// boundary — and, since shards sit behind `RwLock` so read-only queries
/// can proceed concurrently, to be *referenced* from several threads at
/// once (`&self` access only ever happens under a read guard; all
/// mutation takes the write guard). The blanket impl therefore covers
/// every `WindowSampler<T>` that is itself `Send + Sync` — which is all
/// of them in this workspace: the samplers own plain data plus a
/// `SmallRng`. A hypothetical non-thread-safe sampler (e.g. one holding
/// `Rc` state) keeps the precise generic interface and simply cannot be
/// erased.
pub trait ErasedWindowSampler<T: Clone>: Send + Sync {
    /// Move the clock forward to `now`, expiring elements. No-op for
    /// sequence-based and whole-stream samplers.
    ///
    /// # Panics
    /// Panics if `now` is smaller than a previously supplied time.
    fn advance_time(&mut self, now: u64);

    /// Insert one arriving element.
    fn insert(&mut self, value: T);

    /// Insert a run of arrivals at once (all stamped with the current
    /// clock for timestamp windows). Semantically one [`insert`] per
    /// element, in order, but dispatches into the implementations'
    /// skip-ahead / engine-major fast paths.
    ///
    /// [`insert`]: ErasedWindowSampler::insert
    fn insert_batch(&mut self, values: &[T]);

    /// Advance the clock to `now`, then insert `values`, all stamped
    /// `now` — one dispatch per tick's worth of arrivals.
    ///
    /// # Panics
    /// Panics if `now` is smaller than a previously supplied time.
    fn advance_and_insert(&mut self, now: u64, values: &[T]);

    /// Draw one uniform sample from the active window, or `None` if the
    /// window is empty.
    fn sample(&mut self) -> Option<Sample<T>>;

    /// Draw the full `k`-sample; see
    /// [`WindowSampler::sample_k`] for the
    /// with/without-replacement contract.
    fn sample_k(&mut self) -> Option<Vec<Sample<T>>>;

    /// The configured number of samples `k`.
    fn k(&self) -> usize;

    /// Exact current footprint in the paper's §1.4 word model.
    fn memory_words(&self) -> usize;

    /// The [`SamplerSpec`] this sampler was built from, when it was built
    /// through one (`SamplerSpec::build` or a
    /// [`SamplerFactory`](crate::spec::SamplerFactory)); `None` for
    /// hand-constructed samplers.
    fn spec(&self) -> Option<&SamplerSpec>;

    /// Checkpoint the sampler's stream-dependent state; see
    /// [`WindowSampler::save_state`]. `None` when this configuration
    /// cannot be checkpointed.
    fn save_state(&self) -> Option<SamplerState<T>>;

    /// Overwrite this sampler's state from a checkpoint; see
    /// [`WindowSampler::restore_state`]. The sampler must be freshly
    /// built from the spec that produced the checkpoint.
    fn restore_state(&mut self, state: SamplerState<T>) -> Result<(), StateError>;
}

impl<T: Clone, S: WindowSampler<T> + Send + Sync> ErasedWindowSampler<T> for S {
    fn advance_time(&mut self, now: u64) {
        WindowSampler::advance_time(self, now);
    }

    fn insert(&mut self, value: T) {
        WindowSampler::insert(self, value);
    }

    fn insert_batch(&mut self, values: &[T]) {
        WindowSampler::insert_batch(self, values);
    }

    fn advance_and_insert(&mut self, now: u64, values: &[T]) {
        WindowSampler::advance_and_insert(self, now, values);
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        WindowSampler::sample(self)
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        WindowSampler::sample_k(self)
    }

    fn k(&self) -> usize {
        WindowSampler::k(self)
    }

    fn memory_words(&self) -> usize {
        MemoryWords::memory_words(self)
    }

    fn spec(&self) -> Option<&SamplerSpec> {
        WindowSampler::spec(self)
    }

    fn save_state(&self) -> Option<SamplerState<T>> {
        WindowSampler::save_state(self)
    }

    fn restore_state(&mut self, state: SamplerState<T>) -> Result<(), StateError> {
        WindowSampler::restore_state(self, state)
    }
}

/// Boxed erased samplers report their inner footprint, so fleets
/// (`Vec<Box<dyn ErasedWindowSampler<T>>>`, the multi-stream engine's
/// shards) sum through the existing [`MemoryWords`] machinery.
impl<T: Clone> MemoryWords for Box<dyn ErasedWindowSampler<T>> {
    fn memory_words(&self) -> usize {
        self.as_ref().memory_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{SeqSamplerWor, SeqSamplerWr};
    use crate::ts::TsSamplerWr;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn blanket_impl_erases_any_window_sampler() {
        let mut fleet: Vec<Box<dyn ErasedWindowSampler<u64>>> = vec![
            Box::new(SeqSamplerWr::new(10, 2, SmallRng::seed_from_u64(1))),
            Box::new(SeqSamplerWor::new(10, 2, SmallRng::seed_from_u64(2))),
            Box::new(TsSamplerWr::new(5, 2, SmallRng::seed_from_u64(3))),
        ];
        for s in &mut fleet {
            assert_eq!(s.k(), 2);
            assert!(s.sample().is_none(), "empty before arrivals");
            s.advance_and_insert(1, &[7, 8, 9]);
            s.insert(10);
            s.insert_batch(&[11, 12]);
            assert_eq!(s.sample_k().expect("nonempty").len(), 2);
            assert!(s.memory_words() > 0);
            assert!(s.spec().is_none(), "hand-boxed samplers carry no spec");
        }
        let v: Vec<Box<dyn ErasedWindowSampler<u64>>> = fleet;
        assert!(MemoryWords::memory_words(&v) > 0, "Vec<Box<dyn ...>> sums");
    }

    #[test]
    fn erased_matches_concrete_behaviour_exactly() {
        // The erased path is the same object: equal seeds and streams give
        // byte-identical samples through either interface.
        let mut concrete = SeqSamplerWr::new(16, 3, SmallRng::seed_from_u64(9));
        let mut erased: Box<dyn ErasedWindowSampler<u64>> =
            Box::new(SeqSamplerWr::new(16, 3, SmallRng::seed_from_u64(9)));
        let values: Vec<u64> = (0..200).collect();
        for chunk in values.chunks(7) {
            WindowSampler::insert_batch(&mut concrete, chunk);
            erased.insert_batch(chunk);
        }
        assert_eq!(WindowSampler::sample_k(&mut concrete), erased.sample_k());
        assert_eq!(MemoryWords::memory_words(&concrete), erased.memory_words());
    }
}
