//! Applications of sliding-window sampling — §5 of the paper.
//!
//! Theorem 5.1: *any* sampling-based streaming algorithm transfers to
//! sliding windows by swapping its sampler for the paper's window samplers,
//! preserving memory guarantees for sequence-based windows (and adding a
//! `log n` factor for timestamp-based ones). This crate instantiates the
//! transfer for the paper's three worked examples plus its biased-sampling
//! remark:
//!
//! * [`moments`] — frequency moments `F_k = Σ xᵢᵏ` via the
//!   Alon–Matias–Szegedy estimator (Corollary 5.2).
//! * [`entropy`] — empirical entropy via the Chakrabarti–Cormode–McGregor
//!   suffix-count estimator (Corollary 5.4).
//! * [`triangles`] — triangle counting in graph edge streams à la Buriol
//!   et al. (Corollary 5.3).
//! * [`biased`] — step-biased sampling over multiple nested windows (§5,
//!   last paragraph).
//! * [`exact`] — exact (full-buffer) window statistics used as ground truth
//!   by tests and experiments. *Not* a streaming algorithm: `O(n)` memory.
//!
//! The bridge between the samplers and the estimators is the
//! [`swsample_core::track::SampleTracker`] hook: all three estimators need a
//! statistic of the suffix following the sampled position (occurrence counts
//! for AMS/CCM, watched edge pairs for Buriol), which a reservoir can
//! maintain for free — reset on candidate replacement, folded per arrival.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod biased;
pub mod entropy;
pub mod exact;
pub mod moments;
pub mod triangles;
pub mod ts_estimators;

pub use biased::StepBiasedSampler;
pub use entropy::EntropyEstimator;
pub use exact::ExactWindow;
pub use moments::MomentEstimator;
pub use triangles::TriangleEstimator;
pub use ts_estimators::{TsEntropyEstimator, TsMomentEstimator};
