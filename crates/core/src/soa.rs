//! Struct-of-arrays **fleet** state: one homogeneous template, many keys,
//! no per-key heap boxes.
//!
//! A keyed fleet of `10⁵+` boxed [`ErasedWindowSampler`]s collapses on a
//! cache-miss chain per event: slot → box pointer → sampler header →
//! interior `Vec`s, with each key's ~200-byte box scattered across the
//! heap (one TLB entry per touch, one cache line used per ~3 loaded).
//! When every key shares one [`SamplerSpec`] template, none of that
//! indirection carries information — the algorithm, window size, and `k`
//! are fleet-wide constants, and only the *per-key state* differs. This
//! module stores that state **field-major**:
//!
//! * one dense array of plain-data hot heads ([`SeqWrState`],
//!   [`SeqWorState`]) — the few words the non-accept fast path reads, at
//!   24–40 bytes per key instead of a cache line per box;
//! * `k`-slot sample blocks (`prev`/`cur` candidates, next-acceptance
//!   indices) laid out contiguously per key, inline in the slab — touched
//!   only on the `Θ(log n)`-per-bucket acceptance events and at rotation;
//! * a cold lane of per-key RNGs, read only when a draw actually happens.
//!
//! The batch kernels ([`SeqWrFleet::insert`] and friends) are verbatim
//! transcriptions of the boxed samplers' update rules — same branch
//! structure, same RNG-draw order ([`crate::skip::record_skip`] per
//! acceptor in instance order, Algorithm L's shared skip kernel, the
//! partial Fisher–Yates top-up) — so a fleet slot and a boxed sampler
//! seeded identically produce **bit-identical** samples forever. That
//! equivalence is the refactor's safety net and is pinned by
//! `tests/soa_fleet_equivalence.rs` plus the engine's SoA-vs-erased CI
//! gates.
//!
//! The timestamp families ([`TsWrFleet`], [`TsWorFleet`]) store the
//! concrete samplers inline (no box, no vtable): a ts-bank's boundary
//! skeleton is already one contiguous per-key structure of `O(k log n)`
//! words, so the win at fleet scale is removing the per-key box
//! indirection and the per-element virtual dispatch, not re-laying-out
//! the bank's interior.
//!
//! [`ErasedWindowSampler`]: crate::erased::ErasedWindowSampler
//! [`SamplerSpec`]: crate::spec::SamplerSpec

use crate::memory::MemoryWords;
use crate::reservoir::{advance_skip_state, ReservoirL};
use crate::sample::Sample;
use crate::seq::choose_distinct;
use crate::skip::record_skip;
use crate::state::{ReservoirLState, RngState, SamplerState, SeqWrLaneState, StateError};
use crate::traits::WindowSampler;
use crate::ts::{TsSamplerWor, TsSamplerWr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Hot per-key head of a sequence-WR sampler (Theorem 2.1): exactly the
/// words the skip fast path compares on every arrival. 24 bytes, so a
/// 64-byte cache line holds the heads of ~2.7 keys — under zipf traffic
/// the hot keys' heads stay L1-resident where scattered boxes thrash.
#[derive(Debug, Clone, Copy)]
pub struct SeqWrState {
    /// Total arrivals so far (`N` in the paper).
    pub count: u64,
    /// Cached minimum of the key's next-acceptance indices.
    pub min_next: u64,
    /// The count at which the next bucket rotation happens.
    pub next_rotate: u64,
}

/// Field-major fleet of [`SeqSamplerWr`]-equivalent samplers
/// (`--window seq --mode wr --algo paper`), one slot per key.
///
/// [`SeqSamplerWr`]: crate::seq::SeqSamplerWr
#[derive(Debug, Clone)]
pub struct SeqWrFleet<T> {
    n: u64,
    k: usize,
    /// One hot head per key — the dense fast-path array.
    heads: Vec<SeqWrState>,
    /// Cold lane: per-key RNG, touched only on acceptance events.
    rngs: Vec<SmallRng>,
    /// `k`-slot blocks: absolute next-acceptance index per instance.
    next_accept: Vec<u64>,
    /// `k`-slot blocks: sample of the last complete bucket (`X_U`).
    prev: Vec<Option<Sample<T>>>,
    /// `k`-slot blocks: reservoir candidate of the partial bucket (`X_V`).
    cur: Vec<Option<Sample<T>>>,
}

impl<T: Clone> SeqWrFleet<T> {
    /// Empty fleet with the template's window size `n ≥ 1` and `k ≥ 1`.
    pub fn new(n: u64, k: usize) -> Self {
        assert!(n >= 1, "SeqWrFleet: window size must be at least 1");
        assert!(n <= 1 << 62, "SeqWrFleet: window size too large");
        assert!(k >= 1, "SeqWrFleet: k must be at least 1");
        Self {
            n,
            k,
            heads: Vec::new(),
            rngs: Vec::new(),
            next_accept: Vec::new(),
            prev: Vec::new(),
            cur: Vec::new(),
        }
    }

    /// Number of keys in the fleet.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// `true` when no key has been materialized.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Samples per key.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Append a fresh key slot seeded like `SeqSamplerWr::new(n, k,
    /// SmallRng::seed_from_u64(seed))`: every instance accepts the first
    /// arrival with probability 1.
    pub fn push_key(&mut self, seed: u64) -> usize {
        let slot = self.heads.len();
        self.heads.push(SeqWrState {
            count: 0,
            min_next: 0,
            next_rotate: self.n,
        });
        self.rngs.push(SmallRng::seed_from_u64(seed));
        self.next_accept.extend(std::iter::repeat_n(0, self.k));
        self.prev
            .extend(std::iter::repeat_with(|| None).take(self.k));
        self.cur
            .extend(std::iter::repeat_with(|| None).take(self.k));
        slot
    }

    /// Insert the next arrival for `slot` — the transcription of
    /// `SeqSamplerWr::push` over the field-major arrays. The common
    /// non-accept case reads one head and writes one counter.
    #[inline]
    pub fn insert(&mut self, slot: usize, value: T) {
        let head = &mut self.heads[slot];
        let idx = head.count;
        if idx >= head.min_next {
            let base = slot * self.k;
            head.min_next = accept_at(
                &mut self.rngs[slot],
                self.n,
                idx,
                value,
                &mut self.next_accept[base..base + self.k],
                &mut self.cur[base..base + self.k],
            );
        }
        let head = &mut self.heads[slot];
        head.count += 1;
        if head.count == head.next_rotate {
            // rotate_buckets: V becomes U; re-arm every instance to accept
            // the next bucket's first arrival with probability 1.
            let base = slot * self.k;
            for i in base..base + self.k {
                self.prev[i] = self.cur[i].take();
            }
            for na in &mut self.next_accept[base..base + self.k] {
                *na = head.count;
            }
            head.min_next = head.count;
            head.next_rotate += self.n;
        }
    }

    /// Ingest `m` consecutive arrivals for `slot` in one call —
    /// element-for-element (and RNG-draw-for-draw) equivalent to `m`
    /// [`insert`](SeqWrFleet::insert)s of `value_at(0), …, value_at(m-1)`,
    /// but the stretches the skip counters already prove inactive are
    /// hopped in O(1): total work is O(acceptances + rotations + 1), and
    /// `value_at` runs only at accepted offsets. This is the fleet-level
    /// payoff of Lemma 2.5's skip counters — with the batch grouped
    /// key-major, a key's whole run costs one head load plus its
    /// (logarithmically rare) acceptances.
    pub fn insert_run(&mut self, slot: usize, m: u64, mut value_at: impl FnMut(u64) -> T) {
        if m == 0 {
            return;
        }
        let base = slot * self.k;
        let mut head = self.heads[slot];
        let start = head.count;
        let end = start + m;
        loop {
            // Next index where the per-element loop would do real work: a
            // bucket boundary (rotation fires when count *reaches*
            // next_rotate, so a boundary at exactly `end` still fires) or
            // an acceptance at min_next (in-bucket, so always below the
            // boundary when one is pending).
            if head.next_rotate <= head.min_next.min(end) {
                head.count = head.next_rotate;
                for i in base..base + self.k {
                    self.prev[i] = self.cur[i].take();
                }
                for na in &mut self.next_accept[base..base + self.k] {
                    *na = head.count;
                }
                head.min_next = head.count;
                head.next_rotate += self.n;
                continue;
            }
            if head.min_next >= end {
                break;
            }
            let idx = head.min_next;
            head.min_next = accept_at(
                &mut self.rngs[slot],
                self.n,
                idx,
                value_at(idx - start),
                &mut self.next_accept[base..base + self.k],
                &mut self.cur[base..base + self.k],
            );
        }
        head.count = end;
        self.heads[slot] = head;
    }

    /// The key's current `k`-sample (RNG-free, so shared `&self` access —
    /// concurrent readers never contend).
    pub fn sample_k(&self, slot: usize) -> Option<Vec<Sample<T>>> {
        let head = &self.heads[slot];
        if head.count == 0 {
            return None;
        }
        let oldest_active = head.count.saturating_sub(self.n);
        let within_first_bucket = head.count < self.n;
        let aligned = head.count.is_multiple_of(self.n);
        let base = slot * self.k;
        let picks = (0..self.k)
            .map(|i| {
                let cur = self.cur[base + i].as_ref();
                let prev = self.prev[base + i].as_ref();
                let pick = if within_first_bucket {
                    cur.expect("partial bucket nonempty")
                } else if aligned {
                    prev.expect("complete bucket exists")
                } else {
                    let prev = prev.expect("complete bucket exists");
                    if prev.index() >= oldest_active {
                        prev
                    } else {
                        cur.expect("partial bucket nonempty")
                    }
                };
                pick.clone()
            })
            .collect();
        Some(picks)
    }

    /// One uniform sample: the first instance's (matching
    /// `SeqSamplerWr::sample`, which draws no randomness).
    pub fn sample(&self, slot: usize) -> Option<Sample<T>> {
        self.sample_k(slot).map(|mut v| v.swap_remove(0))
    }

    /// The key's §1.4 footprint in words — identical to the boxed
    /// sampler's accounting (held samples, the `k` skip indices, and the
    /// `(n, count, min_next)` globals; RNG and derived counters excluded).
    pub fn memory_words(&self, slot: usize) -> usize {
        let base = slot * self.k;
        let held: usize = (base..base + self.k)
            .map(|i| {
                self.prev[i].as_ref().map_or(0, |_| Sample::<T>::WORDS)
                    + self.cur[i].as_ref().map_or(0, |_| Sample::<T>::WORDS)
            })
            .sum();
        held + self.k + 3
    }

    /// Checkpoint one slot as the backend-neutral record a boxed
    /// `SeqSamplerWr` saves, so snapshots port across backends. The
    /// fleet does not track the `accepts` diagnostic; it is saved as 0
    /// (it never influences samples or memory accounting).
    pub fn save_slot(&self, slot: usize) -> Option<SamplerState<T>> {
        let head = &self.heads[slot];
        let base = slot * self.k;
        Some(SamplerState::SeqWr {
            count: head.count,
            accepts: 0,
            rng: RngState(self.rngs[slot].state()),
            lanes: (0..self.k)
                .map(|i| SeqWrLaneState {
                    prev: self.prev[base + i].clone(),
                    cur: self.cur[base + i].clone(),
                    next_accept: self.next_accept[base + i],
                })
                .collect(),
        })
    }

    /// Overwrite one slot from a checkpoint (the slot must belong to a
    /// fleet built with the same template `n` and `k`).
    pub fn restore_slot(&mut self, slot: usize, state: SamplerState<T>) -> Result<(), StateError> {
        let (count, rng, lanes) = match state {
            SamplerState::SeqWr {
                count, rng, lanes, ..
            } => (count, rng, lanes),
            other => {
                return Err(StateError::Mismatch {
                    expected: "seq-wr",
                    found: other.family(),
                })
            }
        };
        if lanes.len() != self.k {
            return Err(StateError::Corrupt(format!(
                "seq-wr state has {} lanes for k = {}",
                lanes.len(),
                self.k
            )));
        }
        let base = slot * self.k;
        self.rngs[slot] = SmallRng::from_state(rng.0);
        for (i, lane) in lanes.into_iter().enumerate() {
            self.prev[base + i] = lane.prev;
            self.cur[base + i] = lane.cur;
            self.next_accept[base + i] = lane.next_accept;
        }
        let min_next = self.next_accept[base..base + self.k]
            .iter()
            .copied()
            .min()
            .expect("k >= 1");
        self.heads[slot] = SeqWrState {
            count,
            min_next,
            next_rotate: (count / self.n + 1) * self.n,
        };
        Ok(())
    }
}

/// Skip-path acceptance over one key's `k`-slot block — the verbatim
/// kernel of `SeqSamplerWr::accept_at`: adopt `value` into every instance
/// whose next-acceptance index is `idx` (in instance order, so RNG draws
/// line up with the boxed path), redraw their gaps via
/// [`record_skip`], and return the new cached minimum.
fn accept_at<T: Clone>(
    rng: &mut SmallRng,
    n: u64,
    idx: u64,
    value: T,
    next_accept: &mut [u64],
    cur: &mut [Option<Sample<T>>],
) -> u64 {
    let pos = idx % n;
    let bucket_start = idx - pos;
    let accepting = next_accept.iter().filter(|&&na| na == idx).count();
    debug_assert!(accepting >= 1, "accept_at called with no acceptor");
    let mut value = Some(value);
    let mut remaining = accepting;
    for i in 0..next_accept.len() {
        if next_accept[i] != idx {
            continue;
        }
        remaining -= 1;
        let v = if remaining == 0 {
            value.take().expect("value present for the final acceptor")
        } else {
            value.as_ref().expect("value present").clone()
        };
        cur[i] = Some(Sample::new(v, idx, idx));
        next_accept[i] = match record_skip(rng, pos + 1, n) {
            Some(c) => bucket_start + c - 1,
            None => u64::MAX, // instance is done until the next bucket
        };
    }
    next_accept
        .iter()
        .copied()
        .min()
        .expect("at least one instance")
}

/// Hot per-key head of a sequence-WOR sampler (Theorem 2.2): the stream
/// counter plus the partial bucket's Algorithm L reservoir scalars.
#[derive(Debug, Clone, Copy)]
pub struct SeqWorState {
    /// Total arrivals so far.
    pub count: u64,
    /// Elements offered to the partial bucket's reservoir.
    pub seen: u64,
    /// Next 1-based offer count at which the reservoir replaces.
    pub next_accept: u64,
    /// Algorithm L's running `W` state.
    pub w: f64,
    /// Entries held for the complete bucket (`X_U`), ≤ `k`.
    pub prev_len: u32,
    /// Entries held in the partial bucket's reservoir (`X_V`), ≤ `k`.
    pub cur_len: u32,
}

/// Field-major fleet of [`SeqSamplerWor`]-equivalent samplers
/// (`--window seq --mode wor --algo paper`, Algorithm L bucket
/// reservoirs), one slot per key.
///
/// [`SeqSamplerWor`]: crate::seq::SeqSamplerWor
#[derive(Debug, Clone)]
pub struct SeqWorFleet<T> {
    n: u64,
    k: usize,
    heads: Vec<SeqWorState>,
    rngs: Vec<SmallRng>,
    /// `k`-slot blocks, dense prefix of length `prev_len`.
    prev: Vec<Option<Sample<T>>>,
    /// `k`-slot blocks, dense prefix of length `cur_len` — the reservoir
    /// entries in Algorithm L's slot order.
    cur: Vec<Option<Sample<T>>>,
}

impl<T: Clone> SeqWorFleet<T> {
    /// Empty fleet with the template's window size `n ≥ 1` and `k ≥ 1`.
    pub fn new(n: u64, k: usize) -> Self {
        assert!(n >= 1, "SeqWorFleet: window size must be at least 1");
        assert!(k >= 1, "SeqWorFleet: k must be at least 1");
        Self {
            n,
            k,
            heads: Vec::new(),
            rngs: Vec::new(),
            prev: Vec::new(),
            cur: Vec::new(),
        }
    }

    /// Number of keys in the fleet.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// `true` when no key has been materialized.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Samples per key.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Append a fresh key slot seeded like `SeqSamplerWor::new(n, k,
    /// SmallRng::seed_from_u64(seed))`.
    pub fn push_key(&mut self, seed: u64) -> usize {
        let slot = self.heads.len();
        self.heads.push(SeqWorState {
            count: 0,
            seen: 0,
            next_accept: 0,
            w: 1.0,
            prev_len: 0,
            cur_len: 0,
        });
        self.rngs.push(SmallRng::seed_from_u64(seed));
        self.prev
            .extend(std::iter::repeat_with(|| None).take(self.k));
        self.cur
            .extend(std::iter::repeat_with(|| None).take(self.k));
        slot
    }

    /// Insert the next arrival for `slot` — `SeqSamplerWor::push` with
    /// the partial bucket's [`ReservoirL`] inlined over the `k`-slot
    /// block (same branches, same draws via the shared skip kernel).
    #[inline]
    pub fn insert(&mut self, slot: usize, value: T) {
        let base = slot * self.k;
        let head = &mut self.heads[slot];
        let idx = head.count;
        // ReservoirL::insert(rng, value, idx, idx) over the cur block.
        head.seen += 1;
        if (head.cur_len as usize) < self.k {
            self.cur[base + head.cur_len as usize] = Some(Sample::new(value, idx, idx));
            head.cur_len += 1;
            if head.cur_len as usize == self.k {
                head.next_accept = head.seen;
                advance_skip_state(
                    &mut self.rngs[slot],
                    self.k,
                    &mut head.w,
                    &mut head.next_accept,
                );
            }
        } else if head.seen == head.next_accept {
            let j = self.rngs[slot].gen_range(0..self.k);
            self.cur[base + j] = Some(Sample::new(value, idx, idx));
            advance_skip_state(
                &mut self.rngs[slot],
                self.k,
                &mut head.w,
                &mut head.next_accept,
            );
        }
        head.count += 1;
        if head.count.is_multiple_of(self.n) {
            // prev = cur.take(): the bucket just completed.
            for i in 0..self.k {
                self.prev[base + i] = self.cur[base + i].take();
            }
            head.prev_len = head.cur_len;
            head.cur_len = 0;
            head.seen = 0;
            head.next_accept = 0;
            head.w = 1.0;
        }
    }

    /// Ingest `m` consecutive arrivals for `slot` in one call —
    /// equivalent (branches, RNG draws, samples) to `m`
    /// [`insert`](SeqWorFleet::insert)s, with Algorithm L's geometric
    /// gaps and the dead stretch before each bucket boundary hopped in
    /// O(1). `value_at` runs only at stored offsets (the reservoir
    /// warm-up after each rotation, then one per acceptance).
    pub fn insert_run(&mut self, slot: usize, m: u64, mut value_at: impl FnMut(u64) -> T) {
        if m == 0 {
            return;
        }
        let base = slot * self.k;
        let mut head = self.heads[slot];
        let start = head.count;
        let end = start + m;
        while head.count < end {
            if (head.cur_len as usize) < self.k {
                // Reservoir warm-up: every arrival is stored.
                let idx = head.count;
                head.seen += 1;
                self.cur[base + head.cur_len as usize] =
                    Some(Sample::new(value_at(idx - start), idx, idx));
                head.cur_len += 1;
                if head.cur_len as usize == self.k {
                    head.next_accept = head.seen;
                    advance_skip_state(
                        &mut self.rngs[slot],
                        self.k,
                        &mut head.w,
                        &mut head.next_accept,
                    );
                }
                head.count += 1;
                if head.count.is_multiple_of(self.n) {
                    Self::rotate(&mut head, &mut self.prev, &mut self.cur, base, self.k);
                }
                continue;
            }
            // Steady state: hop straight to whichever comes first — the
            // accepting arrival (`seen` reaching `next_accept`), the
            // bucket boundary, or the end of the run.
            let to_accept = head.next_accept - head.seen;
            let to_boundary = self.n - head.count % self.n;
            let to_end = end - head.count;
            let hop = to_accept.min(to_boundary).min(to_end);
            head.seen += hop;
            head.count += hop;
            if hop == to_accept {
                let idx = head.count - 1;
                let j = self.rngs[slot].gen_range(0..self.k);
                self.cur[base + j] = Some(Sample::new(value_at(idx - start), idx, idx));
                advance_skip_state(
                    &mut self.rngs[slot],
                    self.k,
                    &mut head.w,
                    &mut head.next_accept,
                );
            }
            if hop == to_boundary {
                Self::rotate(&mut head, &mut self.prev, &mut self.cur, base, self.k);
            }
        }
        self.heads[slot] = head;
    }

    /// The bucket-boundary rotation (`prev = cur.take()`, reservoir
    /// re-armed), shared by the per-element and run paths.
    fn rotate(
        head: &mut SeqWorState,
        prev: &mut [Option<Sample<T>>],
        cur: &mut [Option<Sample<T>>],
        base: usize,
        k: usize,
    ) {
        for i in 0..k {
            prev[base + i] = cur[base + i].take();
        }
        head.prev_len = head.cur_len;
        head.cur_len = 0;
        head.seen = 0;
        head.next_accept = 0;
        head.w = 1.0;
    }

    fn block(entries: &[Option<Sample<T>>], len: u32) -> Vec<Sample<T>> {
        entries[..len as usize]
            .iter()
            .map(|s| s.as_ref().expect("dense prefix").clone())
            .collect()
    }

    /// The key's current distinct `k`-sample. Takes `&mut` because the
    /// straddling-window case tops up with a Fisher–Yates draw, exactly
    /// like the boxed sampler.
    pub fn sample_k(&mut self, slot: usize) -> Option<Vec<Sample<T>>> {
        let base = slot * self.k;
        let head = self.heads[slot];
        if head.count == 0 {
            return None;
        }
        if head.count < self.n {
            return Some(Self::block(&self.cur[base..base + self.k], head.cur_len));
        }
        if head.count.is_multiple_of(self.n) {
            return Some(Self::block(&self.prev[base..base + self.k], head.prev_len));
        }
        let oldest_active = head.count - self.n;
        let mut retained: Vec<Sample<T>> = Vec::with_capacity(head.prev_len as usize);
        for s in &self.prev[base..base + head.prev_len as usize] {
            let s = s.as_ref().expect("dense prefix");
            if s.index() >= oldest_active {
                retained.push(s.clone());
            }
        }
        let expired_count = head.prev_len as usize - retained.len();
        if expired_count == 0 {
            return Some(retained);
        }
        let pool = Self::block(&self.cur[base..base + self.k], head.cur_len);
        let top_up = choose_distinct(&mut self.rngs[slot], &pool, expired_count);
        retained.extend(top_up);
        Some(retained)
    }

    /// One uniform sample, drawn from the `k`-set like
    /// `SeqSamplerWor::sample` (query-time draw ordering preserved).
    pub fn sample(&mut self, slot: usize) -> Option<Sample<T>> {
        self.sample_k(slot).map(|mut v| {
            let j = self.rngs[slot].gen_range(0..v.len());
            v.swap_remove(j)
        })
    }

    /// The key's §1.4 footprint in words — `X_U` entries + the Algorithm
    /// L reservoir + the `(n, k, count)` globals, matching the boxed
    /// sampler's accounting exactly.
    pub fn memory_words(&self, slot: usize) -> usize {
        let head = &self.heads[slot];
        head.prev_len as usize * Sample::<T>::WORDS
            + (head.cur_len as usize * Sample::<T>::WORDS + 4)
            + 3
    }

    /// Checkpoint one slot as the backend-neutral record a boxed
    /// `SeqSamplerWor` saves.
    pub fn save_slot(&self, slot: usize) -> Option<SamplerState<T>> {
        let head = &self.heads[slot];
        let base = slot * self.k;
        Some(SamplerState::SeqWor {
            count: head.count,
            rng: RngState(self.rngs[slot].state()),
            prev: Self::block(&self.prev[base..base + self.k], head.prev_len),
            cur: ReservoirLState {
                entries: Self::block(&self.cur[base..base + self.k], head.cur_len),
                seen: head.seen,
                next_accept: head.next_accept,
                w_bits: head.w.to_bits(),
            },
        })
    }

    /// Overwrite one slot from a checkpoint (same template `n`/`k`).
    pub fn restore_slot(&mut self, slot: usize, state: SamplerState<T>) -> Result<(), StateError> {
        let (count, rng, prev, cur) = match state {
            SamplerState::SeqWor {
                count,
                rng,
                prev,
                cur,
            } => (count, rng, prev, cur),
            other => {
                return Err(StateError::Mismatch {
                    expected: "seq-wor",
                    found: other.family(),
                })
            }
        };
        if prev.len() > self.k || cur.entries.len() > self.k {
            return Err(StateError::Corrupt(format!(
                "seq-wor state holds {} prev / {} cur entries for k = {}",
                prev.len(),
                cur.entries.len(),
                self.k
            )));
        }
        let base = slot * self.k;
        self.rngs[slot] = SmallRng::from_state(rng.0);
        let head = &mut self.heads[slot];
        head.count = count;
        head.seen = cur.seen;
        head.next_accept = cur.next_accept;
        head.w = f64::from_bits(cur.w_bits);
        head.prev_len = prev.len() as u32;
        head.cur_len = cur.entries.len() as u32;
        for i in 0..self.k {
            self.prev[base + i] = prev.get(i).cloned();
            self.cur[base + i] = cur.entries.get(i).cloned();
        }
        Ok(())
    }
}

/// Inline fleet of concrete timestamp-WR samplers (Theorem 3.9 fused
/// banks) — no per-key box, no vtable; see the [module docs](self) on why
/// the bank's interior stays as-is.
#[derive(Debug, Clone)]
pub struct TsWrFleet<T> {
    t0: u64,
    k: usize,
    lanes: Vec<TsSamplerWr<T, SmallRng>>,
}

/// Inline fleet of concrete timestamp-WOR samplers (Theorem 4.4 delayed
/// banks).
#[derive(Debug, Clone)]
pub struct TsWorFleet<T> {
    t0: u64,
    k: usize,
    lanes: Vec<TsSamplerWor<T, SmallRng>>,
}

macro_rules! ts_fleet_impl {
    ($fleet:ident, $sampler:ident) => {
        impl<T: Clone> $fleet<T> {
            /// Empty fleet with the template's window width `t0 ≥ 1` and
            /// `k ≥ 1`.
            pub fn new(t0: u64, k: usize) -> Self {
                assert!(
                    t0 >= 1,
                    concat!(stringify!($fleet), ": width must be at least 1")
                );
                assert!(
                    k >= 1,
                    concat!(stringify!($fleet), ": k must be at least 1")
                );
                Self {
                    t0,
                    k,
                    lanes: Vec::new(),
                }
            }

            /// Number of keys in the fleet.
            pub fn len(&self) -> usize {
                self.lanes.len()
            }

            /// `true` when no key has been materialized.
            pub fn is_empty(&self) -> bool {
                self.lanes.is_empty()
            }

            /// Samples per key.
            pub fn k(&self) -> usize {
                self.k
            }

            /// Append a fresh key slot seeded like the boxed construction.
            pub fn push_key(&mut self, seed: u64) -> usize {
                let slot = self.lanes.len();
                self.lanes.push($sampler::new(
                    self.t0,
                    self.k,
                    SmallRng::seed_from_u64(seed),
                ));
                slot
            }

            /// Advance the key's clock to `now` and ingest the run — the
            /// grouped engine-major dispatch shape, statically dispatched.
            #[inline]
            pub fn advance_and_insert(&mut self, slot: usize, now: u64, values: &[T]) {
                WindowSampler::advance_and_insert(&mut self.lanes[slot], now, values);
            }

            /// The key's current `k`-sample (consumes query randomness —
            /// timestamp queries synthesize §3.3's implicit events).
            pub fn sample_k(&mut self, slot: usize) -> Option<Vec<Sample<T>>> {
                WindowSampler::sample_k(&mut self.lanes[slot])
            }

            /// One uniform sample from the key's window.
            pub fn sample(&mut self, slot: usize) -> Option<Sample<T>> {
                WindowSampler::sample(&mut self.lanes[slot])
            }

            /// The key's §1.4 footprint in words.
            pub fn memory_words(&self, slot: usize) -> usize {
                MemoryWords::memory_words(&self.lanes[slot])
            }

            /// Checkpoint one slot (delegates to the inline concrete
            /// sampler, so the record is byte-identical to the boxed
            /// backend's).
            pub fn save_slot(&self, slot: usize) -> Option<SamplerState<T>> {
                WindowSampler::save_state(&self.lanes[slot])
            }

            /// Overwrite one slot from a checkpoint (same template).
            pub fn restore_slot(
                &mut self,
                slot: usize,
                state: SamplerState<T>,
            ) -> Result<(), StateError> {
                WindowSampler::restore_state(&mut self.lanes[slot], state)
            }
        }
    };
}

ts_fleet_impl!(TsWrFleet, TsSamplerWr);
ts_fleet_impl!(TsWorFleet, TsSamplerWor);

/// One whole-stream Algorithm L slot: the state of the spec-built
/// `reservoir-l` sampler (reservoir + RNG + running index), stored inline.
#[derive(Debug, Clone)]
struct StreamLCell<T> {
    inner: ReservoirL<T>,
    rng: SmallRng,
    next_index: u64,
}

/// Inline fleet of whole-stream Algorithm L reservoirs
/// (`--window stream --algo reservoir-l`), bit-identical to the
/// spec-built boxed sampler.
#[derive(Debug, Clone)]
pub struct StreamLFleet<T> {
    k: usize,
    cells: Vec<StreamLCell<T>>,
}

impl<T: Clone> StreamLFleet<T> {
    /// Empty fleet keeping `k ≥ 1` distinct samples per key.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "StreamLFleet: k must be at least 1");
        Self {
            k,
            cells: Vec::new(),
        }
    }

    /// Number of keys in the fleet.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no key has been materialized.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Samples per key.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Append a fresh key slot.
    pub fn push_key(&mut self, seed: u64) -> usize {
        let slot = self.cells.len();
        self.cells.push(StreamLCell {
            inner: ReservoirL::new(self.k),
            rng: SmallRng::seed_from_u64(seed),
            next_index: 0,
        });
        slot
    }

    /// Offer the key's next stream element.
    #[inline]
    pub fn insert(&mut self, slot: usize, value: T) {
        let cell = &mut self.cells[slot];
        let idx = cell.next_index;
        cell.next_index += 1;
        cell.inner.insert(&mut cell.rng, value, idx, idx);
    }

    /// Offer `m` consecutive elements for `slot` in one call, hopping
    /// Algorithm L's geometric gaps (equivalent to `m`
    /// [`insert`](StreamLFleet::insert)s; `value_at` runs only at stored
    /// offsets).
    pub fn insert_run(&mut self, slot: usize, m: u64, value_at: impl FnMut(u64) -> T) {
        let cell = &mut self.cells[slot];
        let start = cell.next_index;
        cell.next_index += m;
        cell.inner.insert_run(&mut cell.rng, start, m, value_at);
    }

    /// The key's current reservoir (RNG-free: shared `&self` access).
    pub fn sample_k(&self, slot: usize) -> Option<Vec<Sample<T>>> {
        let entries = self.cells[slot].inner.entries();
        if entries.is_empty() {
            None
        } else {
            Some(entries.to_vec())
        }
    }

    /// One uniform sample (draws the pick index, like the boxed path).
    pub fn sample(&mut self, slot: usize) -> Option<Sample<T>> {
        let cell = &mut self.cells[slot];
        let entries = cell.inner.entries();
        if entries.is_empty() {
            return None;
        }
        let j = cell.rng.gen_range(0..entries.len());
        Some(entries[j].clone())
    }

    /// The key's §1.4 footprint in words (reservoir + the index counter).
    pub fn memory_words(&self, slot: usize) -> usize {
        self.cells[slot].inner.memory_words() + 1
    }

    /// Checkpoint one slot as the backend-neutral record the spec-built
    /// `reservoir-l` sampler saves.
    pub fn save_slot(&self, slot: usize) -> Option<SamplerState<T>> {
        let cell = &self.cells[slot];
        let (next_accept, w_bits) = cell.inner.skip_state();
        Some(SamplerState::StreamL {
            next_index: cell.next_index,
            rng: RngState(cell.rng.state()),
            res: ReservoirLState {
                entries: cell.inner.entries().to_vec(),
                seen: cell.inner.seen(),
                next_accept,
                w_bits,
            },
        })
    }

    /// Overwrite one slot from a checkpoint (same template `k`).
    pub fn restore_slot(&mut self, slot: usize, state: SamplerState<T>) -> Result<(), StateError> {
        let (next_index, rng, res) = match state {
            SamplerState::StreamL {
                next_index,
                rng,
                res,
            } => (next_index, rng, res),
            other => {
                return Err(StateError::Mismatch {
                    expected: "stream-l",
                    found: other.family(),
                })
            }
        };
        if res.entries.len() > self.k {
            return Err(StateError::Corrupt(format!(
                "stream-l reservoir has {} entries for k = {}",
                res.entries.len(),
                self.k
            )));
        }
        let cell = &mut self.cells[slot];
        cell.rng = SmallRng::from_state(rng.0);
        cell.inner =
            ReservoirL::from_parts(self.k, res.entries, res.seen, res.next_accept, res.w_bits);
        cell.next_index = next_index;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{SeqSamplerWor, SeqSamplerWr};

    /// The flagship guarantee: a fleet slot and a boxed sampler with the
    /// same seed agree sample-for-sample at every step, including the
    /// memory accounting.
    #[test]
    fn seq_wr_fleet_is_bit_identical_to_sampler() {
        let (n, k, seed) = (13u64, 4usize, 99u64);
        let mut fleet: SeqWrFleet<u64> = SeqWrFleet::new(n, k);
        let slot = fleet.push_key(seed);
        let mut solo = SeqSamplerWr::new(n, k, SmallRng::seed_from_u64(seed));
        assert!(fleet.sample_k(slot).is_none());
        for i in 0..500u64 {
            fleet.insert(slot, i);
            solo.insert(i);
            assert_eq!(
                fleet.sample_k(slot),
                WindowSampler::sample_k(&mut solo),
                "step {i}"
            );
            assert_eq!(
                fleet.memory_words(slot),
                MemoryWords::memory_words(&solo),
                "step {i}"
            );
        }
        assert_eq!(fleet.sample(slot), WindowSampler::sample(&mut solo));
    }

    #[test]
    fn seq_wor_fleet_is_bit_identical_to_sampler() {
        let (n, k, seed) = (16u64, 5usize, 7u64);
        let mut fleet: SeqWorFleet<u64> = SeqWorFleet::new(n, k);
        let slot = fleet.push_key(seed);
        let mut solo = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(seed));
        assert!(fleet.sample_k(slot).is_none());
        for i in 0..500u64 {
            fleet.insert(slot, i);
            solo.insert(i);
            // Queries consume randomness in the straddling case; querying
            // both keeps their RNG streams lockstep.
            assert_eq!(
                fleet.sample_k(slot),
                WindowSampler::sample_k(&mut solo),
                "step {i}"
            );
            assert_eq!(
                fleet.memory_words(slot),
                MemoryWords::memory_words(&solo),
                "step {i}"
            );
        }
        assert_eq!(fleet.sample(slot), WindowSampler::sample(&mut solo));
    }

    #[test]
    fn ts_fleets_are_bit_identical_to_samplers() {
        let (t0, k, seed) = (8u64, 3usize, 31u64);
        let mut wr_fleet: TsWrFleet<u64> = TsWrFleet::new(t0, k);
        let mut wor_fleet: TsWorFleet<u64> = TsWorFleet::new(t0, k);
        let wr_slot = wr_fleet.push_key(seed);
        let wor_slot = wor_fleet.push_key(seed);
        let mut wr_solo = TsSamplerWr::new(t0, k, SmallRng::seed_from_u64(seed));
        let mut wor_solo = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(seed));
        for t in 0..120u64 {
            let run: Vec<u64> = (0..1 + t % 3).map(|j| t * 10 + j).collect();
            wr_fleet.advance_and_insert(wr_slot, t, &run);
            wor_fleet.advance_and_insert(wor_slot, t, &run);
            WindowSampler::advance_and_insert(&mut wr_solo, t, &run);
            WindowSampler::advance_and_insert(&mut wor_solo, t, &run);
            assert_eq!(
                wr_fleet.sample_k(wr_slot),
                WindowSampler::sample_k(&mut wr_solo),
                "wr tick {t}"
            );
            assert_eq!(
                wor_fleet.sample_k(wor_slot),
                WindowSampler::sample_k(&mut wor_solo),
                "wor tick {t}"
            );
            assert_eq!(
                wr_fleet.memory_words(wr_slot),
                MemoryWords::memory_words(&wr_solo)
            );
            assert_eq!(
                wor_fleet.memory_words(wor_slot),
                MemoryWords::memory_words(&wor_solo)
            );
        }
    }

    #[test]
    fn stream_l_fleet_matches_spec_built_reservoir() {
        use crate::spec::SamplerSpec;
        let spec: SamplerSpec = "--window stream --mode wor --algo reservoir-l --k 6 --seed 44"
            .parse()
            .expect("spec");
        let mut boxed = spec.build::<u64>().expect("builds");
        let mut fleet: StreamLFleet<u64> = StreamLFleet::new(6);
        let slot = fleet.push_key(44);
        assert!(fleet.sample_k(slot).is_none());
        for i in 0..2_000u64 {
            fleet.insert(slot, i);
            boxed.insert(i);
        }
        assert_eq!(fleet.sample_k(slot), boxed.sample_k());
        assert_eq!(fleet.memory_words(slot), boxed.memory_words());
        assert_eq!(fleet.sample(slot), boxed.sample());
    }

    /// The run kernels must replay the per-element path exactly: same
    /// RNG draws, same stored samples, for every carve-up of the stream
    /// into runs — including runs that span bucket boundaries and runs
    /// shorter than the warm-up.
    #[test]
    fn insert_run_equals_per_element_for_every_carving() {
        let (n, k, seed) = (13u64, 4usize, 5u64);
        // Deterministic ragged run lengths covering 1..=2n+3.
        let carvings: Vec<Vec<u64>> = (0..6u64)
            .map(|c| (0..60).map(|i| 1 + (i * 7 + c * 3) % (2 * n + 3)).collect())
            .collect();
        for carving in &carvings {
            let mut wr_run: SeqWrFleet<u64> = SeqWrFleet::new(n, k);
            let mut wr_ref: SeqWrFleet<u64> = SeqWrFleet::new(n, k);
            let mut wor_run: SeqWorFleet<u64> = SeqWorFleet::new(n, k);
            let mut wor_ref: SeqWorFleet<u64> = SeqWorFleet::new(n, k);
            let mut sl_run: StreamLFleet<u64> = StreamLFleet::new(k);
            let mut sl_ref: StreamLFleet<u64> = StreamLFleet::new(k);
            let slot = wr_run.push_key(seed);
            wr_ref.push_key(seed);
            wor_run.push_key(seed);
            wor_ref.push_key(seed);
            sl_run.push_key(seed);
            sl_ref.push_key(seed);
            let mut next = 0u64;
            for &m in carving {
                let start = next;
                next += m;
                wr_run.insert_run(slot, m, |off| start + off);
                wor_run.insert_run(slot, m, |off| start + off);
                sl_run.insert_run(slot, m, |off| start + off);
                for v in start..next {
                    wr_ref.insert(slot, v);
                    wor_ref.insert(slot, v);
                    sl_ref.insert(slot, v);
                }
                assert_eq!(wr_run.sample_k(slot), wr_ref.sample_k(slot), "wr @{next}");
                assert_eq!(sl_run.sample_k(slot), sl_ref.sample_k(slot), "sl @{next}");
                assert_eq!(
                    wor_run.memory_words(slot),
                    wor_ref.memory_words(slot),
                    "wor words @{next}"
                );
            }
            // WOR queries draw randomness, so compare once at the end
            // (querying mid-stream would desync nothing — both sides
            // would draw — but end-state equality is the point here).
            assert_eq!(wor_run.sample_k(slot), wor_ref.sample_k(slot), "wor end");
        }
    }

    #[test]
    fn fleets_hold_many_independent_keys() {
        // Two keys in one fleet never share state or randomness.
        let mut fleet: SeqWrFleet<u64> = SeqWrFleet::new(5, 2);
        let a = fleet.push_key(1);
        let b = fleet.push_key(2);
        assert_eq!(fleet.len(), 2);
        for i in 0..40u64 {
            fleet.insert(a, i);
        }
        assert!(fleet.sample_k(b).is_none(), "untouched key stays empty");
        for s in fleet.sample_k(a).expect("nonempty") {
            assert!(s.index() >= 35);
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let _ = SeqWrFleet::<u64>::new(5, 0);
    }
}
