//! `swsample` — uniform random sampling from sliding windows, on the
//! command line.
//!
//! ```sh
//! # keep 5 distinct uniform samples of the last 1000 log lines
//! tail -f app.log | swsample seq --window 1000 --k 5 --wor --report-every 100
//!
//! # sample a timestamped stream over the last 60 ticks
//! swsample gen --kind bursty --count 10000 | swsample ts --window 60 --k 3
//!
//! # approximate count/mean/quantiles over a 300-tick window
//! swsample gen --kind zipf --count 100000 --domain 1000 \
//!   | swsample agg --window 300 --k 128 --epsilon 0.05
//!
//! # any sampler spec, one command: chain sampling over the last 5000 lines
//! tail -f app.log | swsample run --window seq --n 5000 --algo chain --k 8
//!
//! # a fleet: one independent 1000-arrival window per key, zipf key skew
//! swsample multi --keys 100000 --count 1000000 --window seq --n 1000 --k 16
//! ```

use std::io::Write;

use swsample_cli::{args, commands};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let args = match args::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("swsample: {e}");
            let _ = commands::write_help(&mut out);
            let _ = out.flush();
            std::process::exit(2);
        }
    };
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    if let Err(e) = commands::run(&args, &mut input, &mut out) {
        let _ = out.flush();
        eprintln!("swsample: {e}");
        std::process::exit(1);
    }
    let _ = out.flush();
}
