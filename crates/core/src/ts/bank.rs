//! The fused `k`-lane timestamp engine: one covering decomposition,
//! `k` independent sample lanes.
//!
//! Theorem 3.9 maintains `k` independent copies of the §3 single-sample
//! engine. The key structural fact — proved by the determinism of the
//! `Incr` walk (Lemma 3.4) and of the Lemma 3.5 expiry transitions — is
//! that the engines' randomness never touches their *bucket boundaries*:
//!
//! * `Incr`'s merge decisions depend only on the covered index range
//!   (`⌊log⌋` comparisons), never on a coin;
//! * expiry transitions (`split_straddle`, head discard, total expiry)
//!   depend only on bucket first-timestamps and the clock;
//! * the coins decide *which element occupies each bucket's `R`/`Q` slot*,
//!   nothing else.
//!
//! So `k` independent engines driven by the same stream hold **byte
//! identical** bucket boundaries at every moment and differ only in their
//! per-bucket sample slots. [`TsEngineBank`] de-duplicates everything
//! deterministic: one boundary list (`a`, `b`, `T(p_a)` stored once), with
//! structure-of-arrays sample slots `r[lane]`, `q[lane]`, `r_stat[lane]`
//! per bucket. Per arrival, boundary maintenance runs **once** instead of
//! `k` times; each (amortized `O(1)`) merge spends `2k` fair coin *bits*
//! served from a [`BitSource`] — one `next_u64` covers 64 lane-coins — so
//! ingestion costs amortized `O(k/32)` RNG words per element instead of
//! the `2k` full words of `k` independent engines.
//!
//! Why per-lane distributions are untouched (the Theorem 3.9 independence
//! argument): fix a lane `i`. Its slot contents evolve by exactly the
//! single-engine rules — on a merge, the lane keeps its left or right
//! sample by an exactly-fair coin, independently for `R` and `Q` — with
//! coins taken from bit positions of the shared words that no other lane
//! reads. Marginally, lane `i` is therefore *the same Markov chain* as a
//! solo [`super::TsEngine`]; jointly, distinct lanes consume disjoint,
//! mutually independent bits (and disjoint query-time draws), so the `k`
//! lane samples are independent — exactly the product distribution of `k`
//! separate engines. The retained [`super::TsSamplerWr::independent`]
//! implementation and `tests/ts_bank_equivalence.rs` hold both to the
//! same lockstep-boundary and chi-square standards.
//!
//! A freshly inserted arrival is stored **once** (all lanes' `r = q =`
//! the element — a new singleton bucket is lane-degenerate); per-lane
//! storage materializes lazily at the bucket's first merge, cloning the
//! element only into the lanes whose coins adopt it.

use super::bucket::BucketStruct;
use super::covering::Covering;
use super::engine::{State, TsEngine};
use crate::memory::MemoryWords;
use crate::rngutil::{bernoulli_ratio, floor_log2, BitSource};
use crate::sample::Sample;
use crate::state::{
    BitsState, StateError, TsBankBucketState, TsBankKind, TsBankState, TsLaneSamplesState,
};
use crate::track::{NullTracker, SampleTracker};
use rand::Rng;

/// Per-bucket sample slots for all `k` lanes.
///
/// Lazy materialization ladder: a singleton stores its element once
/// (`Shared`); a width-2 bucket stores its *two* candidates plus the
/// merge-coin masks themselves as per-lane selectors (`Pair` —
/// `2·⌈k/64⌉` words instead of `2k` sample records); only from width 4 on
/// do lanes hold materialized slots (`PerLane`). Merges pair equal
/// widths, so the reachable shapes are width 1 = `Shared`, width 2 =
/// `Pair`, width ≥ 4 = `PerLane`.
#[derive(Debug, Clone)]
enum LaneSamples<T, S> {
    /// Never merged: every lane's `R` and `Q` is this same element, stored
    /// once (a singleton bucket's two samples are both the element itself).
    Shared { item: Sample<T>, stat: S },
    /// One merge deep: two candidates; bit `lane` of `rsel` / `qsel`
    /// picks `hi` for that lane's `R` / `Q` (the stored masks *are* the
    /// merge coins, verbatim). Used for `2 ≤ k ≤ 64`; beyond one mask
    /// word (or at `k = 1`, where it would cost more words than it
    /// saves) merges materialize directly.
    Pair {
        lo: Sample<T>,
        lo_stat: S,
        hi: Sample<T>,
        hi_stat: S,
        rsel: u64,
        qsel: u64,
    },
    /// Two or more merges deep: per-lane slots.
    PerLane {
        r: Vec<Sample<T>>,
        r_stat: Vec<S>,
        q: Vec<Sample<T>>,
    },
}

/// Recycled per-lane slot buffers. Bucket merges consume the right
/// operand's three lane vectors; instead of freeing them, the bank parks
/// them here (cleared) and the next singleton-pair materialization reuses
/// them — steady-state ingestion runs allocation-free. Allocator-level
/// reuse, like `Vec` spare capacity: not part of the §1.4 word accounting.
/// One recycled buffer triple: `(r, r_stat, q)` lane slots.
type LaneBufs<T, S> = (Vec<Sample<T>>, Vec<S>, Vec<Sample<T>>);

#[derive(Debug, Clone)]
struct SparePool<T, S> {
    bufs: Vec<LaneBufs<T, S>>,
}

impl<T, S> Default for SparePool<T, S> {
    fn default() -> Self {
        Self { bufs: Vec::new() }
    }
}

/// Cascaded merges can park several buffers before the next
/// materialization drains one; a handful is plenty.
const SPARE_POOL_CAP: usize = 8;

impl<T, S> SparePool<T, S> {
    fn take(&mut self, lanes: usize) -> LaneBufs<T, S> {
        self.bufs.pop().unwrap_or_else(|| {
            (
                Vec::with_capacity(lanes),
                Vec::with_capacity(lanes),
                Vec::with_capacity(lanes),
            )
        })
    }

    fn put(&mut self, mut bufs: LaneBufs<T, S>) {
        if self.bufs.len() < SPARE_POOL_CAP {
            bufs.0.clear();
            bufs.1.clear();
            bufs.2.clear();
            self.bufs.push(bufs);
        }
    }
}

impl<T: Clone, S: Clone> LaneSamples<T, S> {
    /// Materialize any shape into dense per-lane slot vectors (pushed into
    /// `r`/`r_stat`/`q`, which must be empty).
    fn materialize_into(
        self,
        lanes: usize,
        r: &mut Vec<Sample<T>>,
        r_stat: &mut Vec<S>,
        q: &mut Vec<Sample<T>>,
    ) {
        match self {
            LaneSamples::Shared { item, stat } => {
                for _ in 0..lanes {
                    r.push(item.clone());
                    r_stat.push(stat.clone());
                    q.push(item.clone());
                }
            }
            LaneSamples::Pair {
                lo,
                lo_stat,
                hi,
                hi_stat,
                rsel,
                qsel,
            } => {
                for lane in 0..lanes {
                    if (rsel >> lane) & 1 == 1 {
                        r.push(hi.clone());
                        r_stat.push(hi_stat.clone());
                    } else {
                        r.push(lo.clone());
                        r_stat.push(lo_stat.clone());
                    }
                    q.push(if (qsel >> lane) & 1 == 1 {
                        hi.clone()
                    } else {
                        lo.clone()
                    });
                }
            }
            LaneSamples::PerLane {
                r: pr,
                r_stat: prs,
                q: pq,
            } => {
                r.extend(pr);
                r_stat.extend(prs);
                q.extend(pq);
            }
        }
    }

    /// The `Incr` union step for all lanes at once: per lane, `R` (and,
    /// independently, `Q`) is taken from the right operand on a fair coin
    /// bit. Coins are drawn as 64-lane masks — the hot shapes consume them
    /// either verbatim (a `Pair`'s selectors *are* the coins) or by
    /// branchless selects / set-bit iteration, so the loop carries no
    /// 50/50-mispredicting branches. Clones happen only where a lane
    /// adopts an element it does not own; lane-owned slots move (swap).
    ///
    /// In a canonical covering merges pair equal widths, so the live
    /// shapes are `Shared`+`Shared` (width 1+1 → `Pair`), `Pair`+`Pair`
    /// (2+2 → materialized `PerLane`), and `PerLane`+`PerLane` (≥ 4).
    /// Anything else falls back to materialize-then-merge.
    fn merge<R: Rng>(
        self,
        right: Self,
        lanes: usize,
        rng: &mut R,
        bits: &mut BitSource,
        pool: &mut SparePool<T, S>,
    ) -> Self {
        use LaneSamples::*;
        match (self, right) {
            // Width-1 + width-1: store both candidates and keep the coin
            // masks as the per-lane selectors — two words, no clones, no
            // allocation. (At k = 1 a Pair costs more words than
            // materialized slots and buys nothing; past 64 lanes it would
            // need spill storage; both fall through to materialization.)
            (Shared { item: li, stat: ls }, Shared { item: ri, stat: rs })
                if (2..=64).contains(&lanes) =>
            {
                let rsel = bits.mask(rng, lanes as u32);
                let qsel = bits.mask(rng, lanes as u32);
                Pair {
                    lo: li,
                    lo_stat: ls,
                    hi: ri,
                    hi_stat: rs,
                    rsel,
                    qsel,
                }
            }
            // k = 1 singletons: one coin each, materialized directly.
            (Shared { item: li, stat: ls }, Shared { item: ri, stat: rs }) if lanes == 1 => {
                let (mut r, mut r_stat, mut q) = pool.take(1);
                if bits.bit(rng) {
                    r.push(ri.clone());
                    r_stat.push(rs);
                } else {
                    r.push(li.clone());
                    r_stat.push(ls);
                }
                q.push(if bits.bit(rng) { ri } else { li });
                PerLane { r, r_stat, q }
            }
            // Width-2 + width-2: lanes materialize. Per slot the final
            // candidate index is computed branchlessly — the coin mask
            // picks which pair, a word-level combine picks that pair's
            // stored selector bit — then a 4-way indexed clone.
            (
                Pair {
                    lo: llo,
                    lo_stat: llos,
                    hi: lhi,
                    hi_stat: lhis,
                    rsel: lrsel,
                    qsel: lqsel,
                },
                Pair {
                    lo: rlo,
                    lo_stat: rlos,
                    hi: rhi,
                    hi_stat: rhis,
                    rsel: rrsel,
                    qsel: rqsel,
                },
            ) => {
                let (mut r, mut r_stat, mut q) = pool.take(lanes);
                debug_assert!(lanes <= 64, "Pair only exists for <= 64 lanes");
                let rmask = bits.mask(rng, lanes as u32);
                let qmask = bits.mask(rng, lanes as u32);
                // Bit-parallel: the selector of the chosen pair, per lane.
                let rsel = (rrsel & rmask) | (lrsel & !rmask);
                let qsel = (rqsel & qmask) | (lqsel & !qmask);
                let cand = [&llo, &lhi, &rlo, &rhi];
                let cand_stat = [&llos, &lhis, &rlos, &rhis];
                for j in 0..lanes {
                    let ridx = ((((rmask >> j) & 1) << 1) | ((rsel >> j) & 1)) as usize;
                    r.push(cand[ridx].clone());
                    r_stat.push(cand_stat[ridx].clone());
                    let qidx = ((((qmask >> j) & 1) << 1) | ((qsel >> j) & 1)) as usize;
                    q.push(cand[qidx].clone());
                }
                PerLane { r, r_stat, q }
            }
            // Width ≥ 4: only adopting lanes do any work — iterate the set
            // bits of the coin masks, swapping in the right operand's
            // slots; its buffers go back to the pool.
            (
                PerLane {
                    mut r,
                    mut r_stat,
                    mut q,
                },
                PerLane {
                    r: mut rr,
                    r_stat: mut rrs,
                    q: mut rq,
                },
            ) => {
                let mut lane0 = 0usize;
                while lane0 < lanes {
                    let n = (lanes - lane0).min(64);
                    let mut rmask = bits.mask(rng, n as u32);
                    let mut qmask = bits.mask(rng, n as u32);
                    while rmask != 0 {
                        let lane = lane0 + rmask.trailing_zeros() as usize;
                        rmask &= rmask - 1;
                        std::mem::swap(&mut r[lane], &mut rr[lane]);
                        std::mem::swap(&mut r_stat[lane], &mut rrs[lane]);
                    }
                    while qmask != 0 {
                        let lane = lane0 + qmask.trailing_zeros() as usize;
                        qmask &= qmask - 1;
                        std::mem::swap(&mut q[lane], &mut rq[lane]);
                    }
                    lane0 += n;
                }
                pool.put((rr, rrs, rq));
                PerLane { r, r_stat, q }
            }
            // Mixed shapes (unreachable under the covering invariants,
            // plus the k = 1 singleton pair): materialize both sides,
            // then mask-merge.
            (left, right) => {
                let (mut r, mut r_stat, mut q) = pool.take(lanes);
                left.materialize_into(lanes, &mut r, &mut r_stat, &mut q);
                let (mut rr, mut rrs, mut rq) = pool.take(lanes);
                right.materialize_into(lanes, &mut rr, &mut rrs, &mut rq);
                PerLane { r, r_stat, q }.merge(
                    PerLane {
                        r: rr,
                        r_stat: rrs,
                        q: rq,
                    },
                    lanes,
                    rng,
                    bits,
                    pool,
                )
            }
        }
    }
}

/// A bucket structure with shared boundaries and `k`-lane sample slots.
#[derive(Debug, Clone)]
struct BankBucket<T, S> {
    /// First covered index (`x`).
    a: u64,
    /// One past the last covered index (`y`).
    b: u64,
    /// Timestamp of the first covered element `T(p_a)` — shared, stored
    /// once for all lanes.
    ts_first: u64,
    samples: LaneSamples<T, S>,
}

impl<T: Clone, S: Clone> BankBucket<T, S> {
    fn singleton(item: Sample<T>, stat: S) -> Self {
        let idx = item.index();
        let ts = item.timestamp();
        Self {
            a: idx,
            b: idx + 1,
            ts_first: ts,
            samples: LaneSamples::Shared { item, stat },
        }
    }

    fn width(&self) -> u64 {
        self.b - self.a
    }

    fn r(&self, lane: usize) -> &Sample<T> {
        match &self.samples {
            LaneSamples::Shared { item, .. } => item,
            LaneSamples::Pair { lo, hi, rsel, .. } => {
                if (rsel >> lane) & 1 == 1 {
                    hi
                } else {
                    lo
                }
            }
            LaneSamples::PerLane { r, .. } => &r[lane],
        }
    }

    fn r_stat(&self, lane: usize) -> &S {
        match &self.samples {
            LaneSamples::Shared { stat, .. } => stat,
            LaneSamples::Pair {
                lo_stat,
                hi_stat,
                rsel,
                ..
            } => {
                if (rsel >> lane) & 1 == 1 {
                    hi_stat
                } else {
                    lo_stat
                }
            }
            LaneSamples::PerLane { r_stat, .. } => &r_stat[lane],
        }
    }

    fn q(&self, lane: usize) -> &Sample<T> {
        match &self.samples {
            LaneSamples::Shared { item, .. } => item,
            LaneSamples::Pair { lo, hi, qsel, .. } => {
                if (qsel >> lane) & 1 == 1 {
                    hi
                } else {
                    lo
                }
            }
            LaneSamples::PerLane { q, .. } => &q[lane],
        }
    }

    fn merge_right<R: Rng>(
        &mut self,
        right: BankBucket<T, S>,
        lanes: usize,
        rng: &mut R,
        bits: &mut BitSource,
        pool: &mut SparePool<T, S>,
    ) {
        debug_assert_eq!(self.b, right.a, "merge of non-adjacent buckets");
        debug_assert_eq!(
            self.width(),
            right.width(),
            "merge of unequal-width buckets"
        );
        let left = std::mem::replace(
            &mut self.samples,
            LaneSamples::PerLane {
                r: Vec::new(),
                r_stat: Vec::new(),
                q: Vec::new(),
            },
        );
        self.samples = left.merge(right.samples, lanes, rng, bits, pool);
        self.b = right.b;
    }

    /// Park this bucket's lane buffers (if differentiated) for reuse.
    fn recycle(self, pool: &mut SparePool<T, S>) {
        if let LaneSamples::PerLane { r, r_stat, q } = self.samples {
            pool.put((r, r_stat, q));
        }
    }

    /// One lane's view as a plain `BucketStruct` (cloned).
    fn lane_bucket(&self, lane: usize) -> BucketStruct<T, S> {
        BucketStruct {
            a: self.a,
            b: self.b,
            ts_first: self.ts_first,
            r: self.r(lane).clone(),
            r_stat: self.r_stat(lane).clone(),
            q: self.q(lane).clone(),
        }
    }

    fn observe_stats(&mut self, mut observe: impl FnMut(&mut S)) {
        match &mut self.samples {
            LaneSamples::Shared { stat, .. } => observe(stat),
            LaneSamples::Pair {
                lo_stat, hi_stat, ..
            } => {
                observe(lo_stat);
                observe(hi_stat);
            }
            LaneSamples::PerLane { r_stat, .. } => {
                for st in r_stat {
                    observe(st);
                }
            }
        }
    }
}

impl<T, S> MemoryWords for BankBucket<T, S> {
    fn memory_words(&self) -> usize {
        // Boundaries (a, b, ts_first) stored once; samples as held: a
        // never-merged bucket stores its element once for all lanes, a
        // differentiated one stores k R-samples and k Q-samples.
        3 + match &self.samples {
            LaneSamples::Shared { .. } => Sample::<T>::WORDS,
            LaneSamples::Pair { .. } => 2 * Sample::<T>::WORDS + 2,
            LaneSamples::PerLane { r, q, .. } => (r.len() + q.len()) * Sample::<T>::WORDS,
        }
    }
}

/// The covering decomposition over shared boundaries — `Covering`'s exact
/// `Incr`/split logic, lifted to `k`-lane buckets.
#[derive(Debug, Clone)]
struct BankCovering<T, S> {
    buckets: Vec<BankBucket<T, S>>,
}

impl<T: Clone, S: Clone> BankCovering<T, S> {
    fn new(bucket: BankBucket<T, S>) -> Self {
        Self {
            buckets: vec![bucket],
        }
    }

    fn start(&self) -> u64 {
        self.buckets[0].a
    }

    fn end(&self) -> u64 {
        self.buckets.last().expect("covering is never empty").b
    }

    fn covered_len(&self) -> u64 {
        self.end() - self.start()
    }

    fn newest_ts(&self) -> u64 {
        let last = self.buckets.last().expect("covering is never empty");
        debug_assert_eq!(last.width(), 1, "canonical covering ends in width 1");
        last.ts_first
    }

    fn oldest_ts(&self) -> u64 {
        self.buckets[0].ts_first
    }

    /// `Incr` (Lemma 3.4) — the same front-to-back walk as
    /// `Covering::incr`, with each merge resolving all `k` lanes at once.
    #[allow(clippy::too_many_arguments)]
    fn incr<R: Rng>(
        &mut self,
        item: Sample<T>,
        stat: S,
        lanes: usize,
        rng: &mut R,
        bits: &mut BitSource,
        pool: &mut SparePool<T, S>,
    ) {
        debug_assert_eq!(item.index(), self.end(), "Incr: non-consecutive index");
        debug_assert!(
            item.timestamp() >= self.newest_ts(),
            "Incr: timestamps must be non-decreasing"
        );
        // Closed-form Lemma 3.4 walk. Bucket start offsets are canonical
        // in the covered length `l`, so the walk's suffix-length chain
        // (`l → l − head_width`) is pure arithmetic, and a merge fires
        // exactly at chain values of the form 2^j − 1 (where the `⌊log⌋`
        // jumps). Three facts collapse the walk to O(1) + O(#merges):
        //
        // 1. The chain from even `l` stays even until 2 → 1, and every
        //    trigger 2^j − 1 (j ≥ 2) is odd — so even lengths never
        //    merge: the insert is a single push.
        // 2. Merges cascade: a merge at chain value m = 2^j − 1 is
        //    followed by chain value (m−1)/2 = 2^{j−1} − 1, another
        //    trigger — so the merges are a contiguous suffix of the walk,
        //    starting at the *largest* trigger the chain reaches: `l`
        //    itself when all-ones, else 2^{t+1} − 1 for `t` trailing
        //    ones of `l` (odd `l` always reaches 3 = 2^2 − 1 at worst).
        // 3. A canonical covering of length m has exactly
        //    popcount(m) + ⌊log₂ m⌋ buckets, which converts the cascade's
        //    suffix length into its bucket index.
        //
        // The retained reference walk (`Covering::incr`) and the lockstep
        // boundary tests pin the equivalence.
        let l = self.covered_len();
        if l & 1 == 1 && l > 1 {
            let first = if (l + 1).is_power_of_two() {
                l
            } else {
                (1u64 << (l.trailing_ones() + 1)) - 1
            };
            let bucket_count = |m: u64| m.count_ones() + floor_log2(m);
            let mut i = (bucket_count(l) - bucket_count(first)) as usize;
            let mut m = first;
            while m > 1 {
                let right = self.buckets.remove(i + 1);
                self.buckets[i].merge_right(right, lanes, rng, bits, pool);
                m = (m - 1) / 2;
                i += 1;
            }
        }
        self.buckets.push(BankBucket::singleton(item, stat));
        debug_assert!(self.is_canonical(), "Incr broke canonical form");
    }

    /// The Lemma 3.5 case-2 split — identical to `Covering::split_straddle`.
    fn split_straddle(&mut self, active: impl Fn(u64) -> bool) -> BankBucket<T, S> {
        debug_assert!(
            !active(self.buckets[0].ts_first),
            "split: first bucket still active"
        );
        debug_assert!(active(self.newest_ts()), "split: newest element expired");
        let j = self
            .buckets
            .iter()
            .position(|b| active(b.ts_first))
            .expect("newest element is active, so an active bucket exists");
        debug_assert!(j >= 1);
        let mut tail = self.buckets.split_off(j);
        std::mem::swap(&mut self.buckets, &mut tail);
        tail.pop().expect("prefix is non-empty")
    }

    /// Uniform sample of the covered range for one lane: bucket chosen
    /// proportional to width, that bucket's lane-`R` output.
    fn sample_uniform_lane<R: Rng>(&self, lane: usize, rng: &mut R) -> (Sample<T>, S) {
        let total = self.covered_len();
        let mut x = rng.gen_range(0..total);
        for b in &self.buckets {
            if x < b.width() {
                return (b.r(lane).clone(), b.r_stat(lane).clone());
            }
            x -= b.width();
        }
        unreachable!("widths sum to covered_len")
    }

    fn observe_stats(&mut self, mut observe: impl FnMut(&mut S)) {
        for b in &mut self.buckets {
            b.observe_stats(&mut observe);
        }
    }

    fn is_canonical(&self) -> bool {
        let end = self.end();
        let mut expect_a = self.start();
        for (i, b) in self.buckets.iter().enumerate() {
            if b.a != expect_a || b.b <= b.a {
                return false;
            }
            let suffix_len = end - b.a;
            let want = if i == self.buckets.len() - 1 {
                1
            } else {
                1u64 << (floor_log2(suffix_len) - 1)
            };
            if b.width() != want {
                return false;
            }
            expect_a = b.b;
        }
        expect_a == end
    }
}

impl<T, S> MemoryWords for BankCovering<T, S> {
    fn memory_words(&self) -> usize {
        self.buckets.iter().map(MemoryWords::memory_words).sum()
    }
}

/// Lemma 3.5 state over the shared boundaries.
#[derive(Debug, Clone)]
enum BankState<T, S> {
    Empty,
    Full(BankCovering<T, S>),
    Straddle {
        head: BankBucket<T, S>,
        tail: BankCovering<T, S>,
    },
}

/// `k` fused single-sample engines over one timestamp window: one shared
/// covering decomposition, `k` independent sample lanes.
///
/// Equivalent in distribution to `k` independent [`TsEngine`]s driven by
/// the same stream (see the [module docs](self) for the argument), at
/// `1/k` of the boundary-maintenance work and amortized `O(k/32)` RNG
/// words per arrival. [`super::TsSamplerWr`] and [`super::TsSamplerWor`]
/// are built on it; the per-engine construction is retained as their
/// `independent` constructors.
#[derive(Debug, Clone)]
pub struct TsEngineBank<T, K: SampleTracker<T> = NullTracker> {
    t0: u64,
    now: u64,
    lanes: usize,
    tracker: K,
    bits: BitSource,
    spare: SparePool<T, K::Stat>,
    state: BankState<T, K::Stat>,
}

impl<T: Clone> TsEngineBank<T, NullTracker> {
    /// Bank of `lanes ≥ 1` fused engines over windows of width `t0 ≥ 1`,
    /// clock starting at 0, no tracking.
    pub fn new(t0: u64, lanes: usize) -> Self {
        Self::with_tracker(t0, lanes, NullTracker)
    }
}

impl<T: Clone, K: SampleTracker<T>> TsEngineBank<T, K> {
    /// Like [`TsEngineBank::new`] with a per-sample suffix tracker
    /// (Theorem 5.1 support). One tracker serves all lanes; a fresh
    /// arrival's statistic is computed once and shared until lanes
    /// differentiate at the bucket's first merge.
    pub fn with_tracker(t0: u64, lanes: usize, tracker: K) -> Self {
        assert!(t0 >= 1, "TsEngineBank: window width must be at least 1");
        assert!(lanes >= 1, "TsEngineBank: need at least one lane");
        Self {
            t0,
            now: 0,
            lanes,
            tracker,
            bits: BitSource::new(),
            spare: SparePool::default(),
            state: BankState::Empty,
        }
    }

    /// Window width `t0`.
    pub fn window(&self) -> u64 {
        self.t0
    }

    /// Current clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of fused lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// `true` when a query returns `None` (nothing stored is active).
    pub fn is_empty(&self) -> bool {
        matches!(self.state, BankState::Empty)
    }

    fn is_active(&self, ts: u64) -> bool {
        debug_assert!(ts <= self.now);
        self.now - ts < self.t0
    }

    /// Advance the clock and run the Lemma 3.5 expiry transitions — once,
    /// for all lanes.
    ///
    /// # Panics
    /// Panics if `now` moves backwards.
    pub fn advance_time(&mut self, now: u64) {
        assert!(
            now >= self.now,
            "TsEngineBank: clock moved backwards ({} -> {now})",
            self.now
        );
        self.now = now;
        let t0 = self.t0;
        let active = |ts: u64| now - ts < t0;
        let state = std::mem::replace(&mut self.state, BankState::Empty);
        self.state = match state {
            BankState::Empty => BankState::Empty,
            BankState::Full(mut cov) => {
                if !active(cov.newest_ts()) {
                    BankState::Empty
                } else if !active(cov.oldest_ts()) {
                    let head = cov.split_straddle(active);
                    BankState::Straddle { head, tail: cov }
                } else {
                    BankState::Full(cov)
                }
            }
            BankState::Straddle { head, mut tail } => {
                if !active(tail.newest_ts()) {
                    head.recycle(&mut self.spare);
                    BankState::Empty
                } else if !active(tail.oldest_ts()) {
                    head.recycle(&mut self.spare);
                    let head = tail.split_straddle(active);
                    BankState::Straddle { head, tail }
                } else {
                    BankState::Straddle { head, tail }
                }
            }
        };
        self.debug_check_invariants();
    }

    /// Insert an element arriving at timestamp `ts` with stream index
    /// `index` — one boundary walk for all `k` lanes.
    ///
    /// Same contract as [`TsEngine::insert`]: indices consecutive while
    /// non-empty, already-expired arrivals only ever offered when the bank
    /// has emptied (the §4 delayed-ingestion path, Lemma 4.1).
    pub fn insert<R: Rng>(&mut self, rng: &mut R, value: T, index: u64, ts: u64) {
        assert!(
            ts <= self.now,
            "TsEngineBank: element from the future (ts {ts} > now {})",
            self.now
        );
        if !self.is_active(ts) {
            debug_assert!(matches!(self.state, BankState::Empty));
            return;
        }
        if K::TRACKS {
            let tracker = &mut self.tracker;
            match &mut self.state {
                BankState::Empty => {}
                BankState::Full(cov) => cov.observe_stats(|stat| tracker.observe(stat, &value)),
                BankState::Straddle { head, tail } => {
                    head.observe_stats(|stat| tracker.observe(stat, &value));
                    tail.observe_stats(|stat| tracker.observe(stat, &value));
                }
            }
        }
        let stat = self.tracker.fresh(&value, index);
        let item = Sample::new(value, index, ts);
        let lanes = self.lanes;
        let bits = &mut self.bits;
        let pool = &mut self.spare;
        match &mut self.state {
            BankState::Empty => {
                self.state = BankState::Full(BankCovering::new(BankBucket::singleton(item, stat)))
            }
            BankState::Full(cov) => cov.incr(item, stat, lanes, rng, bits, pool),
            BankState::Straddle { tail, .. } => tail.incr(item, stat, lanes, rng, bits, pool),
        }
        self.debug_check_invariants();
    }

    /// Lane `lane`'s uniform sample of the active elements (Lemma 3.8 /
    /// Theorem 3.9); `None` when the window is empty. Query-time draws
    /// (bucket choice, implicit events) are per-lane, exactly as for a
    /// solo engine.
    pub fn sample_lane<R: Rng>(&self, lane: usize, rng: &mut R) -> Option<Sample<T>> {
        self.sample_lane_with_stat(lane, rng).map(|(s, _)| s)
    }

    /// Like [`TsEngineBank::sample_lane`], returning the tracker statistic
    /// carried by the sampled element.
    pub fn sample_lane_with_stat<R: Rng>(
        &self,
        lane: usize,
        rng: &mut R,
    ) -> Option<(Sample<T>, K::Stat)> {
        assert!(lane < self.lanes, "lane {lane} out of range");
        match &self.state {
            BankState::Empty => None,
            BankState::Full(cov) => Some(cov.sample_uniform_lane(lane, rng)),
            BankState::Straddle { head, tail } => {
                Some(self.sample_straddle_lane(head, tail, lane, rng))
            }
        }
    }

    /// The case-2 sampling rule (Lemmas 3.6–3.8) for one lane — a verbatim
    /// lift of `TsEngine::sample_straddle` onto lane-indexed slots.
    fn sample_straddle_lane<R: Rng>(
        &self,
        head: &BankBucket<T, K::Stat>,
        tail: &BankCovering<T, K::Stat>,
        lane: usize,
        rng: &mut R,
    ) -> (Sample<T>, K::Stat) {
        let alpha = head.width();
        let beta = tail.covered_len();
        debug_assert!(
            alpha <= beta,
            "case-2 invariant α ≤ β violated ({alpha} > {beta})"
        );
        let r2 = tail.sample_uniform_lane(lane, rng);

        let q1 = head.q(lane);
        let i = head.b - q1.index();
        debug_assert!(i >= 1 && i <= alpha);
        let y_expired = if i < alpha {
            let num = alpha as u128 * beta as u128;
            let den = (beta + i) as u128 * (beta + i - 1) as u128;
            if bernoulli_ratio(rng, num, den) {
                !self.is_active(q1.timestamp())
            } else {
                !self.is_active(head.ts_first)
            }
        } else {
            !self.is_active(head.ts_first)
        };

        let x = y_expired && bernoulli_ratio(rng, alpha as u128, beta as u128);

        if x && self.is_active(head.r(lane).timestamp()) {
            (head.r(lane).clone(), head.r_stat(lane).clone())
        } else {
            r2
        }
    }

    /// The shared bucket-boundary profile — `(a, b, T(p_a))` per bucket,
    /// oldest first, straddling head included. By construction identical
    /// for every lane; lockstep-equal to [`TsEngine::boundaries`] of an
    /// independent engine fed the same stream (asserted in
    /// `tests/ts_bank_equivalence.rs`).
    pub fn boundaries(&self) -> Vec<(u64, u64, u64)> {
        match &self.state {
            BankState::Empty => Vec::new(),
            BankState::Full(cov) => cov.buckets.iter().map(|b| (b.a, b.b, b.ts_first)).collect(),
            BankState::Straddle { head, tail } => std::iter::once((head.a, head.b, head.ts_first))
                .chain(tail.buckets.iter().map(|b| (b.a, b.b, b.ts_first)))
                .collect(),
        }
    }

    /// `true` in the Lemma 3.5 case-2 (straddling-bucket) state.
    pub fn is_straddling(&self) -> bool {
        matches!(self.state, BankState::Straddle { .. })
    }

    /// Extract one lane as a standalone [`TsEngine`] (cloned boundaries +
    /// that lane's slots). Used by the §4 without-replacement sampler to
    /// extend a lane with its delay-deficit arrivals at query time.
    pub(crate) fn lane_engine(&self, lane: usize) -> TsEngine<T, K>
    where
        K: Clone,
    {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let state = match &self.state {
            BankState::Empty => State::Empty,
            BankState::Full(cov) => State::Full(Covering::from_buckets(
                cov.buckets.iter().map(|b| b.lane_bucket(lane)).collect(),
            )),
            BankState::Straddle { head, tail } => State::Straddle {
                head: head.lane_bucket(lane),
                tail: Covering::from_buckets(
                    tail.buckets.iter().map(|b| b.lane_bucket(lane)).collect(),
                ),
            },
        };
        TsEngine::from_parts(self.t0, self.now, self.tracker.clone(), state)
    }

    /// Checkpoint the bank's stream-dependent state (bucket skeleton,
    /// lane samples in whichever lazy shape they hold, coin buffer) as
    /// plain data. `None` when the tracker observes arrivals — its suffix
    /// statistics cannot be reconstructed from retained samples.
    ///
    /// The internal `SparePool` is allocator-level recycling, not sampler state;
    /// it is neither saved nor restored, which is behavior-neutral.
    pub fn save_state(&self) -> Option<TsBankState<T>> {
        if K::TRACKS {
            return None;
        }
        fn conv_bucket<T: Clone, S>(b: &BankBucket<T, S>) -> TsBankBucketState<T> {
            let samples = match &b.samples {
                LaneSamples::Shared { item, .. } => TsLaneSamplesState::Shared(item.clone()),
                LaneSamples::Pair {
                    lo, hi, rsel, qsel, ..
                } => TsLaneSamplesState::Pair {
                    lo: lo.clone(),
                    hi: hi.clone(),
                    rsel: *rsel,
                    qsel: *qsel,
                },
                LaneSamples::PerLane { r, q, .. } => TsLaneSamplesState::PerLane {
                    r: r.clone(),
                    q: q.clone(),
                },
            };
            TsBankBucketState {
                a: b.a,
                b: b.b,
                ts_first: b.ts_first,
                samples,
            }
        }
        let kind = match &self.state {
            BankState::Empty => TsBankKind::Empty,
            BankState::Full(cov) => TsBankKind::Full(cov.buckets.iter().map(conv_bucket).collect()),
            BankState::Straddle { head, tail } => TsBankKind::Straddle {
                head: conv_bucket(head),
                tail: tail.buckets.iter().map(conv_bucket).collect(),
            },
        };
        let (buf, left) = self.bits.state();
        Some(TsBankState {
            now: self.now,
            bits: BitsState { buf, left },
            kind,
        })
    }

    /// Rebuild one bucket from its checkpoint, reconstructing tracker
    /// statistics via `fresh` (exact for non-tracking trackers).
    fn load_bucket(
        &mut self,
        b: TsBankBucketState<T>,
    ) -> Result<BankBucket<T, K::Stat>, StateError> {
        let samples = match b.samples {
            TsLaneSamplesState::Shared(item) => {
                let stat = self.tracker.fresh(item.value(), item.index());
                LaneSamples::Shared { item, stat }
            }
            TsLaneSamplesState::Pair { lo, hi, rsel, qsel } => {
                let lo_stat = self.tracker.fresh(lo.value(), lo.index());
                let hi_stat = self.tracker.fresh(hi.value(), hi.index());
                LaneSamples::Pair {
                    lo,
                    lo_stat,
                    hi,
                    hi_stat,
                    rsel,
                    qsel,
                }
            }
            TsLaneSamplesState::PerLane { r, q } => {
                if r.len() != self.lanes || q.len() != self.lanes {
                    return Err(StateError::Corrupt(format!(
                        "bank bucket holds {}/{} lane slots for {} lanes",
                        r.len(),
                        q.len(),
                        self.lanes
                    )));
                }
                let r_stat = r
                    .iter()
                    .map(|s| self.tracker.fresh(s.value(), s.index()))
                    .collect();
                LaneSamples::PerLane { r, r_stat, q }
            }
        };
        Ok(BankBucket {
            a: b.a,
            b: b.b,
            ts_first: b.ts_first,
            samples,
        })
    }

    /// Overwrite the bank's stream-dependent state from a
    /// [`TsBankState`] checkpoint taken on a bank with the same window
    /// width and lane count. Continues the run bit-identically.
    pub fn restore_state(&mut self, state: TsBankState<T>) -> Result<(), StateError> {
        if K::TRACKS {
            return Err(StateError::Unsupported);
        }
        let bank_state = match state.kind {
            TsBankKind::Empty => BankState::Empty,
            TsBankKind::Full(buckets) => {
                if buckets.is_empty() {
                    return Err(StateError::Corrupt("empty bank covering".into()));
                }
                let mut out = Vec::with_capacity(buckets.len());
                for b in buckets {
                    out.push(self.load_bucket(b)?);
                }
                let cov = BankCovering { buckets: out };
                if !cov.is_canonical() {
                    return Err(StateError::Corrupt("bank covering not canonical".into()));
                }
                BankState::Full(cov)
            }
            TsBankKind::Straddle { head, tail } => {
                if tail.is_empty() {
                    return Err(StateError::Corrupt("empty straddle tail".into()));
                }
                let head = self.load_bucket(head)?;
                let mut out = Vec::with_capacity(tail.len());
                for b in tail {
                    out.push(self.load_bucket(b)?);
                }
                let cov = BankCovering { buckets: out };
                if !cov.is_canonical() {
                    return Err(StateError::Corrupt("straddle tail not canonical".into()));
                }
                if head.b != cov.start() {
                    return Err(StateError::Corrupt(
                        "straddle head does not abut tail".into(),
                    ));
                }
                BankState::Straddle { head, tail: cov }
            }
        };
        self.now = state.now;
        self.bits = BitSource::from_state(state.bits.buf, state.bits.left);
        self.state = bank_state;
        self.spare = SparePool::default();
        Ok(())
    }

    #[cfg(debug_assertions)]
    fn debug_check_invariants(&self) {
        match &self.state {
            BankState::Empty => {}
            BankState::Full(cov) => {
                debug_assert!(cov.is_canonical());
                debug_assert!(
                    self.is_active(cov.oldest_ts()),
                    "case-1 covering must be all-active"
                );
            }
            BankState::Straddle { head, tail } => {
                debug_assert!(tail.is_canonical());
                debug_assert_eq!(head.b, tail.start(), "head must abut the tail");
                debug_assert!(
                    !self.is_active(head.ts_first),
                    "head's first element must be expired"
                );
                debug_assert!(self.is_active(tail.oldest_ts()), "tail must be all-active");
                debug_assert!(head.width() <= tail.covered_len(), "α ≤ β invariant");
            }
        }
    }

    #[cfg(not(debug_assertions))]
    fn debug_check_invariants(&self) {}
}

impl<T, K: SampleTracker<T>> MemoryWords for TsEngineBank<T, K> {
    fn memory_words(&self) -> usize {
        let state = match &self.state {
            BankState::Empty => 0,
            BankState::Full(cov) => cov.memory_words(),
            BankState::Straddle { head, tail } => head.memory_words() + tail.memory_words(),
        };
        state + 2 // t0, now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::CountingRng;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    fn drive(
        t0: u64,
        lanes: usize,
        schedule: &[(u64, u64)],
        rng: &mut SmallRng,
    ) -> TsEngineBank<u64> {
        let mut bank = TsEngineBank::new(t0, lanes);
        let mut idx = 0u64;
        for &(ts, burst) in schedule {
            bank.advance_time(ts);
            for _ in 0..burst {
                bank.insert(rng, idx, idx, ts);
                idx += 1;
            }
        }
        bank
    }

    #[test]
    fn empty_bank_returns_none() {
        let mut rng = SmallRng::seed_from_u64(0);
        let bank: TsEngineBank<u64> = TsEngineBank::new(5, 4);
        for lane in 0..4 {
            assert!(bank.sample_lane(lane, &mut rng).is_none());
        }
        assert!(bank.is_empty());
    }

    #[test]
    fn boundaries_match_an_independent_engine_in_lockstep() {
        // The load-bearing structural claim: the shared skeleton equals a
        // solo engine's at every single tick, straddle state included.
        let mut rng_bank = SmallRng::seed_from_u64(1);
        let mut rng_engine = SmallRng::seed_from_u64(99); // different coins on purpose
        let mut bank: TsEngineBank<u64> = TsEngineBank::new(7, 8);
        let mut engine: TsEngine<u64> = TsEngine::new(7);
        let mut sched = SmallRng::seed_from_u64(3);
        let mut idx = 0u64;
        for tick in 0..400u64 {
            bank.advance_time(tick);
            engine.advance_time(tick);
            for _ in 0..sched.gen_range(0..4u64) {
                bank.insert(&mut rng_bank, idx, idx, tick);
                engine.insert(&mut rng_engine, idx, idx, tick);
                idx += 1;
            }
            assert_eq!(bank.boundaries(), engine.boundaries(), "tick {tick}");
            assert_eq!(bank.is_straddling(), engine.is_straddling(), "tick {tick}");
        }
    }

    #[test]
    fn every_lane_is_uniform_case2() {
        // Steady stream, query in the straddling state: each of 3 lanes
        // must be uniform over the 16 active elements.
        let t0 = 16u64;
        let last_tick = 40u64;
        let lanes = 3usize;
        let trials = 20_000u64;
        let mut counts = vec![vec![0u64; t0 as usize]; lanes];
        for t in 0..trials {
            let mut rng = SmallRng::seed_from_u64(100_000 + t);
            let schedule: Vec<(u64, u64)> = (0..=last_tick).map(|i| (i, 1)).collect();
            let bank = drive(t0, lanes, &schedule, &mut rng);
            let lo = last_tick - t0 + 1;
            for (lane, lane_counts) in counts.iter_mut().enumerate() {
                let s = bank.sample_lane(lane, &mut rng).expect("nonempty");
                assert!(s.index() >= lo);
                lane_counts[(s.index() - lo) as usize] += 1;
            }
        }
        for (lane, lane_counts) in counts.iter().enumerate() {
            let out = chi_square_uniform_test(lane_counts);
            assert!(
                out.p_value > 1e-4,
                "lane {lane} not uniform: p = {}",
                out.p_value
            );
        }
    }

    #[test]
    fn lanes_are_mutually_independent() {
        // 2 lanes over a 3-element window: the joint law over 9 cells must
        // be the product of uniforms.
        let trials = 40_000u64;
        let mut counts = vec![0u64; 9];
        for t in 0..trials {
            let mut rng = SmallRng::seed_from_u64(50_000 + t);
            let schedule: Vec<(u64, u64)> = (0..10).map(|i| (i, 1)).collect();
            let bank = drive(3, 2, &schedule, &mut rng);
            let a = bank.sample_lane(0, &mut rng).expect("nonempty").index() - 7;
            let b = bank.sample_lane(1, &mut rng).expect("nonempty").index() - 7;
            counts[(a * 3 + b) as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "lanes not independent: p = {}",
            out.p_value
        );
    }

    #[test]
    fn ingestion_draws_are_amortized_bits() {
        // 2k coin bits per merge, ~1 merge per arrival: ≤ k/32 + ε words
        // per element, two orders below the 2k words of independent
        // engines.
        let lanes = 64usize;
        let mut rng = CountingRng::new(SmallRng::seed_from_u64(4));
        let mut bank: TsEngineBank<u64> = TsEngineBank::new(1 << 20, lanes);
        bank.advance_time(0);
        let n = 40_000u64;
        for i in 0..n {
            bank.insert(&mut rng, i, i, 0);
        }
        let per_elem = rng.words() as f64 / n as f64;
        assert!(
            per_elem <= lanes as f64 / 32.0 + 1.0,
            "draws/element {per_elem} above k/32 + 1"
        );
    }

    #[test]
    fn lane_engine_extraction_round_trips() {
        // An extracted lane must be a valid engine whose boundaries match
        // the bank and whose sample is active.
        let mut rng = SmallRng::seed_from_u64(5);
        let schedule: Vec<(u64, u64)> = (0..60).map(|i| (i, 2)).collect();
        let bank = drive(9, 4, &schedule, &mut rng);
        for lane in 0..4 {
            let mut e = bank.lane_engine(lane);
            assert_eq!(e.boundaries(), bank.boundaries());
            let s = e.sample(&mut rng).expect("nonempty");
            assert!(bank.now() - s.timestamp() < 9);
        }
    }

    #[test]
    fn memory_never_exceeds_independent_engines() {
        // Shared boundaries: (6k+3) words per differentiated bucket vs 9k
        // for k engines; Shared singletons are cheaper still.
        let mut rng = SmallRng::seed_from_u64(6);
        let lanes = 5usize;
        let mut bank: TsEngineBank<u64> = TsEngineBank::new(64, lanes);
        let mut engine: TsEngine<u64> = TsEngine::new(64);
        let mut idx = 0u64;
        for tick in 0..500u64 {
            bank.advance_time(tick);
            engine.advance_time(tick);
            for _ in 0..3 {
                bank.insert(&mut rng, idx, idx, tick);
                engine.insert(&mut rng, idx, idx, tick);
                idx += 1;
            }
            let independent = lanes * engine.memory_words();
            assert!(
                bank.memory_words() <= independent,
                "tick {tick}: bank {} > {independent}",
                bank.memory_words()
            );
        }
    }

    #[test]
    fn total_expiry_resets_all_lanes() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut bank: TsEngineBank<u64> = TsEngineBank::new(3, 2);
        bank.advance_time(0);
        bank.insert(&mut rng, 1, 0, 0);
        bank.advance_time(100);
        assert!(bank.is_empty());
        bank.insert(&mut rng, 2, 1, 100);
        for lane in 0..2 {
            let s = bank.sample_lane(lane, &mut rng).expect("restarted");
            assert_eq!(s.index(), 1);
        }
    }
}
