//! Sample decoration hooks for sampling-based algorithms (Theorem 5.1).
//!
//! Several of the §5 applications (AMS frequency moments, CCM entropy,
//! Buriol triangle counting) need more than the sampled element: they need a
//! statistic of the stream *suffix following the sampled position* — e.g.
//! "how many later elements equal the sampled value". A reservoir can carry
//! such a statistic for free: reset it whenever the candidate is replaced,
//! fold in every subsequent arrival otherwise.
//!
//! [`SampleTracker`] is that hook. The sequence-window sampler
//! [`crate::seq::SeqSamplerWr`] is generic over it; the default
//! [`NullTracker`] compiles to nothing. This is exactly the "replace the
//! underlying sampling method" transformation of Theorem 5.1, expressed as
//! an API.

/// Per-candidate suffix statistic maintained alongside a reservoir sample.
pub trait SampleTracker<T> {
    /// The statistic carried with each candidate.
    type Stat: Clone + std::fmt::Debug;

    /// `false` promises that [`observe`](SampleTracker::observe) is a
    /// no-op, so the sampler may *skip* non-accepted arrivals entirely
    /// (the `O(log n)`-draws fast path of [`crate::skip`]). A tracker
    /// that folds every arrival into its statistic must keep the default
    /// `true`, which forces the per-arrival path.
    const TRACKS: bool = true;

    /// Called when a reservoir adopts `value` (at stream position `index`)
    /// as its new candidate; returns the initial statistic.
    fn fresh(&mut self, value: &T, index: u64) -> Self::Stat;

    /// Called for every element arriving after the candidate, while the
    /// candidate is retained.
    fn observe(&mut self, stat: &mut Self::Stat, incoming: &T);
}

/// The trivial tracker: carries no statistic.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracker;

impl<T> SampleTracker<T> for NullTracker {
    type Stat = ();

    const TRACKS: bool = false;

    fn fresh(&mut self, _value: &T, _index: u64) -> Self::Stat {}

    fn observe(&mut self, _stat: &mut Self::Stat, _incoming: &T) {}
}

/// A tracker that counts occurrences of the candidate's value in the suffix
/// starting at the candidate itself (so the count is at least 1).
///
/// This is the `r` statistic of the AMS estimator ("the number of
/// occurrences of `a_j` in the stream suffix") and of the CCM entropy
/// estimator; both applications in `swsample-apps` are built on it.
#[derive(Debug, Clone, Copy, Default)]
pub struct OccurrenceTracker;

impl<T: PartialEq + Clone + std::fmt::Debug> SampleTracker<T> for OccurrenceTracker {
    /// `(candidate value, occurrence count including the candidate)`.
    type Stat = (T, u64);

    fn fresh(&mut self, value: &T, _index: u64) -> Self::Stat {
        (value.clone(), 1)
    }

    fn observe(&mut self, stat: &mut Self::Stat, incoming: &T) {
        if *incoming == stat.0 {
            stat.1 += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracker_is_unit() {
        let mut t = NullTracker;
        let _: () = SampleTracker::<u64>::fresh(&mut t, &5, 0);
        SampleTracker::<u64>::observe(&mut t, &mut (), &6);
    }

    #[test]
    fn occurrence_tracker_counts_matches() {
        let mut t = OccurrenceTracker;
        let mut stat = t.fresh(&7u64, 0);
        assert_eq!(stat, (7, 1));
        for v in [7, 3, 7, 7, 9] {
            t.observe(&mut stat, &v);
        }
        assert_eq!(stat.1, 4);
    }

    #[test]
    fn occurrence_tracker_resets_on_fresh() {
        let mut t = OccurrenceTracker;
        let mut stat = t.fresh(&1u64, 0);
        t.observe(&mut stat, &1);
        let stat2 = t.fresh(&2u64, 5);
        assert_eq!(stat2, (2, 1));
        assert_eq!(stat.1, 2, "old stat unaffected");
    }
}
