//! Online moment accumulation (Welford) and summary statistics.

/// Numerically stable online mean/variance accumulator (Welford's method).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineMoments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineMoments {
    /// Fresh accumulator with no observations.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Batch summary of a set of observations, including quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (type-7 / linear interpolation).
    pub median: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute a summary of `values`. Panics on empty input or NaN.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "Summary::of: empty input");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("Summary::of: NaN"));
        let mut acc = OnlineMoments::new();
        for &v in values {
            acc.push(v);
        }
        Self {
            count: values.len(),
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            min: sorted[0],
            median: quantile(&sorted, 0.5),
            p99: quantile(&sorted, 0.99),
            max: *sorted.last().expect("nonempty"),
        }
    }
}

/// Linear-interpolated quantile of an already-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = OnlineMoments::new();
        for &x in &xs {
            acc.push(x);
        }
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of that classic data set = 32/7.
        assert!((acc.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
        assert_eq!(acc.count(), 8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineMoments::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineMoments::new();
        let mut right = OnlineMoments::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineMoments::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineMoments::new());
        assert_eq!(a.mean(), before.mean());
        let mut empty = OnlineMoments::new();
        empty.merge(&before);
        assert_eq!(empty.mean(), before.mean());
    }

    #[test]
    fn summary_quantiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-12);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!(s.p99 >= 99.0 && s.p99 <= 100.0);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let mut acc = OnlineMoments::new();
        for _ in 0..10 {
            acc.push(3.25);
        }
        assert!(acc.variance().abs() < 1e-15);
    }
}
