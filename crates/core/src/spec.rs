//! Declarative sampler construction: [`SamplerSpec`].
//!
//! Every sampler in the workspace is described by the same plain-data
//! record — window discipline, replacement mode, algorithm family, `k`,
//! window size, RNG seed — and [`SamplerSpec::build`] turns that record
//! into a boxed [`ErasedWindowSampler`]. This
//! is what lets one process hold a *heterogeneous fleet* of windows (the
//! multi-stream engine in `swsample-stream`, the CLI's `run`/`multi`
//! subcommands, the experiment harness) without being generic over every
//! concrete sampler type.
//!
//! The spec round-trips through the CLI flag surface:
//!
//! ```
//! use swsample_core::spec::SamplerSpec;
//!
//! let spec: SamplerSpec = "--window seq --n 1000 --mode wor --algo paper --k 16 --seed 7"
//!     .parse()
//!     .unwrap();
//! assert_eq!(
//!     spec.to_string(),
//!     "--window seq --n 1000 --mode wor --algo paper --k 16 --seed 7"
//! );
//! let mut sampler = spec.build::<u64>().unwrap();
//! sampler.insert_batch(&(0..5_000u64).collect::<Vec<_>>());
//! assert!(sampler.sample_k().unwrap().iter().all(|s| s.index() >= 4_000));
//! ```
//!
//! Crate boundaries: `swsample-core` can construct the paper's samplers
//! (Theorems 2.1/2.2/3.9/4.4) and the whole-stream Algorithm L reservoir.
//! The baseline algorithms ([`Algorithm::Chain`], [`Algorithm::Priority`],
//! [`Algorithm::WindowBuffer`]) live in `swsample-baselines`, which
//! depends on this crate — so building *those* specs goes through the full
//! factory `swsample_baselines::spec::build`, which handles every
//! algorithm and delegates the core ones here. APIs that need to build
//! arbitrary specs without naming a crate take a [`SamplerFactory`].

use crate::erased::ErasedWindowSampler;
use crate::memory::MemoryWords;
use crate::reservoir::ReservoirL;
use crate::sample::Sample;
use crate::traits::WindowSampler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which sliding-window discipline the sampler maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// The last `n` arrivals are active (§2, sequence-based windows).
    Sequence(u64),
    /// Arrivals within the last `w` ticks are active (§3, timestamp-based
    /// windows).
    Timestamp(u64),
    /// No window at all: the entire stream is active (the paper's
    /// Question 1.2 reference point).
    WholeStream,
}

/// Whether the `k` maintained samples are drawn with or without
/// replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// `k` independent samples (Theorems 2.1, 3.9).
    With,
    /// `k` distinct elements (Theorems 2.2, 4.4).
    Without,
}

/// Which algorithm family maintains the sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The paper's samplers — deterministic `O(k)` / `O(k log n)` words.
    Paper,
    /// Li's Algorithm L over the whole stream (no expiry).
    ReservoirL,
    /// Chain sampling (Babcock–Datar–Motwani '02) — sequence windows,
    /// with replacement, randomized memory bound. Built by
    /// `swsample_baselines::spec::build`.
    Chain,
    /// Priority sampling (BDM '02; Gemulla–Lehner '08 for the
    /// without-replacement top-`k` variant) — timestamp windows,
    /// randomized memory bound. Built by `swsample_baselines::spec::build`.
    Priority,
    /// Exact full-window buffering (Zhang et al. '05) — `O(n)` words.
    /// Built by `swsample_baselines::spec::build`.
    WindowBuffer,
}

impl Algorithm {
    /// The flag-surface token (`--algo <token>`).
    pub fn token(&self) -> &'static str {
        match self {
            Algorithm::Paper => "paper",
            Algorithm::ReservoirL => "reservoir-l",
            Algorithm::Chain => "chain",
            Algorithm::Priority => "priority",
            Algorithm::WindowBuffer => "window-buffer",
        }
    }
}

/// A plain-data description of any sampler in the workspace.
///
/// See the [module docs](self) for the grammar and an end-to-end example.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SamplerSpec {
    /// Window discipline and size.
    pub window: WindowKind,
    /// With or without replacement.
    pub replacement: Replacement,
    /// Algorithm family.
    pub algorithm: Algorithm,
    /// Number of maintained samples.
    pub k: usize,
    /// Seed for the sampler's own RNG stream.
    pub seed: u64,
}

/// Why a spec failed to validate, parse, or build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The field combination is meaningless (e.g. chain sampling over a
    /// timestamp window, `k = 0`).
    Invalid(String),
    /// The combination is valid but the constructor lives in a crate this
    /// builder cannot see; the message names the factory that can.
    Unsupported(String),
    /// The flag string did not parse.
    Parse(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Invalid(m) => write!(f, "invalid sampler spec: {m}"),
            SpecError::Unsupported(m) => write!(f, "unsupported here: {m}"),
            SpecError::Parse(m) => write!(f, "cannot parse sampler spec: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A function that turns a spec into a running erased sampler.
///
/// `SamplerSpec::build::<T>` is a `SamplerFactory<T>` covering the
/// algorithms `swsample-core` owns; `swsample_baselines::spec::build`
/// covers all of them. Code that must stay crate-agnostic (the
/// multi-stream engine) takes the factory as a value.
pub type SamplerFactory<T> = fn(&SamplerSpec) -> Result<Box<dyn ErasedWindowSampler<T>>, SpecError>;

/// How a keyed fleet stores its per-key sampler state.
///
/// A fleet built from one template spec is *homogeneous*: every key runs
/// the same algorithm with the same window and `k`, differing only in
/// seed and stream. For those, the struct-of-arrays backend
/// ([`crate::soa`]) stores per-key state field-major in contiguous slabs
/// and dispatches once per batch per family — no per-key heap box, no
/// per-element vtable call. The erased backend (one boxed
/// [`ErasedWindowSampler`] per key) remains the fallback for algorithm
/// families without a fleet kernel (the baseline samplers).
///
/// Both backends are sample-for-sample **bit-identical**: per-key seeds
/// derive from the key the same way, and the SoA kernels consume RNG
/// draws in exactly the boxed samplers' order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FleetBackend {
    /// Pick automatically: [`FleetBackend::Soa`] when the template has a
    /// fleet kernel ([`SamplerSpec::soa_eligible`]), else
    /// [`FleetBackend::Erased`].
    #[default]
    Auto,
    /// One boxed [`ErasedWindowSampler`] per key (works for every
    /// buildable template).
    Erased,
    /// Field-major struct-of-arrays slabs with batch dispatch; requires
    /// [`SamplerSpec::soa_eligible`].
    Soa,
}

impl FleetBackend {
    /// The flag-surface token (`--backend <token>`).
    pub fn token(&self) -> &'static str {
        match self {
            FleetBackend::Auto => "auto",
            FleetBackend::Erased => "erased",
            FleetBackend::Soa => "soa",
        }
    }

    /// Resolve `Auto` against a template: `Soa` when the template has a
    /// fleet kernel, `Erased` otherwise. Explicit choices pass through
    /// unchanged (an explicit `Soa` over an ineligible template is the
    /// engine constructor's error to report).
    pub fn resolve(self, template: &SamplerSpec) -> FleetBackend {
        match self {
            FleetBackend::Auto => {
                if template.soa_eligible() {
                    FleetBackend::Soa
                } else {
                    FleetBackend::Erased
                }
            }
            explicit => explicit,
        }
    }
}

impl std::fmt::Display for FleetBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

impl std::str::FromStr for FleetBackend {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        match s {
            "auto" => Ok(FleetBackend::Auto),
            "erased" => Ok(FleetBackend::Erased),
            "soa" => Ok(FleetBackend::Soa),
            other => Err(SpecError::Parse(format!(
                "--backend: expected auto|erased|soa, got `{other}`"
            ))),
        }
    }
}

impl SamplerSpec {
    /// Convenience: the paper's sampler over the last `n` arrivals.
    pub fn seq(n: u64, replacement: Replacement, k: usize, seed: u64) -> Self {
        Self {
            window: WindowKind::Sequence(n),
            replacement,
            algorithm: Algorithm::Paper,
            k,
            seed,
        }
    }

    /// Convenience: the paper's sampler over the last `w` ticks.
    pub fn ts(w: u64, replacement: Replacement, k: usize, seed: u64) -> Self {
        Self {
            window: WindowKind::Timestamp(w),
            replacement,
            algorithm: Algorithm::Paper,
            k,
            seed,
        }
    }

    /// Check that the field combination describes a sampler that exists.
    ///
    /// The rules mirror the literature: chain sampling is defined for
    /// sequence windows with replacement; priority sampling for timestamp
    /// windows (the Gemulla–Lehner top-`k` variant is its
    /// without-replacement form); window buffering answers
    /// without-replacement queries over either window kind; Algorithm L
    /// runs over the whole stream without replacement; the paper's
    /// samplers cover both windows in both modes.
    pub fn validate(&self) -> Result<(), SpecError> {
        let err = |m: String| Err(SpecError::Invalid(m));
        if self.k == 0 {
            return err("k must be at least 1".into());
        }
        match self.window {
            WindowKind::Sequence(0) => return err("--n must be at least 1".into()),
            WindowKind::Timestamp(0) => return err("--w must be at least 1".into()),
            _ => {}
        }
        let (win, rep) = (self.window, self.replacement);
        match self.algorithm {
            Algorithm::Paper => match win {
                WindowKind::WholeStream => {
                    err("the paper's samplers need a window (--window seq|ts)".into())
                }
                _ => Ok(()),
            },
            Algorithm::ReservoirL => match (win, rep) {
                (WindowKind::WholeStream, Replacement::Without) => Ok(()),
                (WindowKind::WholeStream, Replacement::With) => {
                    err("reservoir-l samples without replacement (--mode wor)".into())
                }
                _ => err("reservoir-l runs over the whole stream (--window stream)".into()),
            },
            Algorithm::Chain => match (win, rep) {
                (WindowKind::Sequence(_), Replacement::With) => Ok(()),
                (WindowKind::Sequence(_), Replacement::Without) => {
                    err("chain sampling is with-replacement (--mode wr)".into())
                }
                _ => err("chain sampling is sequence-window only (--window seq)".into()),
            },
            Algorithm::Priority => match win {
                WindowKind::Timestamp(_) => Ok(()),
                _ => err("priority sampling is timestamp-window only (--window ts)".into()),
            },
            Algorithm::WindowBuffer => match (win, rep) {
                (WindowKind::WholeStream, _) => {
                    err("window-buffer needs a window (--window seq|ts)".into())
                }
                (_, Replacement::With) => {
                    err("window-buffer answers without-replacement queries (--mode wor)".into())
                }
                _ => Ok(()),
            },
        }
    }

    /// Whether a homogeneous fleet of this template can run on the
    /// struct-of-arrays backend ([`crate::soa`]): every family
    /// `swsample-core` owns has a fleet kernel — the paper's four
    /// samplers and whole-stream Algorithm L. The baseline families
    /// (chain, priority, window-buffer) have none and fall back to
    /// [`FleetBackend::Erased`].
    pub fn soa_eligible(&self) -> bool {
        self.validate().is_ok()
            && matches!(self.algorithm, Algorithm::Paper | Algorithm::ReservoirL)
    }

    /// Construct the described sampler, type-erased.
    ///
    /// Covers the algorithms owned by `swsample-core`
    /// ([`Algorithm::Paper`], [`Algorithm::ReservoirL`]); the baseline
    /// algorithms return [`SpecError::Unsupported`] naming
    /// `swsample_baselines::spec::build`, the factory that covers all of
    /// them. The sampler's RNG is a `SmallRng` seeded from `self.seed`,
    /// so equal specs produce identically-distributed (indeed identical)
    /// samplers.
    ///
    /// `T: Send + Sync` because [`ErasedWindowSampler`] is `Send + Sync`
    /// (erased samplers cross worker threads in parallel fleets and are
    /// queried under shared read locks) and the built sampler stores
    /// values of `T`.
    pub fn build<T: Clone + Send + Sync + 'static>(
        &self,
    ) -> Result<Box<dyn ErasedWindowSampler<T>>, SpecError> {
        self.validate()?;
        let rng = SmallRng::seed_from_u64(self.seed);
        let k = self.k;
        match (self.algorithm, self.window, self.replacement) {
            (Algorithm::Paper, WindowKind::Sequence(n), Replacement::With) => Ok(Box::new(
                WithSpec::new(self.clone(), crate::seq::SeqSamplerWr::new(n, k, rng)),
            )),
            (Algorithm::Paper, WindowKind::Sequence(n), Replacement::Without) => Ok(Box::new(
                WithSpec::new(self.clone(), crate::seq::SeqSamplerWor::new(n, k, rng)),
            )),
            (Algorithm::Paper, WindowKind::Timestamp(w), Replacement::With) => Ok(Box::new(
                WithSpec::new(self.clone(), crate::ts::TsSamplerWr::new(w, k, rng)),
            )),
            (Algorithm::Paper, WindowKind::Timestamp(w), Replacement::Without) => Ok(Box::new(
                WithSpec::new(self.clone(), crate::ts::TsSamplerWor::new(w, k, rng)),
            )),
            (Algorithm::ReservoirL, ..) => Ok(Box::new(WithSpec::new(
                self.clone(),
                WholeStreamL::new(k, rng),
            ))),
            (algo, ..) => Err(SpecError::Unsupported(format!(
                "algorithm `{}` lives in swsample-baselines; build it with \
                 swsample_baselines::spec::build",
                algo.token()
            ))),
        }
    }
}

impl std::fmt::Display for SamplerSpec {
    /// Render the canonical CLI flag surface. `Display` then `FromStr` is
    /// the identity on validated specs (proptest-checked).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.window {
            WindowKind::Sequence(n) => write!(f, "--window seq --n {n}")?,
            WindowKind::Timestamp(w) => write!(f, "--window ts --w {w}")?,
            WindowKind::WholeStream => write!(f, "--window stream")?,
        }
        let mode = match self.replacement {
            Replacement::With => "wr",
            Replacement::Without => "wor",
        };
        write!(
            f,
            " --mode {mode} --algo {} --k {} --seed {}",
            self.algorithm.token(),
            self.k,
            self.seed
        )
    }
}

impl std::str::FromStr for SamplerSpec {
    type Err = SpecError;

    /// Parse the CLI flag surface: whitespace-separated `--flag value`
    /// pairs in any order. Required: `--window` (plus `--n` for `seq`,
    /// `--w` for `ts`). Defaults: `--mode wr --algo paper --k 1 --seed 42`.
    fn from_str(s: &str) -> Result<Self, SpecError> {
        let perr = |m: String| SpecError::Parse(m);
        let mut window: Option<&str> = None;
        let mut n: Option<u64> = None;
        let mut w: Option<u64> = None;
        let mut mode: Option<&str> = None;
        let mut algo: Option<&str> = None;
        let mut k: Option<usize> = None;
        let mut seed: Option<u64> = None;

        let mut it = s.split_whitespace();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| perr(format!("expected `--flag`, got `{flag}`")))?;
            let value = it
                .next()
                .ok_or_else(|| perr(format!("--{name}: missing value")))?;
            let dup = |prev: bool| -> Result<(), SpecError> {
                if prev {
                    Err(perr(format!("--{name}: given twice")))
                } else {
                    Ok(())
                }
            };
            match name {
                "window" => {
                    dup(window.is_some())?;
                    window = Some(value);
                }
                "mode" => {
                    dup(mode.is_some())?;
                    mode = Some(value);
                }
                "algo" => {
                    dup(algo.is_some())?;
                    algo = Some(value);
                }
                "n" => {
                    dup(n.is_some())?;
                    n = Some(parse_num(name, value)?);
                }
                "w" => {
                    dup(w.is_some())?;
                    w = Some(parse_num(name, value)?);
                }
                "k" => {
                    dup(k.is_some())?;
                    k = Some(parse_num::<usize>(name, value)?);
                }
                "seed" => {
                    dup(seed.is_some())?;
                    seed = Some(parse_num(name, value)?);
                }
                other => return Err(perr(format!("unknown spec flag --{other}"))),
            }
        }

        let window = match window.ok_or_else(|| perr("missing --window seq|ts|stream".into()))? {
            "seq" => WindowKind::Sequence(
                n.ok_or_else(|| perr("--window seq needs --n <arrivals>".into()))?,
            ),
            "ts" => WindowKind::Timestamp(
                w.ok_or_else(|| perr("--window ts needs --w <ticks>".into()))?,
            ),
            "stream" => WindowKind::WholeStream,
            other => {
                return Err(perr(format!(
                    "--window: expected seq|ts|stream, got `{other}`"
                )))
            }
        };
        if matches!(window, WindowKind::Timestamp(_) | WindowKind::WholeStream) && n.is_some() {
            return Err(perr("--n applies to --window seq only".into()));
        }
        if matches!(window, WindowKind::Sequence(_) | WindowKind::WholeStream) && w.is_some() {
            return Err(perr("--w applies to --window ts only".into()));
        }
        let replacement = match mode.unwrap_or("wr") {
            "wr" => Replacement::With,
            "wor" => Replacement::Without,
            other => return Err(perr(format!("--mode: expected wr|wor, got `{other}`"))),
        };
        let algorithm = match algo.unwrap_or("paper") {
            "paper" => Algorithm::Paper,
            "reservoir-l" => Algorithm::ReservoirL,
            "chain" => Algorithm::Chain,
            "priority" => Algorithm::Priority,
            "window-buffer" => Algorithm::WindowBuffer,
            other => {
                return Err(perr(format!(
                    "--algo: expected paper|reservoir-l|chain|priority|window-buffer, got `{other}`"
                )))
            }
        };
        Ok(SamplerSpec {
            window,
            replacement,
            algorithm,
            k: k.unwrap_or(1),
            seed: seed.unwrap_or(42),
        })
    }
}

fn parse_num<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, SpecError> {
    raw.parse()
        .map_err(|_| SpecError::Parse(format!("--{name}: cannot parse `{raw}` as a number")))
}

/// A concrete sampler paired with the spec that built it, so the erased
/// view can answer [`WindowSampler::spec`] introspection.
///
/// The spec is configuration, not stream-dependent state: like the RNG
/// state, it is excluded from the §1.4 word accounting, so `WithSpec`
/// reports exactly its inner sampler's footprint.
#[derive(Debug, Clone)]
pub struct WithSpec<S> {
    // Inner first: the spec is cold configuration read only by
    // introspection, while every insert dispatches into `inner` — keyed
    // fleets hold 10⁵ boxed `WithSpec`s, so the sampler's hot fields
    // belong at the front of the box rather than behind ~50 bytes of
    // spec. Declaration order is only a nudge under `repr(Rust)` (the
    // compiler may reorder), but it costs nothing to point the right way.
    inner: S,
    spec: SamplerSpec,
}

impl<S> WithSpec<S> {
    /// Pair `inner` with the spec describing it.
    pub fn new(spec: SamplerSpec, inner: S) -> Self {
        Self { spec, inner }
    }

    /// The wrapped sampler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: MemoryWords> MemoryWords for WithSpec<S> {
    fn memory_words(&self) -> usize {
        self.inner.memory_words()
    }
}

impl<T, S: WindowSampler<T>> WindowSampler<T> for WithSpec<S> {
    fn advance_time(&mut self, now: u64) {
        self.inner.advance_time(now);
    }

    fn insert(&mut self, value: T) {
        self.inner.insert(value);
    }

    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        self.inner.insert_batch(values);
    }

    fn advance_and_insert(&mut self, now: u64, values: &[T])
    where
        T: Clone,
    {
        self.inner.advance_and_insert(now, values);
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        self.inner.sample()
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        self.inner.sample_k()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn spec(&self) -> Option<&SamplerSpec> {
        Some(&self.spec)
    }

    fn save_state(&self) -> Option<crate::state::SamplerState<T>> {
        self.inner.save_state()
    }

    fn restore_state(
        &mut self,
        state: crate::state::SamplerState<T>,
    ) -> Result<(), crate::state::StateError> {
        self.inner.restore_state(state)
    }
}

/// Whole-stream Algorithm L as a [`WindowSampler`] (the window is the
/// entire stream). The `swsample-baselines` crate exposes the same shape
/// as `StreamReservoir`; this private twin exists so `swsample-core` can
/// build [`Algorithm::ReservoirL`] specs without a dependency cycle.
#[derive(Debug, Clone)]
struct WholeStreamL<T, R> {
    inner: ReservoirL<T>,
    rng: R,
    next_index: u64,
}

impl<T, R: Rng> WholeStreamL<T, R> {
    fn new(k: usize, rng: R) -> Self {
        Self {
            inner: ReservoirL::new(k),
            rng,
            next_index: 0,
        }
    }
}

impl<T, R> MemoryWords for WholeStreamL<T, R> {
    fn memory_words(&self) -> usize {
        self.inner.memory_words() + 1
    }
}

impl<T: Clone, R: Rng + 'static> WindowSampler<T> for WholeStreamL<T, R> {
    fn insert(&mut self, value: T) {
        let idx = self.next_index;
        self.next_index += 1;
        self.inner.insert(&mut self.rng, value, idx, idx);
    }

    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        self.inner
            .insert_batch(&mut self.rng, values, self.next_index);
        self.next_index += values.len() as u64;
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        let entries = self.inner.entries();
        if entries.is_empty() {
            return None;
        }
        let j = self.rng.gen_range(0..entries.len());
        Some(entries[j].clone())
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        if self.inner.entries().is_empty() {
            None
        } else {
            Some(self.inner.entries().to_vec())
        }
    }

    fn k(&self) -> usize {
        self.inner.capacity()
    }

    fn save_state(&self) -> Option<crate::state::SamplerState<T>> {
        let (next_accept, w_bits) = self.inner.skip_state();
        Some(crate::state::SamplerState::StreamL {
            next_index: self.next_index,
            rng: crate::state::capture_rng(&self.rng)?,
            res: crate::state::ReservoirLState {
                entries: self.inner.entries().to_vec(),
                seen: self.inner.seen(),
                next_accept,
                w_bits,
            },
        })
    }

    fn restore_state(
        &mut self,
        state: crate::state::SamplerState<T>,
    ) -> Result<(), crate::state::StateError> {
        use crate::state::{SamplerState, StateError};
        let (next_index, rng, res) = match state {
            SamplerState::StreamL {
                next_index,
                rng,
                res,
            } => (next_index, rng, res),
            other => {
                return Err(StateError::Mismatch {
                    expected: "stream-l",
                    found: other.family(),
                })
            }
        };
        if res.entries.len() > self.inner.capacity() {
            return Err(StateError::Corrupt(format!(
                "stream-l reservoir has {} entries for k = {}",
                res.entries.len(),
                self.inner.capacity()
            )));
        }
        if !crate::state::restore_rng(&mut self.rng, &rng) {
            return Err(StateError::Unsupported);
        }
        self.inner = ReservoirL::from_parts(
            self.inner.capacity(),
            res.entries,
            res.seen,
            res.next_accept,
            res.w_bits,
        );
        self.next_index = next_index;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> SamplerSpec {
        s.parse().expect("spec parses")
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "--window seq --n 1000 --mode wr --algo paper --k 4 --seed 1",
            "--window seq --n 8 --mode wor --algo paper --k 2 --seed 99",
            "--window ts --w 60 --mode wor --algo paper --k 16 --seed 3",
            "--window ts --w 7 --mode wr --algo priority --k 1 --seed 0",
            "--window stream --mode wor --algo reservoir-l --k 5 --seed 12",
            "--window seq --n 64 --mode wr --algo chain --k 3 --seed 4",
            "--window seq --n 64 --mode wor --algo window-buffer --k 3 --seed 4",
        ] {
            assert_eq!(spec(s).to_string(), s, "canonical form differs");
        }
    }

    #[test]
    fn parse_accepts_any_flag_order_and_defaults() {
        let a = spec("--seed 7 --k 2 --n 10 --window seq --algo paper --mode wor");
        assert_eq!(a, SamplerSpec::seq(10, Replacement::Without, 2, 7));
        // Defaults: wr, paper, k = 1, seed = 42.
        let d = spec("--window seq --n 5");
        assert_eq!(d, SamplerSpec::seq(5, Replacement::With, 1, 42));
    }

    #[test]
    fn parse_errors_are_specific() {
        for bad in [
            "",
            "--window",
            "--window seq",                    // missing --n
            "--window ts",                     // missing --w
            "--window seq --n ten",            // bad number
            "--window seq --n 5 --n 6",        // duplicate
            "--window stream --n 5",           // --n on stream
            "--window seq --n 5 --w 6",        // --w on seq
            "--window seq --n 5 --mode maybe", // bad mode
            "--window seq --n 5 --algo magic", // bad algo
            "--window seq --n 5 --bogus 1",    // unknown flag
            "window seq",                      // not a flag
        ] {
            assert!(
                bad.parse::<SamplerSpec>().is_err(),
                "`{bad}` should not parse"
            );
        }
    }

    #[test]
    fn validate_enforces_algorithm_windows() {
        assert!(spec("--window seq --n 9 --mode wor").validate().is_ok());
        for bad in [
            "--window ts --w 9 --algo chain",
            "--window seq --n 9 --mode wor --algo chain",
            "--window seq --n 9 --algo priority",
            "--window stream --algo paper",
            "--window stream --mode wr --algo reservoir-l",
            "--window seq --n 9 --mode wr --algo window-buffer",
            "--window seq --n 9 --k 0",
        ] {
            assert!(spec(bad).validate().is_err(), "`{bad}` should not validate");
        }
    }

    #[test]
    fn build_covers_core_algorithms() {
        for s in [
            "--window seq --n 100 --mode wr --k 3 --seed 5",
            "--window seq --n 100 --mode wor --k 3 --seed 5",
            "--window ts --w 10 --mode wr --k 3 --seed 5",
            "--window ts --w 10 --mode wor --k 3 --seed 5",
            "--window stream --mode wor --algo reservoir-l --k 3 --seed 5",
        ] {
            let sp = spec(s);
            let mut sampler = sp.build::<u64>().expect("core spec builds");
            assert_eq!(sampler.k(), 3);
            assert_eq!(sampler.spec(), Some(&sp), "spec introspection");
            sampler.advance_and_insert(1, &[1, 2, 3, 4]);
            assert!(sampler.sample_k().is_some());
            assert!(sampler.memory_words() > 0);
        }
    }

    #[test]
    fn baseline_algorithms_point_at_the_full_factory() {
        for s in [
            "--window seq --n 100 --algo chain",
            "--window ts --w 10 --algo priority",
            "--window seq --n 100 --mode wor --algo window-buffer",
        ] {
            match spec(s).build::<u64>() {
                Err(SpecError::Unsupported(m)) => {
                    assert!(m.contains("swsample_baselines"), "hint names the factory")
                }
                Err(e) => panic!("`{s}`: expected Unsupported, got {e:?}"),
                Ok(_) => panic!("`{s}`: expected Unsupported, got a sampler"),
            }
        }
    }

    #[test]
    fn built_sampler_matches_concrete_construction() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        // Equal seed, equal stream => identical samples: build() is just
        // construction, not a different algorithm.
        let sp = SamplerSpec::seq(50, Replacement::Without, 4, 77);
        let mut erased = sp.build::<u64>().expect("builds");
        let mut concrete = crate::seq::SeqSamplerWor::new(50, 4, SmallRng::seed_from_u64(77));
        let values: Vec<u64> = (0..500).collect();
        for chunk in values.chunks(64) {
            erased.insert_batch(chunk);
            WindowSampler::insert_batch(&mut concrete, chunk);
        }
        assert_eq!(erased.sample_k(), WindowSampler::sample_k(&mut concrete));
        assert_eq!(erased.memory_words(), MemoryWords::memory_words(&concrete));
    }

    #[test]
    fn whole_stream_reservoir_spans_the_stream() {
        let sp = spec("--window stream --mode wor --algo reservoir-l --k 8 --seed 2");
        let mut s = sp.build::<u64>().expect("builds");
        let values: Vec<u64> = (0..10_000).collect();
        for chunk in values.chunks(512) {
            s.insert_batch(chunk);
        }
        let out = s.sample_k().expect("nonempty");
        assert_eq!(out.len(), 8);
        let mut idx: Vec<u64> = out.iter().map(|x| x.index()).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 8, "distinct");
        assert!(s.memory_words() <= 8 * 3 + 6);
    }
}
