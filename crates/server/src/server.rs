//! The server runtime: acceptor, per-connection reader/writer threads,
//! the bounded central ingest queue, and the continuous-query
//! scheduler.
//!
//! Threading model (all `std`, no async runtime):
//!
//! * **Acceptor** — a non-blocking `accept` poll loop; each accepted
//!   socket gets a registry entry, a reader thread, and a writer
//!   thread, each wrapped in `catch_unwind` so one connection's panic
//!   never takes the server down (the `ShardWorkerPool` isolation
//!   idiom).
//! * **Readers** decode frames and either answer directly (`QUERY`,
//!   `STATS`, `SUBSCRIBE`) or push the batch onto the **bounded ingest
//!   queue**. When `queued events + incoming > queue_max_events` the
//!   batch is rejected with `BUSY` instead of buffered — backpressure
//!   is explicit, the queue's high-watermark can never pass its bound,
//!   and nothing is silently dropped (the client retries).
//! * **The ingest loop** drains the queue into
//!   [`MultiStreamEngine::ingest_parallel`] (or through
//!   [`DurableEngine::ingest`] when a WAL directory is configured) and
//!   acks each batch back to its connection. Because every
//!   connection's batches enter the FIFO queue in connection order,
//!   each key's event subsequence is applied in order — the engine's
//!   determinism contract extends across the network boundary.
//! * **The scheduler** ticks on a fixed cadence, evaluates due standing
//!   queries against a snapshot-consistent
//!   [`MultiStreamEngine::sample_k_many`] pass, and pushes results to
//!   subscribers through per-connection drop-oldest rings: replies are
//!   never dropped, pushes to a slow subscriber are (oldest first,
//!   counted and reported in `STATS`), and ingestion never blocks on a
//!   slow consumer.
//!
//! Shutdown (API call or the `SHUTDOWN` opcode) is graceful: stop
//! accepting, unblock readers, drain the ingest queue fully, fsync +
//! final-snapshot the WAL, then flush and close every connection.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use swsample_core::{FleetBackend, MemoryWords, SamplerSpec};
use swsample_durable::engine::Event;
use swsample_durable::frame::write_frame;
use swsample_durable::wal::DEFAULT_SEGMENT_BYTES;
use swsample_durable::{DurableEngine, DurableOptions, ResumeOverrides};
use swsample_stream::MultiStreamEngine;

use crate::protocol::{
    read_client_msg, ClientMsg, ErrorCode, ProtocolError, ReadOutcome, ServerMsg, SubscribeKind,
    PROTOCOL_VERSION,
};
use crate::stats::{ConnStats, EngineStats, GlobalStats, StatsSnapshot};

/// Everything a [`Server`] needs to start. Build one with
/// [`ServerConfig::new`] and override fields as needed.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// The per-key sampler template.
    pub template: SamplerSpec,
    /// Fleet shard count.
    pub shards: usize,
    /// Ingest worker threads.
    pub threads: usize,
    /// Fleet backend.
    pub backend: FleetBackend,
    /// When set, wrap the fleet in a [`DurableEngine`] rooted here
    /// (created fresh, or resumed if the directory already holds a
    /// snapshot).
    pub wal_dir: Option<PathBuf>,
    /// Auto-snapshot cadence for the durable fleet.
    pub snapshot_every: Option<u64>,
    /// WAL segment-roll threshold.
    pub segment_bytes: u64,
    /// Bound on events waiting in the central ingest queue; the
    /// backpressure watermark.
    pub queue_max_events: usize,
    /// Per-connection outbound ring capacity (frames). Pushes beyond it
    /// drop oldest-push-first; replies are never dropped.
    pub ring_capacity: usize,
    /// Scheduler tick interval for continuous queries.
    pub tick: Duration,
    /// Test knob: sleep this long per drained batch, simulating a slow
    /// ingest loop to force backpressure.
    pub drain_delay: Duration,
}

impl ServerConfig {
    /// Defaults for everything but the template: ephemeral loopback
    /// port, 16 shards, 1 thread, auto backend, no WAL, 256 Ki-event
    /// queue bound, 1024-frame rings, 100 ms ticks.
    pub fn new(template: SamplerSpec) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            template,
            shards: 16,
            threads: 1,
            backend: FleetBackend::Auto,
            wal_dir: None,
            snapshot_every: None,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            queue_max_events: 262_144,
            ring_capacity: 1024,
            tick: Duration::from_millis(100),
            drain_delay: Duration::ZERO,
        }
    }
}

/// The fleet behind the server: plain in-memory, or WAL-backed (boxed —
/// the durable engine carries WAL buffers that would bloat the enum).
enum Fleet {
    Plain(MultiStreamEngine<u64, u64>),
    Durable(Box<Mutex<DurableEngine<u64, u64>>>),
}

impl Fleet {
    fn apply(&self, batch: &[Event<u64, u64>]) -> Result<(), String> {
        match self {
            Fleet::Plain(engine) => engine.try_ingest_parallel(batch).map_err(|e| e.to_string()),
            Fleet::Durable(engine) => {
                let mut guard = engine.lock().expect("durable fleet lock poisoned");
                guard.ingest(batch).map(|_| ()).map_err(|e| e.to_string())
            }
        }
    }

    fn sample_k(&self, key: u64) -> Option<Vec<swsample_core::Sample<u64>>> {
        match self {
            Fleet::Plain(engine) => engine.sample_k(&key),
            Fleet::Durable(engine) => engine
                .lock()
                .expect("durable fleet lock poisoned")
                .engine()
                .sample_k(&key),
        }
    }

    fn sample_k_many(&self, keys: &[u64]) -> Vec<Option<Vec<swsample_core::Sample<u64>>>> {
        match self {
            Fleet::Plain(engine) => engine.sample_k_many(keys),
            Fleet::Durable(engine) => engine
                .lock()
                .expect("durable fleet lock poisoned")
                .engine()
                .sample_k_many(keys),
        }
    }

    fn engine_stats(&self) -> EngineStats {
        let grab = |e: &MultiStreamEngine<u64, u64>| EngineStats {
            keys: e.num_keys() as u64,
            shards: e.num_shards() as u64,
            threads: e.num_threads() as u64,
            memory_words: e.memory_words() as u64,
            max_key_words: e.max_key_memory_words() as u64,
        };
        match self {
            Fleet::Plain(engine) => grab(engine),
            Fleet::Durable(engine) => {
                grab(engine.lock().expect("durable fleet lock poisoned").engine())
            }
        }
    }

    fn template(&self) -> SamplerSpec {
        match self {
            Fleet::Plain(engine) => engine.template().clone(),
            Fleet::Durable(engine) => engine
                .lock()
                .expect("durable fleet lock poisoned")
                .engine()
                .template()
                .clone(),
        }
    }

    /// Graceful close: fsync + final snapshot for the durable fleet, a
    /// no-op for the plain one.
    fn close(&self) {
        if let Fleet::Durable(engine) = self {
            let mut guard = engine.lock().expect("durable fleet lock poisoned");
            if let Err(e) = guard.close() {
                eprintln!("swsample-server: final snapshot failed: {e}");
            }
        }
    }
}

/// Per-connection outbound frame ring: drop-oldest for droppable
/// entries (continuous-query pushes), never for replies.
struct OutRing {
    cap: usize,
    entries: VecDeque<(bool, Vec<u8>)>,
    drops: u64,
    closed: bool,
}

impl OutRing {
    fn new(cap: usize) -> OutRing {
        OutRing {
            cap: cap.max(1),
            entries: VecDeque::new(),
            drops: 0,
            closed: false,
        }
    }

    /// Queue a frame payload; returns how many pushes were dropped to
    /// make room (0 or 1).
    fn push(&mut self, droppable: bool, payload: Vec<u8>) -> u64 {
        if self.closed {
            return 0;
        }
        if self.entries.len() >= self.cap {
            if let Some(pos) = self.entries.iter().position(|(d, _)| *d) {
                // Oldest droppable frame makes room.
                self.entries.remove(pos);
                self.drops += 1;
                self.entries.push_back((droppable, payload));
                return 1;
            }
            if droppable {
                // Ring full of replies: the incoming push is the one
                // that gives way.
                self.drops += 1;
                return 1;
            }
            // Replies are never dropped; the ring stretches (bounded in
            // practice by the client's own request pipelining).
        }
        self.entries.push_back((droppable, payload));
        0
    }
}

struct Conn {
    id: u64,
    stream: TcpStream,
    out: Mutex<OutRing>,
    out_cv: Condvar,
    events_in: AtomicU64,
    batches_in: AtomicU64,
    busy_rejections: AtomicU64,
}

impl Conn {
    fn send(&self, droppable: bool, msg: &ServerMsg) -> u64 {
        let dropped = {
            let mut ring = self.out.lock().expect("out ring poisoned");
            ring.push(droppable, msg.encode())
        };
        self.out_cv.notify_all();
        dropped
    }

    fn close_ring(&self) {
        self.out.lock().expect("out ring poisoned").closed = true;
        self.out_cv.notify_all();
    }

    fn stats(&self) -> ConnStats {
        ConnStats {
            conn_id: self.id,
            events_in: self.events_in.load(Ordering::Relaxed),
            batches_in: self.batches_in.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            subscriber_drops: self.out.lock().expect("out ring poisoned").drops,
        }
    }
}

struct QueuedBatch {
    conn_id: u64,
    seq: u64,
    events: Vec<Event<u64, u64>>,
}

#[derive(Default)]
struct QueueInner {
    batches: VecDeque<QueuedBatch>,
    pending_events: usize,
    hwm_events: usize,
}

/// The bounded central ingest queue. `push` rejects (→ `BUSY`) instead
/// of exceeding `max_events`, so `hwm_events <= max_events` by
/// construction.
struct IngestQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    max_events: usize,
}

impl IngestQueue {
    fn new(max_events: usize) -> IngestQueue {
        IngestQueue {
            inner: Mutex::new(QueueInner::default()),
            cv: Condvar::new(),
            max_events: max_events.max(1),
        }
    }

    fn push(&self, batch: QueuedBatch) -> Result<(), u64> {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        let n = batch.events.len();
        if inner.pending_events + n > self.max_events {
            return Err(inner.pending_events as u64);
        }
        inner.pending_events += n;
        inner.hwm_events = inner.hwm_events.max(inner.pending_events);
        inner.batches.push_back(batch);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Next batch, blocking. `None` only after shutdown is flagged
    /// *and* the queue has fully drained — no enqueued event is lost.
    fn pop(&self, shutdown: &AtomicBool) -> Option<QueuedBatch> {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        loop {
            if let Some(batch) = inner.batches.pop_front() {
                inner.pending_events -= batch.events.len();
                return Some(batch);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(inner, Duration::from_millis(50))
                .expect("ingest queue poisoned");
            inner = guard;
        }
    }
}

struct Subscription {
    id: u64,
    conn_id: u64,
    kind: SubscribeKind,
    key: u64,
    every_ticks: u64,
    threshold: u64,
}

struct Shared {
    cfg: ServerConfig,
    fleet: Fleet,
    queue: IngestQueue,
    conns: Mutex<BTreeMap<u64, Arc<Conn>>>,
    subs: Mutex<Vec<Subscription>>,
    global: Mutex<GlobalStats>,
    sub_drops: AtomicU64,
    shutdown: AtomicBool,
    next_conn_id: AtomicU64,
    next_sub_id: AtomicU64,
    reader_threads: Mutex<Vec<JoinHandle<()>>>,
    writer_threads: Mutex<Vec<JoinHandle<()>>>,
    started: Instant,
}

impl Shared {
    fn global(&self) -> MutexGuard<'_, GlobalStats> {
        self.global.lock().expect("global counters poisoned")
    }

    /// One consistent snapshot: global counters, queue depth/watermark,
    /// fleet shape, and per-connection counters, all under the global
    /// lock (the single place these locks nest).
    fn snapshot(&self) -> StatsSnapshot {
        let mut global = self.global().clone();
        {
            let q = self.queue.inner.lock().expect("ingest queue poisoned");
            global.queue_events = q.pending_events as u64;
            global.queue_hwm_events = q.hwm_events as u64;
        }
        global.subscriber_drops = self.sub_drops.load(Ordering::Relaxed);
        let conns: Vec<ConnStats> = self
            .conns
            .lock()
            .expect("conn registry poisoned")
            .values()
            .map(|c| c.stats())
            .collect();
        StatsSnapshot {
            global,
            engine: self.fleet.engine_stats(),
            conns,
        }
    }

    fn conn(&self, id: u64) -> Option<Arc<Conn>> {
        self.conns
            .lock()
            .expect("conn registry poisoned")
            .get(&id)
            .cloned()
    }
}

/// A running server. Dropping it without [`shutdown`](Server::shutdown)
/// still shuts down gracefully (drains and snapshots), discarding the
/// final stats.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    ingest: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, build the fleet, and spawn the acceptor, ingest loop, and
    /// scheduler.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let fleet = build_fleet(&cfg).map_err(io::Error::other)?;
        let shared = Arc::new(Shared {
            queue: IngestQueue::new(cfg.queue_max_events),
            cfg,
            fleet,
            conns: Mutex::new(BTreeMap::new()),
            subs: Mutex::new(Vec::new()),
            global: Mutex::new(GlobalStats::default()),
            sub_drops: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(1),
            next_sub_id: AtomicU64::new(1),
            reader_threads: Mutex::new(Vec::new()),
            writer_threads: Mutex::new(Vec::new()),
            started: Instant::now(),
        });
        let spawn = |name: &str, body: Box<dyn FnOnce() + Send>| -> io::Result<JoinHandle<()>> {
            let tag = name.to_string();
            std::thread::Builder::new()
                .name(tag.clone())
                .spawn(move || {
                    if catch_unwind(AssertUnwindSafe(body)).is_err() {
                        eprintln!("swsample-server: {tag} thread panicked");
                    }
                })
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            spawn(
                "swsample-acceptor",
                Box::new(move || accept_loop(shared, listener)),
            )?
        };
        let ingest = {
            let shared = Arc::clone(&shared);
            spawn("swsample-ingest", Box::new(move || ingest_loop(shared)))?
        };
        let scheduler = {
            let shared = Arc::clone(&shared);
            spawn(
                "swsample-scheduler",
                Box::new(move || scheduler_loop(shared)),
            )?
        };
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            ingest: Some(ingest),
            scheduler: Some(scheduler),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A consistent stats snapshot of the running server.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// True once shutdown has been requested — by a `SHUTDOWN` frame or
    /// a [`shutdown`](Server::shutdown) call.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, unblock readers, drain every
    /// enqueued batch into the fleet, fsync + final-snapshot the WAL,
    /// flush and close every connection. Returns the final stats after
    /// printing the one-line stderr metrics summary.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> StatsSnapshot {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // 1. Stop accepting — after this join the registry can only
        //    shrink, so no reader escapes the next step.
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // 2. Unblock and join every reader: no new work can enter the
        //    ingest queue once they are gone.
        for conn in self
            .shared
            .conns
            .lock()
            .expect("conn registry poisoned")
            .values()
        {
            let _ = conn.stream.shutdown(Shutdown::Read);
        }
        let readers: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .shared
                .reader_threads
                .lock()
                .expect("reader threads poisoned"),
        );
        for handle in readers {
            let _ = handle.join();
        }
        // 3. The ingest loop drains the queue fully — every accepted
        //    batch is applied and acked — then closes the fleet (final
        //    WAL fsync + snapshot).
        self.shared.queue.cv.notify_all();
        if let Some(handle) = self.ingest.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        let stats = self.shared.snapshot();
        // 4. Writers flush their rings (reader teardown closed them)
        //    and half-close the sockets.
        let writers: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .shared
                .writer_threads
                .lock()
                .expect("writer threads poisoned"),
        );
        for handle in writers {
            let _ = handle.join();
        }
        let elapsed = self.shared.started.elapsed().as_secs_f64().max(1e-9);
        let elems_per_sec = stats.global.events_applied as f64 / elapsed;
        eprintln!("{}", stats.metrics_line(elems_per_sec));
        stats
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() || self.ingest.is_some() || self.scheduler.is_some() {
            self.shutdown_inner();
        }
    }
}

fn build_fleet(cfg: &ServerConfig) -> Result<Fleet, String> {
    match &cfg.wal_dir {
        None => MultiStreamEngine::with_backend(
            cfg.template.clone(),
            cfg.shards,
            swsample_baselines::spec::build::<u64>,
            cfg.threads,
            cfg.backend,
        )
        .map(Fleet::Plain)
        .map_err(|e| e.to_string()),
        Some(dir) => {
            let opts = DurableOptions {
                segment_bytes: cfg.segment_bytes,
                snapshot_every: cfg.snapshot_every,
                ..DurableOptions::default()
            };
            let has_snapshot = std::fs::read_dir(dir)
                .map(|entries| {
                    entries
                        .flatten()
                        .any(|e| e.path().extension().map(|x| x == "snap").unwrap_or(false))
                })
                .unwrap_or(false);
            let engine = if has_snapshot {
                DurableEngine::open_with(
                    dir,
                    opts,
                    ResumeOverrides {
                        shards: Some(cfg.shards),
                        threads: Some(cfg.threads),
                        backend: Some(cfg.backend),
                    },
                )
            } else {
                DurableEngine::create(
                    dir,
                    cfg.template.clone(),
                    cfg.shards,
                    cfg.threads,
                    cfg.backend,
                    opts,
                )
            };
            engine
                .map(|e| Fleet::Durable(Box::new(Mutex::new(e))))
                .map_err(|e| e.to_string())
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Err(e) = spawn_conn(&shared, stream) {
                    eprintln!("swsample-server: failed to start connection: {e}");
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                eprintln!("swsample-server: accept error: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn spawn_conn(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
    let conn = Arc::new(Conn {
        id,
        stream: stream.try_clone()?,
        out: Mutex::new(OutRing::new(shared.cfg.ring_capacity)),
        out_cv: Condvar::new(),
        events_in: AtomicU64::new(0),
        batches_in: AtomicU64::new(0),
        busy_rejections: AtomicU64::new(0),
    });
    shared
        .conns
        .lock()
        .expect("conn registry poisoned")
        .insert(id, Arc::clone(&conn));
    {
        let mut g = shared.global();
        g.connections_total += 1;
        g.connections_open += 1;
    }
    let reader = {
        let shared = Arc::clone(shared);
        let conn = Arc::clone(&conn);
        let stream = stream.try_clone()?;
        std::thread::Builder::new()
            .name(format!("swsample-conn-{id}-r"))
            .spawn(move || {
                if catch_unwind(AssertUnwindSafe(|| reader_loop(&shared, &conn, stream))).is_err() {
                    eprintln!("swsample-server: connection {id} reader panicked");
                }
                // Teardown runs whether the reader returned or panicked.
                conn_teardown(&shared, &conn);
            })?
    };
    let writer = {
        let conn = Arc::clone(&conn);
        std::thread::Builder::new()
            .name(format!("swsample-conn-{id}-w"))
            .spawn(move || {
                if catch_unwind(AssertUnwindSafe(|| writer_loop(&conn, stream))).is_err() {
                    eprintln!("swsample-server: connection {id} writer panicked");
                }
            })?
    };
    shared
        .reader_threads
        .lock()
        .expect("reader threads poisoned")
        .push(reader);
    shared
        .writer_threads
        .lock()
        .expect("writer threads poisoned")
        .push(writer);
    Ok(())
}

fn conn_teardown(shared: &Shared, conn: &Conn) {
    shared
        .conns
        .lock()
        .expect("conn registry poisoned")
        .remove(&conn.id);
    shared
        .subs
        .lock()
        .expect("subscriptions poisoned")
        .retain(|s| s.conn_id != conn.id);
    shared.global().connections_open -= 1;
    conn.close_ring();
}

fn reader_loop(shared: &Arc<Shared>, conn: &Arc<Conn>, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    let mut offset = 0u64;
    let mut hello_done = false;
    // `Err` is a connection-level I/O failure: just drop the connection.
    while let Ok(outcome) = read_client_msg(&mut reader, &mut offset) {
        let msg = match outcome {
            ReadOutcome::Eof => break,
            ReadOutcome::Bad(e) => {
                // Typed protocol error, then close: framing is
                // unrecoverable mid-stream.
                send_protocol_error(conn, &e);
                break;
            }
            ReadOutcome::Msg(msg) => msg,
        };
        if !hello_done {
            match msg {
                ClientMsg::Hello { version, .. } if version == PROTOCOL_VERSION => {
                    hello_done = true;
                    conn.send(
                        false,
                        &ServerMsg::HelloAck {
                            version: PROTOCOL_VERSION,
                            conn_id: conn.id,
                            template: shared.fleet.template().to_string(),
                        },
                    );
                    continue;
                }
                ClientMsg::Hello { version, .. } => {
                    send_protocol_error(
                        conn,
                        &ProtocolError {
                            code: ErrorCode::Version,
                            offset,
                            detail: format!(
                                "client speaks version {version}, server speaks {PROTOCOL_VERSION}"
                            ),
                        },
                    );
                    break;
                }
                _ => {
                    send_protocol_error(
                        conn,
                        &ProtocolError {
                            code: ErrorCode::State,
                            offset,
                            detail: "first message must be HELLO".into(),
                        },
                    );
                    break;
                }
            }
        }
        match msg {
            ClientMsg::Hello { .. } => {
                send_protocol_error(
                    conn,
                    &ProtocolError {
                        code: ErrorCode::State,
                        offset,
                        detail: "duplicate HELLO".into(),
                    },
                );
                break;
            }
            ClientMsg::Ingest { seq, batch } => {
                let n = batch.len() as u64;
                conn.events_in.fetch_add(n, Ordering::Relaxed);
                conn.batches_in.fetch_add(1, Ordering::Relaxed);
                {
                    let mut g = shared.global();
                    g.events_in += n;
                    g.batches_in += 1;
                }
                if batch.is_empty() {
                    conn.send(false, &ServerMsg::IngestOk { seq, events: 0 });
                    continue;
                }
                match shared.queue.push(QueuedBatch {
                    conn_id: conn.id,
                    seq,
                    events: batch,
                }) {
                    Ok(()) => {} // acked by the ingest loop once applied
                    Err(queued_events) => {
                        conn.busy_rejections.fetch_add(1, Ordering::Relaxed);
                        shared.global().busy_rejections += 1;
                        conn.send(false, &ServerMsg::Busy { seq, queued_events });
                    }
                }
            }
            ClientMsg::Query { key } => {
                let samples = shared.fleet.sample_k(key).map(|samples| {
                    samples
                        .iter()
                        .map(|s| (*s.value(), s.index(), s.timestamp()))
                        .collect()
                });
                conn.send(false, &ServerMsg::Samples { key, samples });
            }
            ClientMsg::Subscribe {
                kind,
                key,
                every_ticks,
                threshold,
            } => {
                let id = shared.next_sub_id.fetch_add(1, Ordering::SeqCst);
                shared
                    .subs
                    .lock()
                    .expect("subscriptions poisoned")
                    .push(Subscription {
                        id,
                        conn_id: conn.id,
                        kind,
                        key,
                        every_ticks: every_ticks.max(1),
                        threshold,
                    });
                conn.send(false, &ServerMsg::SubAck { id });
            }
            ClientMsg::Stats => {
                conn.send(false, &ServerMsg::StatsReply(shared.snapshot()));
            }
            ClientMsg::Bye => {
                conn.send(false, &ServerMsg::Bye);
                break;
            }
            ClientMsg::Shutdown => {
                conn.send(false, &ServerMsg::Bye);
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.queue.cv.notify_all();
                break;
            }
        }
    }
}

fn send_protocol_error(conn: &Conn, e: &ProtocolError) {
    conn.send(
        false,
        &ServerMsg::Error {
            code: e.code,
            offset: e.offset,
            detail: e.detail.clone(),
        },
    );
}

fn writer_loop(conn: &Conn, stream: TcpStream) {
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = {
            let mut ring = conn.out.lock().expect("out ring poisoned");
            loop {
                if let Some((_, payload)) = ring.entries.pop_front() {
                    break Some(payload);
                }
                if ring.closed {
                    break None;
                }
                ring = conn.out_cv.wait(ring).expect("out ring poisoned");
            }
        };
        match payload {
            Some(payload) => {
                if write_frame(&mut writer, &payload).is_err() || writer.flush().is_err() {
                    // Peer gone: stop writing; the reader notices EOF.
                    break;
                }
            }
            None => break,
        }
    }
    let _ = writer.flush();
    let _ = conn.stream.shutdown(Shutdown::Write);
}

fn ingest_loop(shared: Arc<Shared>) {
    while let Some(batch) = shared.queue.pop(&shared.shutdown) {
        if !shared.cfg.drain_delay.is_zero() {
            std::thread::sleep(shared.cfg.drain_delay);
        }
        let n = batch.events.len() as u64;
        let reply = match shared.fleet.apply(&batch.events) {
            Ok(()) => {
                shared.global().events_applied += n;
                ServerMsg::IngestOk {
                    seq: batch.seq,
                    events: n,
                }
            }
            Err(detail) => ServerMsg::Error {
                code: ErrorCode::Internal,
                offset: 0,
                detail,
            },
        };
        if let Some(conn) = shared.conn(batch.conn_id) {
            conn.send(false, &reply);
        }
    }
    // Queue fully drained; make everything durable before exit.
    shared.fleet.close();
}

fn scheduler_loop(shared: Arc<Shared>) {
    let mut tick = 0u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(shared.cfg.tick);
        tick += 1;
        shared.global().ticks = tick;
        // Clone the due subscriptions out so sampling and delivery run
        // without the subscription lock.
        let due: Vec<(u64, u64, SubscribeKind, u64, u64)> = shared
            .subs
            .lock()
            .expect("subscriptions poisoned")
            .iter()
            .filter(|s| tick.is_multiple_of(s.every_ticks))
            .map(|s| (s.id, s.conn_id, s.kind, s.key, s.threshold))
            .collect();
        if due.is_empty() {
            continue;
        }
        let mut keys: Vec<u64> = due.iter().map(|d| d.3).collect();
        keys.sort_unstable();
        keys.dedup();
        // One snapshot-consistent pass over the shard locks for every
        // due key.
        let samples = shared.fleet.sample_k_many(&keys);
        let aggregate = |key: u64| -> Option<(u64, u64)> {
            let at = keys.binary_search(&key).ok()?;
            let sample = samples[at].as_ref()?;
            let sum = sample.iter().map(|s| *s.value()).sum();
            Some((sample.len() as u64, sum))
        };
        for (id, conn_id, kind, key, threshold) in due {
            let Some((count, sum)) = aggregate(key) else {
                continue;
            };
            if kind == SubscribeKind::Threshold && sum < threshold {
                continue;
            }
            if let Some(conn) = shared.conn(conn_id) {
                let dropped = conn.send(
                    true,
                    &ServerMsg::Push {
                        id,
                        tick,
                        key,
                        count,
                        sum,
                    },
                );
                if dropped > 0 {
                    shared.sub_drops.fetch_add(dropped, Ordering::Relaxed);
                }
            }
        }
    }
}
