//! The full [`SamplerSpec`] factory: every algorithm in the workspace.
//!
//! `swsample_core::spec::SamplerSpec::build` can only construct the
//! samplers its crate owns (the paper's four, plus whole-stream
//! Algorithm L). This module completes the map with the baseline
//! algorithms this crate implements — chain, priority (both variants),
//! and exact window buffering — and delegates everything else to core,
//! so [`build`] accepts **any** valid spec. Its address,
//! `swsample_baselines::spec::build`, is a
//! [`SamplerFactory`](swsample_core::spec::SamplerFactory) and is what
//! fleet holders (the multi-stream engine, the CLI) should be handed
//! when baseline algorithms must be constructible.

use crate::chain::ChainSampler;
use crate::priority::PrioritySampler;
use crate::priority_topk::PriorityTopK;
use crate::window_buffer::WindowBuffer;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample_core::spec::{Algorithm, Replacement, SamplerSpec, SpecError, WindowKind, WithSpec};
use swsample_core::ErasedWindowSampler;
use swsample_stream::WindowSpec;

/// Build any valid spec, baseline algorithms included.
///
/// The constructed sampler's RNG is a `SmallRng` seeded from
/// `spec.seed`, exactly as in `SamplerSpec::build`, and the returned
/// object answers [`ErasedWindowSampler::spec`] introspection.
/// `T: Send` mirrors `SamplerSpec::build` — erased samplers are `Send`
/// so fleets can shard them across worker threads.
pub fn build<T: Clone + Send + Sync + 'static>(
    spec: &SamplerSpec,
) -> Result<Box<dyn ErasedWindowSampler<T>>, SpecError> {
    spec.validate()?;
    let rng = SmallRng::seed_from_u64(spec.seed);
    let k = spec.k;
    match (spec.algorithm, spec.window, spec.replacement) {
        (Algorithm::Chain, WindowKind::Sequence(n), _) => Ok(Box::new(WithSpec::new(
            spec.clone(),
            ChainSampler::new(n, k, rng),
        ))),
        (Algorithm::Priority, WindowKind::Timestamp(w), Replacement::With) => Ok(Box::new(
            WithSpec::new(spec.clone(), PrioritySampler::new(w, k, rng)),
        )),
        (Algorithm::Priority, WindowKind::Timestamp(w), Replacement::Without) => Ok(Box::new(
            WithSpec::new(spec.clone(), PriorityTopK::new(w, k, rng)),
        )),
        (Algorithm::WindowBuffer, WindowKind::Sequence(n), _) => Ok(Box::new(WithSpec::new(
            spec.clone(),
            WindowBuffer::new(WindowSpec::Sequence(n), k, rng),
        ))),
        (Algorithm::WindowBuffer, WindowKind::Timestamp(w), _) => Ok(Box::new(WithSpec::new(
            spec.clone(),
            WindowBuffer::new(WindowSpec::Timestamp(w), k, rng),
        ))),
        // Paper samplers and the whole-stream reservoir live in core.
        _ => spec.build(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> SamplerSpec {
        s.parse().expect("spec parses")
    }

    #[test]
    fn builds_every_algorithm_family() {
        for s in [
            "--window seq --n 100 --mode wr --algo paper --k 3 --seed 1",
            "--window seq --n 100 --mode wor --algo paper --k 3 --seed 1",
            "--window ts --w 16 --mode wr --algo paper --k 3 --seed 1",
            "--window ts --w 16 --mode wor --algo paper --k 3 --seed 1",
            "--window stream --mode wor --algo reservoir-l --k 3 --seed 1",
            "--window seq --n 100 --mode wr --algo chain --k 3 --seed 1",
            "--window ts --w 16 --mode wr --algo priority --k 3 --seed 1",
            "--window ts --w 16 --mode wor --algo priority --k 3 --seed 1",
            "--window seq --n 100 --mode wor --algo window-buffer --k 3 --seed 1",
            "--window ts --w 16 --mode wor --algo window-buffer --k 3 --seed 1",
        ] {
            let sp = spec(s);
            let mut sampler = build::<u64>(&sp).unwrap_or_else(|e| panic!("`{s}`: {e}"));
            assert_eq!(sampler.spec(), Some(&sp), "`{s}`: spec introspection");
            for tick in 1..=40u64 {
                sampler.advance_and_insert(tick, &[tick, tick + 1]);
            }
            let out = sampler.sample_k().expect("nonempty window");
            assert!(!out.is_empty() && out.len() <= 3);
            assert!(sampler.memory_words() > 0);
        }
    }

    #[test]
    fn invalid_specs_still_rejected() {
        assert!(build::<u64>(&spec("--window ts --w 9 --algo chain")).is_err());
        assert!(build::<u64>(&spec("--window seq --n 9 --algo priority")).is_err());
        assert!(build::<u64>(&spec("--window seq --n 9 --mode wr --algo window-buffer")).is_err());
    }

    #[test]
    fn chain_via_spec_matches_concrete() {
        let sp = spec("--window seq --n 64 --mode wr --algo chain --k 2 --seed 9");
        let mut erased = build::<u64>(&sp).expect("builds");
        let mut concrete = ChainSampler::new(64, 2, SmallRng::seed_from_u64(9));
        let values: Vec<u64> = (0..400).collect();
        for chunk in values.chunks(32) {
            erased.insert_batch(chunk);
            swsample_core::WindowSampler::insert_batch(&mut concrete, chunk);
        }
        assert_eq!(
            erased.sample_k(),
            swsample_core::WindowSampler::sample_k(&mut concrete)
        );
    }
}
