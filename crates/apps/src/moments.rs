//! Frequency moments over sliding windows (Corollary 5.2).
//!
//! The Alon–Matias–Szegedy estimator for `F_k = Σᵢ xᵢᵏ`: pick a uniform
//! stream position `j`, let `r` be the number of occurrences of the value
//! `a_j` from position `j` onwards; then `N·(rᵏ − (r−1)ᵏ)` is an unbiased
//! estimate of `F_k`. Variance is tamed the standard way: average `s₁`
//! independent basic estimators, take the median of `s₂` such averages.
//!
//! The windowed version is exactly the Theorem 5.1 transfer: the uniform
//! position comes from [`SeqSamplerWr`], and the suffix count `r` rides
//! along via [`OccurrenceTracker`] — counting only arrivals *after* the
//! sampled position, all of which are inside the window because the window
//! is a stream suffix.

use rand::Rng;
use swsample_core::seq::SeqSamplerWr;
use swsample_core::track::OccurrenceTracker;
use swsample_core::MemoryWords;

/// AMS estimator for the `k`-th frequency moment over the last `n` arrivals.
///
/// ```
/// use swsample_apps::MomentEstimator;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// // F1 = window size, exactly, for any stream.
/// let mut est = MomentEstimator::new(64, 1, 4, 1, SmallRng::seed_from_u64(1));
/// for i in 0..500u64 {
///     est.insert(i % 10);
/// }
/// assert_eq!(est.estimate().unwrap(), 64.0);
/// ```
#[derive(Debug, Clone)]
pub struct MomentEstimator<R> {
    moment: u32,
    s1: usize,
    s2: usize,
    sampler: SeqSamplerWr<u64, R, OccurrenceTracker>,
}

impl<R: Rng> MomentEstimator<R> {
    /// Estimator for `F_moment` (`moment ≥ 1`) over windows of `n` arrivals,
    /// averaging `s1 ≥ 1` basic estimators per group and taking the median
    /// of `s2 ≥ 1` groups (total `s1·s2` window samples).
    pub fn new(n: u64, moment: u32, s1: usize, s2: usize, rng: R) -> Self {
        assert!(moment >= 1, "MomentEstimator: moment must be >= 1");
        assert!(s1 >= 1 && s2 >= 1, "MomentEstimator: need s1, s2 >= 1");
        Self {
            moment,
            s1,
            s2,
            sampler: SeqSamplerWr::with_tracker(n, s1 * s2, rng, OccurrenceTracker),
        }
    }

    /// Feed the next arrival.
    pub fn insert(&mut self, value: u64) {
        self.sampler.push(value);
    }

    /// Current estimate of `F_k` over the active window; `None` before any
    /// arrival.
    pub fn estimate(&mut self) -> Option<f64> {
        let n = self.sampler.active_len();
        if n == 0 {
            return None;
        }
        let picks = self.sampler.sample_k_with_stats()?;
        let k = self.moment as i32;
        let basics: Vec<f64> = picks
            .iter()
            .map(|(_, (_, r))| {
                let r = *r as f64;
                n as f64 * (r.powi(k) - (r - 1.0).powi(k))
            })
            .collect();
        Some(median_of_means(&basics, self.s1, self.s2))
    }

    /// Exponent `k` of the estimated moment.
    pub fn moment(&self) -> u32 {
        self.moment
    }

    /// Number of active elements.
    pub fn active_len(&self) -> u64 {
        self.sampler.active_len()
    }
}

impl<R> MemoryWords for MomentEstimator<R> {
    fn memory_words(&self) -> usize {
        // Sampler words + one (value, count) stat pair per instance.
        self.sampler.memory_words() + self.s1 * self.s2 * 2 + 3
    }
}

/// Median of `s2` group means over `basics` (length `s1·s2`).
pub(crate) fn median_of_means(basics: &[f64], s1: usize, s2: usize) -> f64 {
    debug_assert_eq!(basics.len(), s1 * s2);
    let mut means: Vec<f64> = basics
        .chunks_exact(s1)
        .map(|c| c.iter().sum::<f64>() / s1 as f64)
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let m = means.len();
    if m % 2 == 1 {
        means[m / 2]
    } else {
        0.5 * (means[m / 2 - 1] + means[m / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::OnlineMoments;

    #[test]
    fn median_of_means_basics() {
        // 2 groups of 2: means 1.5 and 3.5 -> median 2.5.
        assert_eq!(median_of_means(&[1.0, 2.0, 3.0, 4.0], 2, 2), 2.5);
        // 3 groups of 1: median of {5, 1, 9} = 5.
        assert_eq!(median_of_means(&[5.0, 1.0, 9.0], 1, 3), 5.0);
    }

    #[test]
    fn constant_stream_estimate_is_exact() {
        // All values equal: r = n − j for position j uniform, and
        // E[n(r² − (r−1)²)] = n·E[2r−1] = n·n = F₂ exactly; with a constant
        // stream each basic estimator is unbiased but noisy; the estimate
        // must still land near n².
        let n = 64u64;
        let mut est = MomentEstimator::new(n, 2, 16, 5, SmallRng::seed_from_u64(1));
        for _ in 0..500 {
            est.insert(42);
        }
        let f2 = est.estimate().expect("nonempty");
        let exact = (n * n) as f64;
        assert!(
            (f2 - exact).abs() / exact < 0.5,
            "f2 = {f2}, exact = {exact}"
        );
    }

    #[test]
    fn unbiasedness_over_many_seeds() {
        // Mean of many independent estimates must approach the exact F₂.
        let n = 32u64;
        let mut exact = crate::exact::ExactWindow::new(n as usize);
        let stream: Vec<u64> = (0..200u64).map(|i| i % 7).collect();
        for &v in &stream {
            exact.insert(v);
        }
        let truth = exact.moment(2);
        let mut acc = OnlineMoments::new();
        for seed in 0..400 {
            let mut est = MomentEstimator::new(n, 2, 4, 1, SmallRng::seed_from_u64(seed));
            for &v in &stream {
                est.insert(v);
            }
            acc.push(est.estimate().expect("nonempty"));
        }
        let rel = (acc.mean() - truth).abs() / truth;
        assert!(
            rel < 0.1,
            "mean estimate {} vs exact {truth} (rel {rel})",
            acc.mean()
        );
    }

    #[test]
    fn f1_is_window_size() {
        // F₁ = Σ xᵢ = N: the estimator is exactly n for every sample since
        // n(r − (r−1)) = n.
        let mut est = MomentEstimator::new(16, 1, 2, 1, SmallRng::seed_from_u64(3));
        for i in 0..100u64 {
            est.insert(i);
        }
        assert_eq!(est.estimate().expect("nonempty"), 16.0);
    }

    #[test]
    fn empty_returns_none() {
        let mut est = MomentEstimator::new(8, 2, 2, 2, SmallRng::seed_from_u64(4));
        assert!(est.estimate().is_none());
    }

    #[test]
    fn warmup_window_uses_partial_length() {
        let mut est = MomentEstimator::new(1000, 1, 2, 1, SmallRng::seed_from_u64(5));
        for i in 0..10u64 {
            est.insert(i);
        }
        // F₁ of a 10-element window is 10.
        assert_eq!(est.estimate().expect("nonempty"), 10.0);
    }

    #[test]
    fn memory_independent_of_window_size() {
        let mut small = MomentEstimator::new(16, 2, 4, 3, SmallRng::seed_from_u64(6));
        let mut large = MomentEstimator::new(1 << 20, 2, 4, 3, SmallRng::seed_from_u64(7));
        for i in 0..2000u64 {
            small.insert(i % 50);
            large.insert(i % 50);
        }
        assert!(large.memory_words() <= small.memory_words() + 8);
    }
}
