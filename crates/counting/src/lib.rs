//! Approximate counting over sliding windows — the DGIM exponential
//! histogram (Datar, Gionis, Indyk, Motwani, SODA'02; the paper's
//! reference \[31\]).
//!
//! Why this lives in the workspace: the paper's timestamp-window
//! application corollaries (5.2, 5.4) need the *window size* `n(t)` to turn
//! sampled suffix statistics into estimates (`F̂_k = n·(rᵏ − (r−1)ᵏ)` etc.),
//! but `n(t)` cannot be computed exactly in sublinear space — that is the
//! very negative result (\[31\]) that makes timestamp windows hard. The
//! canonical fix is the DGIM structure: a `(1±ε)` count of the arrivals in
//! the last `t₀` ticks using `O((1/ε)·log² n)` bits. `swsample-query` and
//! the timestamp-window estimators in `swsample-apps` consume it as their
//! window-size oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use swsample_core::MemoryWords;

/// One histogram bucket: `size` arrivals, the newest of which happened at
/// `ts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Bucket {
    ts: u64,
    size: u64,
}

/// DGIM exponential histogram counting arrivals in the last `t0` ticks
/// within relative error `≤ 1/(2(r−1))`, where `r` is the per-size bucket
/// budget.
///
/// ```
/// use swsample_counting::WindowCounter;
///
/// let mut c = WindowCounter::with_epsilon(10, 0.1);
/// for tick in 0..100u64 {
///     c.advance_time(tick);
///     c.insert(); // one arrival per tick
/// }
/// let est = c.estimate();
/// // Exactly 10 arrivals are active; the estimate is within 10%.
/// assert!((est as f64 - 10.0).abs() <= 1.0 + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct WindowCounter {
    t0: u64,
    /// Maximum buckets per size class before a merge cascades.
    r: usize,
    now: u64,
    /// Buckets oldest-first; sizes are powers of two, non-increasing from
    /// front (oldest, largest) to back (newest, size 1).
    buckets: VecDeque<Bucket>,
    /// `class_counts[j]` = number of buckets of size `2^j`; keeps insert
    /// free of linear rescans (buckets of one size are contiguous, so the
    /// merge position is the suffix-sum of the larger classes).
    class_counts: Vec<u32>,
}

impl WindowCounter {
    /// Counter for windows of `t0 ≥ 1` ticks with per-size bucket budget
    /// `r ≥ 2` (relative error `≤ 1/(2(r−1))`).
    pub fn new(t0: u64, r: usize) -> Self {
        assert!(t0 >= 1, "WindowCounter: window must be at least 1 tick");
        assert!(r >= 2, "WindowCounter: bucket budget must be at least 2");
        Self {
            t0,
            r,
            now: 0,
            buckets: VecDeque::new(),
            class_counts: Vec::new(),
        }
    }

    /// Counter with a target relative error `epsilon ∈ (0, 1)`.
    pub fn with_epsilon(t0: u64, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "WindowCounter: epsilon in (0,1)"
        );
        let r = (1.0 / (2.0 * epsilon)).ceil() as usize + 1;
        Self::new(t0, r.max(2))
    }

    /// Window width in ticks.
    pub fn window(&self) -> u64 {
        self.t0
    }

    /// Advance the clock, expiring buckets whose newest element left the
    /// window.
    ///
    /// # Panics
    /// Panics if the clock moves backwards.
    pub fn advance_time(&mut self, now: u64) {
        assert!(now >= self.now, "WindowCounter: clock moved backwards");
        self.now = now;
        while self.buckets.front().is_some_and(|b| now - b.ts >= self.t0) {
            let gone = self.buckets.pop_front().expect("checked nonempty");
            let class = gone.size.trailing_zeros() as usize;
            self.class_counts[class] -= 1;
        }
    }

    /// Record one arrival at the current clock tick.
    pub fn insert(&mut self) {
        self.buckets.push_back(Bucket {
            ts: self.now,
            size: 1,
        });
        if self.class_counts.is_empty() {
            self.class_counts.push(0);
        }
        self.class_counts[0] += 1;
        // Merge cascade: when a size class exceeds its budget, unify the
        // two *oldest* buckets of that size into one of double size (the
        // merged bucket keeps the newer timestamp). Buckets of equal size
        // are contiguous (sizes sorted non-increasing from the front), so
        // the class's first bucket sits after all larger classes.
        let mut class = 0usize;
        loop {
            if (self.class_counts[class] as usize) <= self.r {
                break;
            }
            let first: usize = self.class_counts[class + 1..]
                .iter()
                .map(|&c| c as usize)
                .sum();
            let size = 1u64 << class;
            debug_assert_eq!(self.buckets[first].size, size);
            debug_assert_eq!(self.buckets[first + 1].size, size);
            let newer_ts = self.buckets[first + 1].ts;
            self.buckets[first + 1] = Bucket {
                ts: newer_ts,
                size: size * 2,
            };
            self.buckets.remove(first);
            self.class_counts[class] -= 2;
            if self.class_counts.len() == class + 1 {
                self.class_counts.push(0);
            }
            self.class_counts[class + 1] += 1;
            class += 1;
        }
    }

    /// Record `burst` arrivals at the current tick.
    pub fn insert_many(&mut self, burst: u64) {
        for _ in 0..burst {
            self.insert();
        }
    }

    /// The DGIM estimate: total bucket mass minus half the oldest bucket
    /// (whose elements are only partially in the window).
    pub fn estimate(&self) -> u64 {
        let total: u64 = self.buckets.iter().map(|b| b.size).sum();
        match self.buckets.front() {
            Some(oldest) => total - oldest.size / 2,
            None => 0,
        }
    }

    /// Guaranteed upper bound on the true count (all buckets fully active).
    pub fn upper_bound(&self) -> u64 {
        self.buckets.iter().map(|b| b.size).sum()
    }

    /// Guaranteed lower bound: every bucket except the oldest contributes
    /// fully; the oldest contributes at least its newest element.
    pub fn lower_bound(&self) -> u64 {
        match self.buckets.front() {
            None => 0,
            Some(oldest) => self.upper_bound() - oldest.size + 1,
        }
    }

    /// Current number of histogram buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Structural invariants (used by the property tests): power-of-two
    /// sizes, non-increasing from front to back, at most `r + 1` per class,
    /// non-decreasing timestamps.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_size = u64::MAX;
        let mut prev_ts = 0u64;
        let mut per_class: std::collections::HashMap<u64, usize> = Default::default();
        for b in &self.buckets {
            if !b.size.is_power_of_two() {
                return Err(format!("bucket size {} not a power of two", b.size));
            }
            if b.size > prev_size {
                return Err("bucket sizes increase toward the back".into());
            }
            if b.ts < prev_ts {
                return Err("bucket timestamps decrease".into());
            }
            *per_class.entry(b.size).or_default() += 1;
            prev_size = b.size;
            prev_ts = b.ts;
        }
        for (&size, &count) in &per_class {
            if count > self.r + 1 {
                return Err(format!(
                    "{count} buckets of size {size} exceed budget {}",
                    self.r
                ));
            }
        }
        // The class-count index must agree with the actual buckets.
        for (j, &c) in self.class_counts.iter().enumerate() {
            let actual = per_class.get(&(1u64 << j)).copied().unwrap_or(0);
            if c as usize != actual {
                return Err(format!(
                    "class_counts[{j}] = {c} but {actual} buckets of size {} exist",
                    1u64 << j
                ));
            }
        }
        Ok(())
    }
}

impl MemoryWords for WindowCounter {
    fn memory_words(&self) -> usize {
        // Two words per bucket (ts, size) + per-class counters + t0, r, now.
        self.buckets.len() * 2 + self.class_counts.len() + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Exact reference counter.
    struct Exact {
        t0: u64,
        now: u64,
        arrivals: VecDeque<u64>,
    }

    impl Exact {
        fn new(t0: u64) -> Self {
            Self {
                t0,
                now: 0,
                arrivals: VecDeque::new(),
            }
        }
        fn advance_time(&mut self, now: u64) {
            self.now = now;
            while self.arrivals.front().is_some_and(|&ts| now - ts >= self.t0) {
                self.arrivals.pop_front();
            }
        }
        fn insert(&mut self) {
            self.arrivals.push_back(self.now);
        }
        fn count(&self) -> u64 {
            self.arrivals.len() as u64
        }
    }

    #[test]
    fn empty_counter_estimates_zero() {
        let c = WindowCounter::new(10, 4);
        assert_eq!(c.estimate(), 0);
        assert_eq!(c.lower_bound(), 0);
        assert_eq!(c.upper_bound(), 0);
    }

    #[test]
    fn exact_when_few_arrivals() {
        let mut c = WindowCounter::new(100, 4);
        c.advance_time(0);
        for _ in 0..3 {
            c.insert();
        }
        // Three size-1 buckets: estimate is exact.
        assert_eq!(c.estimate(), 3);
    }

    #[test]
    fn steady_stream_within_error_bound() {
        for &r in &[2usize, 4, 8, 16] {
            let mut c = WindowCounter::new(64, r);
            let mut e = Exact::new(64);
            let eps = 1.0 / (2.0 * (r as f64 - 1.0));
            for tick in 0..1000u64 {
                c.advance_time(tick);
                e.advance_time(tick);
                c.insert();
                e.insert();
                let truth = e.count() as f64;
                let est = c.estimate() as f64;
                assert!(
                    (est - truth).abs() <= eps * truth + 1.0,
                    "r={r}, tick={tick}: est {est} vs true {truth} (eps {eps})"
                );
            }
        }
    }

    #[test]
    fn bursty_stream_within_error_bound() {
        let mut rng = SmallRng::seed_from_u64(1);
        let r = 8usize;
        let eps = 1.0 / (2.0 * (r as f64 - 1.0));
        let mut c = WindowCounter::new(32, r);
        let mut e = Exact::new(32);
        for tick in 0..600u64 {
            c.advance_time(tick);
            e.advance_time(tick);
            let burst = rng.gen_range(0..20u64);
            for _ in 0..burst {
                c.insert();
                e.insert();
            }
            c.check_invariants().expect("invariants");
            let truth = e.count() as f64;
            let est = c.estimate() as f64;
            assert!(
                (est - truth).abs() <= eps * truth + 1.0,
                "tick={tick}: est {est} vs true {truth}"
            );
        }
    }

    #[test]
    fn bounds_bracket_truth() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut c = WindowCounter::new(50, 4);
        let mut e = Exact::new(50);
        for tick in 0..500u64 {
            c.advance_time(tick);
            e.advance_time(tick);
            for _ in 0..rng.gen_range(0..6u64) {
                c.insert();
                e.insert();
            }
            assert!(
                c.lower_bound() <= e.count(),
                "lower bound violated at {tick}"
            );
            assert!(
                c.upper_bound() >= e.count(),
                "upper bound violated at {tick}"
            );
        }
    }

    #[test]
    fn memory_is_logarithmic() {
        let mut c = WindowCounter::new(u64::MAX, 4);
        c.advance_time(0);
        for _ in 0..(1u64 << 16) {
            c.insert();
        }
        // log2(65536) = 16 size classes × (r+1) buckets max.
        assert!(
            c.bucket_count() <= 17 * 5,
            "bucket count {}",
            c.bucket_count()
        );
        assert!(c.memory_words() <= 17 * 5 * 2 + 3);
    }

    #[test]
    fn total_expiry_resets() {
        let mut c = WindowCounter::new(5, 4);
        c.advance_time(0);
        c.insert_many(100);
        c.advance_time(1000);
        assert_eq!(c.estimate(), 0);
        assert_eq!(c.bucket_count(), 0);
    }

    #[test]
    fn with_epsilon_sets_budget() {
        let c = WindowCounter::with_epsilon(10, 0.05);
        // r = ceil(1/(2·0.05)) + 1 = 11.
        assert_eq!(c.r, 11);
    }

    #[test]
    #[should_panic]
    fn clock_cannot_go_backwards() {
        let mut c = WindowCounter::new(5, 2);
        c.advance_time(10);
        c.advance_time(3);
    }

    #[test]
    fn invariants_hold_under_merge_cascades() {
        let mut c = WindowCounter::new(u64::MAX, 2);
        c.advance_time(0);
        for i in 0..4096u64 {
            c.insert();
            if i % 64 == 0 {
                c.check_invariants().expect("invariants");
            }
        }
        c.check_invariants().expect("invariants");
    }
}
