//! Adversarial command-line robustness: no sequence of flags — valid,
//! garbled, truncated, or duplicated — may panic the parser or a
//! command driver, and every rejection must name the offending flag or
//! token so the user can fix it.

use proptest::prelude::*;
use swsample_cli::args::Args;

/// Characters junk tokens are built from (the vendored proptest subset
/// has no regex string strategies).
const JUNK: &[char] = &['a', 'z', 'q', '0', '9', '!', '@', '#', '%', '.', '-', '='];

fn junk_string(picks: &[usize]) -> String {
    picks.iter().map(|&i| JUNK[i % JUNK.len()]).collect()
}
use swsample_cli::commands;
use swsample_core::SamplerSpec;

/// Token pool the fuzzer draws command lines from: real subcommands,
/// real flags, plausible values, and junk. Numeric values are kept tiny
/// so accidentally-valid `multi`/`gen` invocations finish instantly.
const TOKENS: &[&str] = &[
    "run",
    "seq",
    "ts",
    "multi",
    "agg",
    "gen",
    "help",
    "frobnicate",
    "--window",
    "--n",
    "--w",
    "--mode",
    "--algo",
    "--k",
    "--seed",
    "--keys",
    "--count",
    "--theta",
    "--shards",
    "--threads",
    "--backend",
    "--batch-size",
    "--report-every",
    "--show",
    "--workload-seed",
    "--kind",
    "--domain",
    "--epsilon",
    "--wor",
    "--resume",
    "--snapshot-every",
    "--rescale-after",
    "--rescale-shards",
    "seq",
    "ts",
    "stream",
    "wr",
    "wor",
    "paper",
    "reservoir-l",
    "chain",
    "priority",
    "window-buffer",
    "soa",
    "erased",
    "auto",
    "uniform",
    "zipf",
    "bursty",
    "3",
    "7",
    "0",
    "-1",
    "2.5",
    "nan",
    "1e999",
    "garbage",
    "--",
    "--=",
    "--window=seq",
    "--k=3",
    "--k=",
    "=5",
    "ten",
];

fn run_captured(argv: Vec<String>) -> Result<Result<(), String>, ()> {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(_) => return Err(()),
    };
    let mut input: &[u8] = b"";
    let mut out = Vec::new();
    Ok(commands::run(&args, &mut { &mut input }, &mut out))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any command line assembled from the token pool parses or errors —
    /// never panics — all the way through the command drivers.
    #[test]
    fn fuzzed_command_lines_never_panic(
        picks in proptest::collection::vec(0usize..TOKENS.len(), 0..10),
    ) {
        let argv: Vec<String> = picks.iter().map(|&i| TOKENS[i].to_string()).collect();
        let _ = run_captured(argv);
    }

    /// Garbling one token of a canonical, valid `multi` command line
    /// never panics, and if it turns the line invalid, the error names
    /// the offending token or its flag.
    #[test]
    fn garbled_multi_flag_errors_name_the_token(
        victim in 0usize..14,
        junk_picks in proptest::collection::vec(0usize..JUNK.len(), 1..8),
    ) {
        let junk = junk_string(&junk_picks);
        let mut argv: Vec<String> = [
            "multi", "--keys", "10", "--count", "200", "--window", "seq",
            "--n", "50", "--k", "2", "--threads", "1", "--backend",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        argv.push("auto".to_string());
        // Garble one token (never the subcommand itself — that case is
        // covered by the pool fuzzer above).
        let at = 1 + (victim % (argv.len() - 1));
        let original = argv[at].clone();
        // The flag governing the garbled token: the token itself if it is
        // a flag, otherwise the flag it is the value of. A junk value may
        // be rejected by semantic validation (e.g. `--k 0`), whose message
        // names the flag rather than echoing the value.
        let flag = if original.starts_with("--") {
            original.clone()
        } else {
            argv[at - 1].clone()
        };
        argv[at] = junk.clone();
        match run_captured(argv) {
            Err(()) => {} // Args::parse rejected the shape — fine.
            Ok(Ok(())) => {} // still valid (e.g. junk became a value for a bare flag)
            Ok(Err(msg)) => {
                prop_assert!(
                    msg.contains(&junk)
                        || msg.contains(flag.trim_start_matches("--"))
                        || msg.contains("missing"),
                    "error `{msg}` names neither the junk token `{junk}` nor \
                     the flag `{flag}`"
                );
            }
        }
    }

    /// The spec grammar itself: garbling any token of a canonical spec
    /// string never panics `SamplerSpec::from_str`, and failures name
    /// the offending token or flag.
    #[test]
    fn garbled_spec_strings_error_with_the_token(
        victim in 0usize..12,
        junk_picks in proptest::collection::vec(0usize..JUNK.len(), 1..6),
    ) {
        let junk = junk_string(&junk_picks);
        let canonical = "--window seq --n 100 --mode wr --algo paper --k 3 --seed 9";
        let mut tokens: Vec<String> = canonical.split_whitespace().map(String::from).collect();
        let at = victim % tokens.len();
        let original = tokens[at].clone();
        tokens[at] = junk.clone();
        let line = tokens.join(" ");
        match line.parse::<SamplerSpec>() {
            Ok(_) => {} // junk happened to be a valid value
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(
                    msg.contains(&junk) || msg.contains(original.trim_start_matches("--"))
                        || msg.contains("missing"),
                    "spec error `{msg}` names neither `{junk}` nor `{original}`"
                );
            }
        }
    }

    /// Arbitrary whitespace-separated garbage through the spec parser:
    /// never a panic.
    #[test]
    fn arbitrary_spec_strings_never_panic(
        picks in proptest::collection::vec(0usize..(JUNK.len() + 1), 0..80),
    ) {
        // Index JUNK.len() maps to a space so the garbage re-tokenizes.
        let s: String = picks
            .iter()
            .map(|&i| if i == JUNK.len() { ' ' } else { JUNK[i] })
            .collect();
        let _ = s.parse::<SamplerSpec>();
    }

    /// Truncating a valid command line at any point never panics and
    /// (when it fails) reports what is missing.
    #[test]
    fn truncated_command_lines_never_panic(keep in 0usize..13) {
        let full = [
            "multi", "--keys", "10", "--count", "200", "--window", "seq",
            "--n", "50", "--k", "2", "--threads", "1",
        ];
        let argv: Vec<String> = full[..keep.min(full.len())]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let _ = run_captured(argv);
    }
}

/// Deterministic checks of the `--backend` / `--threads` flag surface:
/// every invalid combination is an error whose message names the flag.
#[test]
fn backend_and_threads_combos_report_the_flag() {
    let cases: &[(&[&str], &str)] = &[
        (
            &[
                "multi",
                "--keys",
                "5",
                "--count",
                "50",
                "--window",
                "seq",
                "--n",
                "10",
                "--backend",
                "bogus",
            ],
            "--backend",
        ),
        // (--threads 0 is no longer an error: it is the
        // available-parallelism sentinel, covered in commands.rs tests.)
        (
            &[
                "multi",
                "--keys",
                "5",
                "--count",
                "50",
                "--window",
                "seq",
                "--n",
                "10",
                "--threads",
                "two",
            ],
            "--threads",
        ),
        (
            // soa over a baseline family has no fleet kernel.
            &[
                "multi",
                "--keys",
                "5",
                "--count",
                "50",
                "--window",
                "seq",
                "--n",
                "10",
                "--algo",
                "chain",
                "--backend",
                "soa",
            ],
            "soa",
        ),
        (
            &[
                "multi", "--keys", "5", "--count", "50", "--window", "seq", "--n", "10", "--resume",
            ],
            "--wal",
        ),
        (
            &[
                "multi",
                "--keys",
                "5",
                "--count",
                "50",
                "--window",
                "seq",
                "--n",
                "10",
                "--rescale-after",
                "2",
            ],
            "--rescale",
        ),
    ];
    for (argv, needle) in cases {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let args = Args::parse(argv.clone()).expect("shape parses");
        let mut input: &[u8] = b"";
        let mut out = Vec::new();
        let err = commands::run(&args, &mut { &mut input }, &mut out)
            .expect_err(&format!("{argv:?} should fail"));
        assert!(
            err.contains(needle),
            "{argv:?}: error `{err}` does not mention `{needle}`"
        );
    }
}

/// `Args::parse` on raw garbage never panics (no pool, pure bytes).
#[test]
fn args_parse_handles_edge_shapes() {
    for argv in [
        vec![],
        vec!["--".into()],
        vec!["---".into()],
        vec!["cmd".into(), "--".into()],
        vec!["cmd".into(), "--=x".into()],
        vec!["cmd".into(), "--a".into(), "--b".into(), "--c".into()],
        vec!["cmd".into(), "--a=1=2".into()],
        vec!["cmd".into(), "\u{0}".into()],
    ] {
        let _ = Args::parse(argv);
    }
}
