//! Exact randomness primitives shared by the samplers.
//!
//! The implicit-event probabilities of §3.3 (`α/β`,
//! `αβ/((β+i)(β+i−1))`) are ratios of 64-bit integers. Generating them
//! through `f64` would introduce platform-dependent rounding into the very
//! distribution the paper proves exact, so we generate them with exact
//! 128-bit integer comparisons instead.
//!
//! [`BitSource`] is the fair-coin companion: hot paths that consume single
//! random *bits* (the `Incr` merge coins of the covering decomposition, the
//! octave search of [`crate::skip::record_skip`]) would otherwise burn a
//! full 64-bit RNG word per coin. A `BitSource` buffers one `next_u64` and
//! hands out its 64 bits one at a time — each bit is an exactly-fair,
//! mutually independent coin, so the consuming distribution is unchanged
//! while the draw count drops by up to 64×. This is what lets the fused
//! [`crate::ts::TsEngineBank`] service all `k` lanes' merge coins from
//! `O(k/64)` words per arrival.

use rand::{Rng, RngCore};

/// Buffered exactly-fair coin flips: one `next_u64` yields 64 independent
/// bits.
///
/// The buffer is RNG state, not sampler state — like the generator it
/// wraps, it is excluded from the §1.4 word accounting. Cloning a holder
/// clones the buffered bits (the clone replays the same coins, exactly as
/// a cloned RNG replays the same words).
#[derive(Debug, Clone, Default)]
pub struct BitSource {
    buf: u64,
    left: u8,
}

impl BitSource {
    /// An empty buffer; the first [`bit`](BitSource::bit) draws one word.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next fair coin, refilling the 64-bit buffer from `rng` when
    /// drained.
    #[inline]
    pub fn bit<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> bool {
        if self.left == 0 {
            self.buf = rng.next_u64();
            self.left = 64;
        }
        let b = self.buf & 1 == 1;
        self.buf >>= 1;
        self.left -= 1;
        b
    }

    /// The next `nbits` fair coins at once, packed into the low bits of a
    /// `u64` (bit `j` = coin `j`). Equivalent to `nbits` calls of
    /// [`bit`](BitSource::bit) — same bits, same order — but lets hot
    /// loops consume coins as a mask: iterate the set bits instead of
    /// branching per coin, which is what keeps the fused bank's merge
    /// loop free of 50/50 branch mispredicts.
    ///
    /// # Panics
    /// Debug-panics unless `1 ≤ nbits ≤ 64`.
    #[inline]
    pub fn mask<R: RngCore + ?Sized>(&mut self, rng: &mut R, nbits: u32) -> u64 {
        debug_assert!((1..=64).contains(&nbits), "mask: need 1..=64 bits");
        let mut out: u64 = 0;
        let mut got: u32 = 0;
        while got < nbits {
            if self.left == 0 {
                self.buf = rng.next_u64();
                self.left = 64;
            }
            let take = (nbits - got).min(self.left as u32);
            let chunk = if take == 64 {
                self.buf
            } else {
                self.buf & ((1u64 << take) - 1)
            };
            out |= chunk << got;
            self.buf = if take == 64 { 0 } else { self.buf >> take };
            self.left -= take as u8;
            got += take;
        }
        out
    }

    /// Bits still buffered (diagnostic).
    pub fn buffered(&self) -> u8 {
        self.left
    }

    /// Snapshot the buffered coins as `(buffer, bits_left)` for
    /// checkpointing. Restoring via [`BitSource::from_state`] replays the
    /// exact remaining coin stream, which save/restore needs for
    /// bit-identical recovery.
    pub fn state(&self) -> (u64, u8) {
        (self.buf, self.left)
    }

    /// Rebuild a buffer from a [`BitSource::state`] snapshot.
    pub fn from_state(buf: u64, left: u8) -> Self {
        Self { buf, left }
    }
}

/// Bernoulli event with probability exactly `num / den`.
///
/// # Panics
/// Panics (debug) if `num > den` or `den == 0`.
pub(crate) fn bernoulli_ratio<R: Rng>(rng: &mut R, num: u128, den: u128) -> bool {
    debug_assert!(den > 0, "bernoulli_ratio: zero denominator");
    debug_assert!(num <= den, "bernoulli_ratio: p = {num}/{den} > 1");
    if num == den {
        return true;
    }
    if num == 0 {
        return false;
    }
    rng.gen_range(0..den) < num
}

/// `⌊log₂ x⌋` for `x ≥ 1`.
pub(crate) fn floor_log2(x: u64) -> u32 {
    debug_assert!(x >= 1, "floor_log2: x must be >= 1");
    63 - x.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn floor_log2_values() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(7), 2);
        assert_eq!(floor_log2(8), 3);
        assert_eq!(floor_log2(u64::MAX), 63);
    }

    #[test]
    fn bernoulli_degenerate() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(bernoulli_ratio(&mut rng, 5, 5));
        assert!(!bernoulli_ratio(&mut rng, 0, 5));
    }

    #[test]
    fn bernoulli_empirical_rate() {
        let mut rng = SmallRng::seed_from_u64(42);
        let trials = 200_000;
        let hits = (0..trials)
            .filter(|_| bernoulli_ratio(&mut rng, 3, 7))
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 3.0 / 7.0).abs() < 0.005, "rate = {rate}");
    }

    #[test]
    fn bit_source_is_fair_and_packs_64_per_word() {
        use crate::rng::CountingRng;
        let mut rng = CountingRng::new(SmallRng::seed_from_u64(9));
        let mut bits = BitSource::new();
        let trials = 64 * 1000;
        let heads = (0..trials).filter(|_| bits.bit(&mut rng)).count();
        // Exactly one word per 64 bits.
        assert_eq!(rng.words(), trials as u64 / 64);
        let rate = heads as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn mask_is_exactly_the_next_bits() {
        // mask(n) must hand out the same coin stream as n bit() calls,
        // across refill boundaries and mixed call sizes.
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        let mut bits_a = BitSource::new();
        let mut bits_b = BitSource::new();
        for &n in &[1u32, 64, 7, 33, 64, 64, 5, 61, 64, 2] {
            let m = bits_a.mask(&mut a, n);
            for j in 0..n {
                assert_eq!((m >> j) & 1 == 1, bits_b.bit(&mut b), "n={n}, bit {j}");
            }
        }
    }

    #[test]
    fn bit_source_bits_match_the_word_it_buffered() {
        // The bits must be the literal bits of the drawn word, LSB first —
        // i.e. the source adds buffering, not transformation.
        let mut a = SmallRng::seed_from_u64(4);
        let word = SmallRng::seed_from_u64(4).next_u64();
        let mut bits = BitSource::new();
        for i in 0..64 {
            assert_eq!(bits.bit(&mut a), (word >> i) & 1 == 1, "bit {i}");
        }
        assert_eq!(bits.buffered(), 0);
    }

    #[test]
    fn bernoulli_huge_operands() {
        let mut rng = SmallRng::seed_from_u64(1);
        // Must not overflow for operands near u64::MAX squared.
        let den = (u64::MAX as u128) * (u64::MAX as u128);
        let num = den / 2;
        let hits = (0..4000)
            .filter(|_| bernoulli_ratio(&mut rng, num, den))
            .count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.5).abs() < 0.05, "rate = {rate}");
    }
}
