//! The common sampler interface.

use crate::memory::MemoryWords;
use crate::sample::Sample;
use crate::spec::SamplerSpec;
use crate::state::{SamplerState, StateError};

/// A uniform random sampler over a sliding window.
///
/// The protocol is: optionally [`advance_time`](WindowSampler::advance_time)
/// (timestamp windows only — sequence windows ignore it), then
/// [`insert`](WindowSampler::insert) each arriving element, and at any point
/// draw the current sample(s).
///
/// Queries take `&mut self` because timestamp-window queries synthesize the
/// implicit events of §3.3 at query time, which consumes randomness; this
/// mirrors the paper. Between two arrivals, repeated queries return
/// individually-uniform (but mutually correlated) samples — an inherent
/// property of sampling with state, not an artifact.
pub trait WindowSampler<T>: MemoryWords {
    /// Move the clock forward to `now`, expiring elements. No-op for
    /// sequence-based windows.
    ///
    /// # Panics
    /// Panics if `now` is smaller than a previously supplied time.
    fn advance_time(&mut self, now: u64) {
        let _ = now;
    }

    /// Insert an arriving element (stamped with the current clock for
    /// timestamp windows).
    fn insert(&mut self, value: T);

    /// Insert a run of arrivals at once (all stamped with the current
    /// clock for timestamp windows).
    ///
    /// Semantically identical to calling [`insert`](WindowSampler::insert)
    /// once per element, in order — but implementations override it with
    /// fast paths: the skip-ahead sequence samplers advance over
    /// non-accepted arrivals wholesale (zero work per skipped element),
    /// and the timestamp samplers invert their per-engine loops for cache
    /// locality. Callers (the CLI's chunked stdin ingestion, the bench
    /// suite) should prefer this over per-element `insert` on hot paths.
    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        for v in values {
            self.insert(v.clone());
        }
    }

    /// Advance the clock to `now`, then insert `values`, all stamped
    /// `now`. The one-call shape timestamp-window ingestion loops want:
    /// a tick's worth of arrivals becomes a single dispatch.
    ///
    /// # Panics
    /// Panics if `now` is smaller than a previously supplied time.
    fn advance_and_insert(&mut self, now: u64, values: &[T])
    where
        T: Clone,
    {
        self.advance_time(now);
        self.insert_batch(values);
    }

    /// Draw one uniform sample from the active window, or `None` if the
    /// window is empty.
    fn sample(&mut self) -> Option<Sample<T>>;

    /// Draw the full `k`-sample. For with-replacement samplers the entries
    /// are independent; for without-replacement samplers they are distinct
    /// elements. Returns `None` when the window is empty. Without
    /// replacement, returns all active elements when fewer than `k` are
    /// active.
    fn sample_k(&mut self) -> Option<Vec<Sample<T>>>;

    /// The configured number of samples `k`.
    fn k(&self) -> usize;

    /// The [`SamplerSpec`] this sampler was built from, if it was built
    /// declaratively (via [`SamplerSpec::build`] or a
    /// [`SamplerFactory`](crate::spec::SamplerFactory)). Hand-constructed
    /// samplers report `None`; the [`spec::WithSpec`](crate::spec::WithSpec)
    /// wrapper overrides this with its record.
    fn spec(&self) -> Option<&SamplerSpec> {
        None
    }

    /// Checkpoint the sampler's stream-dependent state (retained samples,
    /// counters, skip schedules, RNG words) as a plain-data
    /// [`SamplerState`]. Restoring it onto a freshly spec-built sampler of
    /// the same family continues the run bit-identically.
    ///
    /// Returns `None` when this configuration cannot be checkpointed —
    /// the default for hand-constructed samplers, non-`SmallRng`
    /// generators, and tracking [`SampleTracker`](crate::track)s. Every
    /// spec-built family overrides it.
    fn save_state(&self) -> Option<SamplerState<T>> {
        None
    }

    /// Overwrite this sampler's stream-dependent state from a
    /// [`SamplerState`] checkpoint. The sampler must have been freshly
    /// built from the same spec that produced the checkpoint; config
    /// (window width, `k`, seed) is not carried by the state.
    fn restore_state(&mut self, state: SamplerState<T>) -> Result<(), StateError> {
        let _ = state;
        Err(StateError::Unsupported)
    }
}
