//! The parallel-ingestion acceptance suite (PR 5, extended by the
//! work-stealing scheduler PR):
//!
//! 1. **Determinism** — per-key samples are byte-identical for every
//!    worker-thread count, shard count, fleet backend, and skew level:
//!    seeds derive from the key alone, and each shard's events are
//!    processed in arrival order by exactly one worker per epoch.
//! 2. **`Send` audit** — every spec-built sampler (all algorithm
//!    families) crosses thread boundaries, enforced at compile time.
//! 3. **Scale** — the 100k-key zipf acceptance run through
//!    `ingest_parallel`, re-asserting the paper's per-key word cap.
//! 4. **Scheduler invariants** — the one-shard-one-worker-per-epoch
//!    claim under a steal-heavy stress shape, and byte-identical
//!    samples across mid-stream worker rescales.
//! 5. **Committed artifact** — the checked-in `BENCH_throughput.json`
//!    is schema v7 and records the gated `multi_100k_speedup ≥ 2`,
//!    `multi_soa_100k_speedup ≥ 1.5`, `durable_wal_overhead_100k ≥ 0.7`,
//!    `server_e2e_100k_vs_direct ≥ 0.5`, and
//!    `parallel_t8_overhead_{1k,100k} ≥ 0.9` headlines (plus
//!    `parallel_t4_efficiency_100k ≥ 1.5` when the measuring host had
//!    more than one core) and the machine block.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample::core::spec::{FleetBackend, SamplerSpec};
use swsample::core::{ErasedWindowSampler, MemoryWords};
use swsample::stream::{MultiStreamEngine, ValueGen, ZipfGen};

type Engine = MultiStreamEngine<u64, u64>;

fn build_engine(template: &str, shards: usize, threads: usize) -> Engine {
    MultiStreamEngine::with_threads(
        template.parse().expect("template parses"),
        shards,
        swsample::baselines::spec::build::<u64>,
        threads,
    )
    .expect("engine builds")
}

fn build_backend(template: &str, shards: usize, threads: usize, backend: FleetBackend) -> Engine {
    MultiStreamEngine::with_backend(
        template.parse().expect("template parses"),
        shards,
        swsample::baselines::spec::build::<u64>,
        threads,
        backend,
    )
    .expect("engine builds")
}

/// Drive `events` through the engine in `chunk`-sized batches via the
/// parallel path (thread count 1 exercises the inline serial path).
fn drive(engine: &mut Engine, events: &[(u64, u64, u64)], chunk: usize) {
    for c in events.chunks(chunk) {
        engine.ingest_parallel(c);
    }
}

fn zipf_events(keys: u64, count: u64, seed: u64) -> Vec<(u64, u64, u64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut zipf = ZipfGen::new(keys, 1.2);
    (0..count)
        .map(|i| (zipf.next_value(&mut rng), i / 32, i))
        .collect()
}

/// Same seed + same stream ⇒ byte-identical per-key samples for
/// threads ∈ {1, 2, 8} and shards ∈ {1, 64}, for both window
/// disciplines. The reference is the plain serial engine.
#[test]
fn parallel_samples_bit_identical_across_threads_and_shards() {
    for template in [
        "--window seq --n 40 --mode wr --k 4 --seed 31",
        "--window seq --n 40 --mode wor --k 4 --seed 32",
        "--window ts --w 8 --mode wor --k 3 --seed 33",
    ] {
        let events = zipf_events(300, 12_000, 77);
        let mut reference = build_engine(template, 16, 1);
        drive(&mut reference, &events, 1024);
        let keys = reference.keys();
        let reference_samples: Vec<_> = keys.iter().map(|k| reference.sample_k(k)).collect();

        for shards in [1usize, 64] {
            for threads in [1usize, 2, 8] {
                let mut engine = build_engine(template, shards, threads);
                drive(&mut engine, &events, 1024);
                assert_eq!(engine.num_keys(), keys.len(), "{template}: key census");
                for (key, want) in keys.iter().zip(&reference_samples) {
                    assert_eq!(
                        &engine.sample_k(key),
                        want,
                        "{template}: key {key} diverges at shards={shards} threads={threads}"
                    );
                }
            }
        }
    }
}

/// Compile-time `Send` audit: every sampler the full factory can build
/// must cross threads (the erased trait carries `Send` as a supertrait,
/// so this is enforced for the boxed type as a whole, and the blanket
/// impl enforces it per concrete sampler).
#[test]
fn every_spec_built_sampler_is_send() {
    fn assert_send<T: Send>(_: &T) {}
    fn assert_send_type<T: Send>() {}
    assert_send_type::<Box<dyn ErasedWindowSampler<u64>>>();
    assert_send_type::<Box<dyn ErasedWindowSampler<String>>>();
    assert_send_type::<Engine>();

    for spec in [
        "--window seq --n 100 --mode wr --algo paper --k 3 --seed 1",
        "--window seq --n 100 --mode wor --algo paper --k 3 --seed 1",
        "--window ts --w 16 --mode wr --algo paper --k 3 --seed 1",
        "--window ts --w 16 --mode wor --algo paper --k 3 --seed 1",
        "--window stream --mode wor --algo reservoir-l --k 3 --seed 1",
        "--window seq --n 100 --mode wr --algo chain --k 3 --seed 1",
        "--window ts --w 16 --mode wr --algo priority --k 3 --seed 1",
        "--window ts --w 16 --mode wor --algo priority --k 3 --seed 1",
        "--window seq --n 100 --mode wor --algo window-buffer --k 3 --seed 1",
        "--window ts --w 16 --mode wor --algo window-buffer --k 3 --seed 1",
    ] {
        let parsed: SamplerSpec = spec.parse().expect("spec parses");
        let sampler = swsample::baselines::spec::build::<u64>(&parsed)
            .unwrap_or_else(|e| panic!("`{spec}`: {e}"));
        assert_send(&sampler);
        // And they actually survive a thread hop, state intact.
        let mut sampler = std::thread::spawn(move || {
            let mut s = sampler;
            s.advance_and_insert(1, &[1, 2, 3]);
            s
        })
        .join()
        .expect("sampler crossed threads");
        assert!(sampler.sample_k().is_some(), "`{spec}` lost its window");
    }
}

/// The 100k-key zipf acceptance run, now through `ingest_parallel`:
/// every materialized key stays under Theorem 2.1's deterministic
/// `7k + 3` ceiling and the fleet under `keys · cap`.
#[test]
fn hundred_thousand_keys_parallel_within_paper_caps() {
    let (keys, k) = (100_000u64, 16usize);
    let cap = 7 * k + 3;
    let mut engine = build_engine("--window seq --n 1000 --k 16 --seed 42", 64, 4);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut zipf = ZipfGen::new(keys, 1.05);
    let events: Vec<(u64, u64, u64)> = (0..400_000u64)
        .map(|i| (zipf.next_value(&mut rng), i / 64, i))
        .collect();
    drive(&mut engine, &events, 8_192);

    assert!(
        engine.num_keys() > 40_000,
        "zipf(1.05): expected ~48k distinct keys, got {}",
        engine.num_keys()
    );
    assert!(
        engine.max_key_memory_words() <= cap,
        "hottest key {} words > deterministic cap {cap}",
        engine.max_key_memory_words()
    );
    assert!(engine.memory_words() <= engine.num_keys() * cap);
    // Registry scaffolding is bounded and reported separately from the
    // paper's model: ≤ 4 bucket + 3 slot words per key for u64 keys.
    assert!(engine.registry_overhead_words() <= engine.num_keys() * 7);
    assert_eq!(engine.sample_k(&0).expect("hot key nonempty").len(), k);
}

/// `ingest_parallel` takes `&self` (shards behind read/write locks), so
/// queries may run *during* ingestion. Regression pin: a reader thread
/// hammering `sample_k`/`num_keys` while the worker pool ingests must
/// never deadlock, panic, or observe a torn sample (wrong length), and
/// the final samples must equal the serial reference's.
#[test]
fn queries_run_concurrently_with_parallel_ingestion() {
    let template = "--window seq --n 40 --mode wr --k 4 --seed 55";
    let events = zipf_events(300, 24_000, 99);

    let mut reference = build_engine(template, 16, 1);
    drive(&mut reference, &events, 1024);

    let engine = build_engine(template, 16, 4);
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..2u64)
            .map(|r| {
                let (engine, done) = (&engine, &done);
                scope.spawn(move || {
                    let mut observed = 0usize;
                    while !done.load(std::sync::atomic::Ordering::Acquire) {
                        for key in 0..300u64 {
                            if let Some(s) = engine.sample_k(&(key.wrapping_add(r) % 300)) {
                                assert!(!s.is_empty() && s.len() <= 4, "torn sample");
                                observed += 1;
                            }
                        }
                        let _ = engine.num_keys();
                    }
                    observed
                })
            })
            .collect();
        for c in events.chunks(512) {
            engine.ingest_parallel(c);
        }
        done.store(true, std::sync::atomic::Ordering::Release);
        for reader in readers {
            assert!(reader.join().expect("reader survives") > 0);
        }
    });
    for key in reference.keys() {
        assert_eq!(
            engine.sample_k(&key),
            reference.sample_k(&key),
            "key {key} diverges from the serial reference"
        );
    }
}

/// The work-stealing determinism sweep: per-key samples are
/// byte-identical across thread counts {1, 2, 3, 8} × fleet backends
/// {erased, soa} × zipf skew {θ = 1.1, θ = 1.5}, fed in deliberately
/// uneven batch sizes so epochs carry wildly different unit counts.
/// Steals move *units* between workers, never events within a shard,
/// so the reference (threads = 1, same backend) must match bit for bit.
#[test]
fn samples_bit_identical_across_threads_backends_and_skew() {
    const UNEVEN: &[usize] = &[1, 7, 256, 31, 1024, 3, 129];
    let drive_uneven = |engine: &Engine, events: &[(u64, u64, u64)]| {
        let mut at = 0usize;
        let mut i = 0usize;
        while at < events.len() {
            let take = UNEVEN[i % UNEVEN.len()].min(events.len() - at);
            engine.ingest_parallel(&events[at..at + take]);
            at += take;
            i += 1;
        }
        engine.flush().expect("no worker panics");
    };
    let template = "--window seq --n 50 --k 4 --seed 61";
    for backend in [FleetBackend::Erased, FleetBackend::Soa] {
        for theta in [1.1f64, 1.5] {
            let mut rng = SmallRng::seed_from_u64(909);
            let mut zipf = ZipfGen::new(500, theta);
            let events: Vec<(u64, u64, u64)> = (0..20_000u64)
                .map(|i| (zipf.next_value(&mut rng), i / 32, i))
                .collect();
            let reference = build_backend(template, 64, 1, backend);
            drive_uneven(&reference, &events);
            let keys = reference.keys();
            for threads in [2usize, 3, 8] {
                let engine = build_backend(template, 64, threads, backend);
                drive_uneven(&engine, &events);
                assert_eq!(
                    engine.num_keys(),
                    keys.len(),
                    "{backend:?} θ={theta} threads={threads}: key census"
                );
                for key in &keys {
                    assert_eq!(
                        engine.sample_k(key),
                        reference.sample_k(key),
                        "{backend:?} θ={theta}: key {key} diverges at threads={threads}"
                    );
                }
                assert_eq!(engine.parallel_stats().violations, 0);
            }
        }
    }
}

/// Steal-heavy stress shape: 2000 tiny epochs over 64 shards with 8
/// workers, heavy zipf skew. Every epoch re-races all eight workers
/// over a fresh claim queue; the one-shard-one-worker-per-epoch claim
/// must hold on every one (the `violations` counter is asserted by the
/// workers themselves via the per-shard executing flags), the claim
/// accounting must balance, and the samples must equal the serial
/// reference's.
#[test]
fn steal_stress_holds_one_shard_one_worker() {
    let template = "--window seq --n 32 --k 3 --seed 77";
    let mut rng = SmallRng::seed_from_u64(1234);
    let mut zipf = ZipfGen::new(400, 1.5);
    let events: Vec<(u64, u64, u64)> = (0..32_000u64)
        .map(|i| (zipf.next_value(&mut rng), i / 16, i))
        .collect();
    let mut reference = build_engine(template, 64, 1);
    drive(&mut reference, &events, 16);

    let engine = build_engine(template, 64, 8);
    for c in events.chunks(16) {
        engine.ingest_parallel(c);
    }
    engine.flush().expect("no worker panics");
    let stats = engine.parallel_stats();
    assert_eq!(stats.threads, 8);
    assert_eq!(stats.epochs, 2_000, "one epoch per non-empty batch");
    assert_eq!(stats.violations, 0, "two workers entered one shard");
    assert!(stats.units >= stats.epochs, "every epoch carves ≥ 1 unit");
    assert!(stats.steals <= stats.units);
    let claimed: u64 = stats.workers.iter().map(|w| w.claimed).sum();
    assert_eq!(claimed, stats.units, "claim accounting balances");
    for key in reference.keys() {
        assert_eq!(
            engine.sample_k(&key),
            reference.sample_k(&key),
            "key {key} diverges from the serial reference under steal stress"
        );
    }
}

/// The PR-7 rescale contract, extended to the work-stealing pool:
/// resizing the worker pool mid-stream — up, down to serial, and back
/// up — never changes a single sample byte. Epochs are serialized and
/// seeds are key-derived, so thread count is invisible to the output;
/// `set_threads` reuses live workers where counts allow, and the
/// counters survive the rescale.
#[test]
fn mid_stream_thread_rescale_stays_bit_identical() {
    let template = "--window seq --n 40 --mode wor --k 4 --seed 91";
    let events = zipf_events(300, 18_000, 345);
    let mut reference = build_engine(template, 16, 1);
    drive(&mut reference, &events, 512);

    let mut engine = build_engine(template, 16, 2);
    // chunk index → new worker count, applied between batches.
    let schedule = [(6usize, 8usize), (12, 1), (18, 3), (24, 8)];
    for (i, c) in events.chunks(512).enumerate() {
        if let Some(&(_, t)) = schedule.iter().find(|&&(at, _)| at == i) {
            engine.set_threads(t);
        }
        engine.ingest_parallel(c);
    }
    engine.flush().expect("no worker panics");
    let stats = engine.parallel_stats();
    assert_eq!(stats.violations, 0);
    assert!(
        stats.units > 0,
        "pooled epochs ran on both sides of rescale"
    );
    for key in reference.keys() {
        assert_eq!(
            engine.sample_k(&key),
            reference.sample_k(&key),
            "key {key} diverges across mid-stream thread rescales"
        );
    }
}

fn committed_artifact() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_throughput.json");
    std::fs::read_to_string(path).expect("BENCH_throughput.json is committed")
}

fn field(body: &str, key: &str) -> f64 {
    let marker = format!("\"{key}\":");
    let at = body
        .find(&marker)
        .unwrap_or_else(|| panic!("{key} present"));
    let rest = &body[at + marker.len()..];
    let end = rest.find([',', '\n', '}']).expect("number terminated");
    rest[..end].trim().parse().expect("numeric field")
}

/// The committed artifact is schema v7 and holds the engine-redesign
/// acceptance bars: slab + parallel ingestion ≥ 2× the PR-3 baseline at
/// 100k keys (best thread count), the SoA fleet backend ≥ 1.5× the
/// v3 committed erased figure (sustained) plus ≥ 1× erased in the same
/// run, WAL-on ingest ≥ 0.7× WAL-off at 100k keys, end-to-end serving
/// ≥ 0.5× same-run direct ingest at 100k keys, and the work-stealing
/// scheduler bars — 8-thread overhead ≥ 0.9× serial at 1k and 100k
/// keys on any host, 4-thread efficiency ≥ 1.5× when the recorded
/// machine had more than one core (a single-core artifact cannot
/// witness speedup, only overhead). `bench_throughput` refuses to
/// write a sub-bar file; this refuses to let a hand-edited or stale
/// one past CI.
#[test]
fn committed_artifact_holds_parallel_acceptance_bar() {
    let body = committed_artifact();
    swsample_bench::json::validate(&body).expect("committed artifact parses");
    assert!(
        body.contains("\"schema\": \"swsample-bench-throughput/v7\""),
        "artifact is schema v7"
    );
    assert!(body.contains("\"parallel\": ["), "parallel section present");
    for counter in ["\"units\": ", "\"steals\": ", "\"imbalance\": "] {
        assert!(
            body.contains(counter),
            "parallel rows carry scheduler counter {counter}"
        );
    }
    assert!(body.contains("\"durable\": ["), "durable section present");
    assert!(body.contains("\"server\": ["), "server section present");
    assert!(
        body.contains("\"machine\": {"),
        "machine descriptor block present"
    );
    assert!(field(&body, "cores") >= 1.0, "machine core count recorded");
    let speedup = field(&body, "multi_100k_speedup");
    assert!(
        speedup >= 2.0,
        "committed multi_100k_speedup {speedup}x below the 2x acceptance bar"
    );
    let soa = field(&body, "multi_soa_100k_speedup");
    assert!(
        soa >= swsample_bench::throughput::MULTI_SOA_100K_GATE,
        "committed multi_soa_100k_speedup {soa}x below the acceptance bar"
    );
    let vs_erased = field(&body, "multi_soa_vs_erased_100k");
    assert!(
        vs_erased >= 1.0,
        "committed soa-vs-erased ratio {vs_erased}x: soa slower than erased"
    );
    let wal = field(&body, "durable_wal_overhead_100k");
    assert!(
        wal >= swsample_bench::throughput::DURABLE_WAL_100K_GATE,
        "committed durable_wal_overhead_100k {wal}x below the acceptance bar"
    );
    let e2e = field(&body, "server_e2e_100k_vs_direct");
    assert!(
        e2e >= swsample_bench::throughput::SERVER_E2E_100K_GATE,
        "committed server_e2e_100k_vs_direct {e2e}x below the acceptance bar"
    );
    for key in ["parallel_t8_overhead_1k", "parallel_t8_overhead_100k"] {
        let overhead = field(&body, key);
        assert!(
            overhead >= swsample_bench::throughput::PARALLEL_T8_OVERHEAD_GATE,
            "committed {key} {overhead}x below the acceptance bar"
        );
    }
    // The efficiency bar only means something when the measuring host
    // could actually run workers in parallel; `field` finds the machine
    // block's `cores` (it precedes the per-row annotations).
    if field(&body, "cores") > 1.0 {
        let eff = field(&body, "parallel_t4_efficiency_100k");
        assert!(
            eff >= swsample_bench::throughput::PARALLEL_T4_EFFICIENCY_GATE,
            "committed parallel_t4_efficiency_100k {eff}x below the acceptance bar \
             on a multi-core host"
        );
    }
    // Both backends appear as multi rows, erased first then soa.
    for backend in ["erased", "soa"] {
        assert!(
            body.contains(&format!("\"backend\": \"{backend}\"")),
            "{backend} backend rows present"
        );
    }
}

/// The priority_topk regression fix, pinned on the committed artifact:
/// at k = 64 the one-draw-per-element GL top-k sampler must not be
/// slower than full k-draw priority sampling at either window size.
#[test]
fn committed_artifact_priority_topk_not_slower_than_priority() {
    let body = committed_artifact();
    let rate = |sampler: &str, n: u64| -> f64 {
        let marker =
            format!("{{\"sampler\": \"{sampler}\", \"discipline\": \"ts\", \"k\": 64, \"n\": {n},");
        let at = body
            .find(&marker)
            .unwrap_or_else(|| panic!("row {sampler} k=64 n={n} present"));
        field(&body[at..], "elems_per_sec")
    };
    for n in [10_000u64, 100_000] {
        let topk = rate("priority_topk", n);
        let full = rate("priority", n);
        assert!(
            topk >= full,
            "priority_topk ({topk:.0}/s) slower than priority ({full:.0}/s) at k=64 n={n}"
        );
    }
}
