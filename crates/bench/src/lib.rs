//! Shared harness for the experiment binary and the Criterion benches.
//!
//! Provides workload drivers that run any [`WindowSampler`] over a
//! synthetic stream while recording its word-exact memory trajectory, plus
//! small table-formatting helpers so every experiment prints rows in one
//! consistent layout (recorded against expectations in `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swsample_core::{MemoryWords, WindowSampler};
use swsample_stats::Summary;

/// Memory trajectory statistics of one sampler run (in words).
#[derive(Debug, Clone)]
pub struct MemoryProfile {
    /// Mean footprint over the run.
    pub mean: f64,
    /// 99th percentile footprint.
    pub p99: f64,
    /// Worst-case footprint — the quantity the paper makes deterministic.
    pub max: f64,
}

impl MemoryProfile {
    fn from_trace(trace: &[f64]) -> Self {
        let s = Summary::of(trace);
        Self {
            mean: s.mean,
            p99: s.p99,
            max: s.max,
        }
    }
}

/// Drive a sequence-window sampler over `len` uniform arrivals, sampling
/// the memory footprint after every insert.
pub fn profile_seq<S>(sampler: &mut S, len: u64, seed: u64) -> MemoryProfile
where
    S: WindowSampler<u64> + MemoryWords,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut trace = Vec::with_capacity(len as usize);
    for _ in 0..len {
        sampler.insert(rng.gen_range(0..1_000_000));
        trace.push(sampler.memory_words() as f64);
    }
    MemoryProfile::from_trace(&trace)
}

/// Drive a timestamp-window sampler for `ticks` ticks with `per_tick`
/// arrivals each, profiling memory.
pub fn profile_ts<S>(sampler: &mut S, ticks: u64, per_tick: u64, seed: u64) -> MemoryProfile
where
    S: WindowSampler<u64> + MemoryWords,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut trace = Vec::with_capacity((ticks * per_tick) as usize);
    for tick in 0..ticks {
        sampler.advance_time(tick);
        for _ in 0..per_tick {
            sampler.insert(rng.gen_range(0..1_000_000));
            trace.push(sampler.memory_words() as f64);
        }
    }
    MemoryProfile::from_trace(&trace)
}

/// Drive a timestamp-window sampler over the Lemma 3.10 adversarial
/// schedule for window width `t0` (bursts capped at `cap`), profiling
/// memory through the critical region `tick ≤ 2·t0 + 4`.
pub fn profile_adversarial<S>(sampler: &mut S, t0: u64, cap: u64, seed: u64) -> MemoryProfile
where
    S: WindowSampler<u64> + MemoryWords,
{
    use swsample_stream::{AdversarialStream, UniformGen};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut gen = AdversarialStream::new(UniformGen::new(1 << 20), t0, cap);
    let mut trace = Vec::new();
    let mut now = 0;
    loop {
        let ev = gen.next_event(&mut rng);
        if ev.timestamp > 2 * t0 + 4 {
            break;
        }
        if ev.timestamp > now {
            now = ev.timestamp;
            sampler.advance_time(now);
        }
        sampler.insert(ev.value);
        trace.push(sampler.memory_words() as f64);
    }
    MemoryProfile::from_trace(&trace)
}

/// Print a table header: a title line, a `|`-separated header row, and a
/// dashed rule sized to it.
pub fn table_header(title: &str, columns: &[&str]) {
    println!();
    println!("### {title}");
    let head = columns.join(" | ");
    println!("| {head} |");
    let rule: Vec<String> = columns.iter().map(|c| "-".repeat(c.len().max(3))).collect();
    println!("| {} |", rule.join(" | "));
}

/// Print one table row.
pub fn table_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Format a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsample_core::seq::SeqSamplerWr;

    #[test]
    fn profile_seq_reports_bounded_memory() {
        let mut s = SeqSamplerWr::new(128, 4, SmallRng::seed_from_u64(1));
        let p = profile_seq(&mut s, 1000, 2);
        // Two samples of 3 words + 1 skip index per instance + 3 globals.
        assert!(p.max <= (4 * 7 + 3) as f64);
        assert!(p.mean <= p.p99 && p.p99 <= p.max);
    }

    #[test]
    fn profile_ts_runs() {
        use swsample_core::ts::TsSamplerWr;
        let mut s = TsSamplerWr::new(32, 2, SmallRng::seed_from_u64(3));
        let p = profile_ts(&mut s, 100, 4, 4);
        assert!(p.max > 0.0);
    }

    #[test]
    fn adversarial_profile_runs() {
        use swsample_core::ts::TsSamplerWr;
        let mut s = TsSamplerWr::new(4, 1, SmallRng::seed_from_u64(5));
        let p = profile_adversarial(&mut s, 4, 1 << 12, 6);
        assert!(p.max > 0.0);
    }
}

pub mod experiments;
pub mod json;
pub mod throughput;
