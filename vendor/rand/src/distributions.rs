//! Distributions: [`Standard`] for primitives and the uniform range
//! machinery backing `Rng::gen_range`.

use crate::RngCore;

/// A type that can produce values of `T` from an RNG.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a primitive: full range for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u64, usize, i64, isize);

// 32-bit-and-smaller types draw through next_u32 so Standard and the
// RngCore word source agree on which half of the 64-bit word they use.
macro_rules! standard_small_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u32() as $t
            }
        }
    )*};
}
standard_small_int!(u8, u16, u32, i8, i16, i32);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        let x: u128 = Standard.sample(rng);
        x as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 significant bits, uniform on [0, 1) — upstream's
        // "multiply-based" Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform range sampling (the subset of `rand::distributions::uniform`
/// that `gen_range` needs).
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that `Rng::gen_range` can sample from.
    pub trait SampleRange<T> {
        /// Sample one value uniformly from the range.
        ///
        /// # Panics
        /// Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Draw uniformly from `[0, span)` by bitmask rejection: exactly
    /// uniform for every `span`, with < 2 expected draws.
    fn below_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
        debug_assert!(span > 0);
        // Hot path: the samplers' exact Bernoulli ratios are u128-typed but
        // their denominators usually fit in 64 bits — one word per attempt.
        if span <= u64::MAX as u128 {
            return below_u64(rng, span as u64) as u128;
        }
        let mask = u128::MAX >> (span - 1).leading_zeros();
        loop {
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            let x = wide & mask;
            if x < span {
                return x;
            }
        }
    }

    fn below_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span == 1 {
            return 0;
        }
        let mask = u64::MAX >> (span - 1).leading_zeros();
        loop {
            let x = rng.next_u64() & mask;
            if x < span {
                return x;
            }
        }
    }

    macro_rules! range_uint {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    self.start + below_u64(rng, (self.end - self.start) as u64) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    match (hi - lo).checked_add(1) {
                        Some(span) => lo + below_u64(rng, span as u64) as $t,
                        // Full-width range: every word is valid.
                        None => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    range_uint!(u8, u16, u32, u64, usize);

    macro_rules! range_int {
        ($($t:ty => $u:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u);
                    (self.start as $u).wrapping_add(below_u64(rng, span as u64) as $u) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as $u).wrapping_sub(lo as $u);
                    match span.checked_add(1) {
                        Some(s) => (lo as $u).wrapping_add(below_u64(rng, s as u64) as $u) as $t,
                        None => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    impl SampleRange<u128> for Range<u128> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
            assert!(self.start < self.end, "gen_range: empty range");
            self.start + below_u128(rng, self.end - self.start)
        }
    }

    impl SampleRange<u128> for RangeInclusive<u128> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "gen_range: empty range");
            match (hi - lo).checked_add(1) {
                Some(span) => lo + below_u128(rng, span),
                None => ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128,
            }
        }
    }

    // Both float widths draw `$bits` significand bits from the top of one
    // 64-bit word (`$shift = 64 - $bits`).
    macro_rules! range_float {
        ($($t:ty, $bits:expr, $shift:expr);*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let unit =
                        (rng.next_u64() >> $shift) as $t * (1.0 / (1u64 << $bits) as $t);
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    range_float!(f64, 53, 11; f32, 24, 40);
}
