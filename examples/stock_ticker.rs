//! Stock-ticker analytics over a fixed-size window — the fixed-arrival-rate
//! use case from the paper's introduction ("sensors or stock market
//! measurements"), plus two §5 applications running on top of the sampler:
//! the self-join size `F₂` (a standard skew measure) and the empirical
//! entropy of the traded symbols, both over the last `n` trades.
//!
//! ```sh
//! cargo run --example stock_ticker
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample::apps::{EntropyEstimator, ExactWindow, MomentEstimator};
use swsample::core::MemoryWords;
use swsample::stream::{ValueGen, ZipfGen};

fn main() {
    let n = 8_192u64; // window: last 8192 trades
    let symbols = 500u64;

    // Symbols trade with Zipf skew that drifts over time: the window-local
    // statistics genuinely move, which is why sliding windows matter.
    let mut estimator_f2 = MomentEstimator::new(n, 2, 256, 3, SmallRng::seed_from_u64(1));
    let mut estimator_h = EntropyEstimator::new(n, 128, 3, SmallRng::seed_from_u64(2));
    let mut exact = ExactWindow::new(n as usize);
    let mut rng = SmallRng::seed_from_u64(3);

    println!("{symbols} symbols, window = last {n} trades");
    println!("F2 = self-join size (skew measure), H = symbol entropy\n");
    println!(
        "{:>8} {:>9} {:>14} {:>14} {:>9} {:>9}",
        "trades", "skew θ", "F2 est", "F2 exact", "H est", "H exact"
    );

    let mut trades = 0u64;
    for phase in 0..6 {
        // Market regime shifts: skew rises then falls.
        let theta = 0.4 + 0.3 * phase as f64;
        let mut gen = ZipfGen::new(symbols, theta);
        for _ in 0..2 * n {
            let sym = gen.next_value(&mut rng);
            estimator_f2.insert(sym);
            estimator_h.insert(sym);
            exact.insert(sym);
            trades += 1;
        }
        let f2 = estimator_f2.estimate().expect("window non-empty");
        let h = estimator_h.estimate().expect("window non-empty");
        println!(
            "{:>8} {:>9.2} {:>14.0} {:>14.0} {:>9.3} {:>9.3}",
            trades,
            theta,
            f2,
            exact.moment(2),
            h,
            exact.entropy()
        );
    }
    println!(
        "\nestimator memory: {} + {} words; exact tracking uses {} words",
        estimator_f2.memory_words(),
        estimator_h.memory_words(),
        exact.len() * 2 + exact.distinct() * 2,
    );
    println!("(the estimators track the regime shifts with a small, fixed footprint)");
}
