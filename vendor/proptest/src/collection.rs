//! Collection strategies (`proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<T>` with element strategy `element` and a length drawn
/// uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
