//! The CLI subcommands, written against generic readers/writers so the
//! tests can drive them end-to-end in memory.
//!
//! Sampler construction is **spec-driven**: every sampling subcommand
//! assembles a [`SamplerSpec`] (the `run` and `multi` subcommands expose
//! its flag surface directly; `seq`/`ts` are legacy shorthands that fill
//! one in) and builds it through the full factory
//! `swsample_baselines::spec::build`, then ingests through the
//! object-safe [`ErasedWindowSampler`] interface — one code path for
//! every algorithm and window discipline in the workspace.
//!
//! Input formats:
//! * `seq` / `run` (seq or stream windows) — one value per line.
//! * `ts` / `run` (ts windows) — `<timestamp> <value>` per line,
//!   non-decreasing timestamps.
//! * `agg` — `<timestamp> <numeric value>` per line.
//! * `gen` — no input; emits a synthetic workload for piping.
//! * `multi` — no input; drives a self-generated zipf-keyed workload
//!   through a [`MultiStreamEngine`] fleet.

use crate::args::{ArgError, Args};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{BufRead, Write};
use swsample_core::fault::FaultSchedule;
use swsample_core::spec::{Algorithm, FleetBackend, SamplerSpec, WindowKind};
use swsample_core::{ErasedWindowSampler, MemoryWords};
use swsample_durable::{DurableEngine, DurableOptions, FailPlan, ResumeOverrides};
use swsample_query::TsAggregator;
use swsample_server::{loadgen, LoadgenConfig, Server, ServerConfig};
use swsample_stream::{
    BurstyArrivals, MultiStreamEngine, SteadyArrivals, UniformGen, ValueGen, ZipfGen,
};

/// Run one subcommand against the given input/output. Returns an error
/// message suitable for the user.
pub fn run(args: &Args, input: &mut dyn BufRead, out: &mut dyn Write) -> Result<(), String> {
    let res = match args.command.as_str() {
        "run" => cmd_run(args, input, out),
        "seq" => cmd_legacy(args, input, out, false),
        "ts" => cmd_legacy(args, input, out, true),
        "multi" => cmd_multi(args, out),
        "serve" => cmd_serve(args),
        "loadgen" => cmd_loadgen(args, out),
        "agg" => cmd_agg(args, input, out),
        "gen" => cmd_gen(args, out),
        "help" | "--help" => write_help(out).map_err(|e| ArgError(e.to_string())),
        other => Err(ArgError(format!(
            "unknown subcommand `{other}` (try `help`)"
        ))),
    };
    res.map_err(|e| e.to_string())
}

/// Usage text.
pub fn write_help(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "swsample — uniform random sampling from sliding windows\n\
         (Braverman–Ostrovsky–Zaniolo, PODS 2009)\n\n\
         USAGE: swsample <COMMAND> [--flag value]...\n\n\
         COMMANDS\n\
           run   sample stdin through any sampler spec\n\
                 --window seq|ts|stream (--n N | --w T0) [--mode wr|wor]\n\
                 [--algo paper|reservoir-l|chain|priority|window-buffer]\n\
                 [--k K] [--seed S] [--report-every M] [--batch-size B]\n\
                 (ts windows read `<ts> <value>` lines; others one value/line)\n\
           multi run a keyed fleet: one window per key, zipf key skew\n\
                 --keys K --count N + the spec flags of `run`\n\
                 [--theta T] [--shards S] [--threads W] [--show H]\n\
                 [--workload-seed S] [--backend auto|erased|soa]\n\
                 (--threads > 1 ingests via work-stealing over shard-run\n\
                 units; --threads 0 uses every core (resolved count on\n\
                 stderr); output is bit-identical for every thread count\n\
                 and backend; auto picks soa for homogeneous\n\
                 paper/reservoir-l fleets)\n\
                 durability: [--wal DIR] [--snapshot-every B]\n\
                 [--segment-bytes N] [--resume]  (WAL + snapshots; resume\n\
                 recovers and continues, stdout byte-identical to an\n\
                 uninterrupted run; SWSAMPLE_FAILPOINT=kill-after-appends=N\n\
                 [,torn-tail=B][,corrupt-snapshot-byte=O][,disk-full-after=N]\n\
                 injects crashes, exit code 42;\n\
                 shutdown-after-appends=N exits 43 after a graceful\n\
                 drain + final snapshot; the run always ends with a\n\
                 final snapshot so --resume restarts instantly)\n\
                 live rescale: [--rescale-after B]\n\
                 [--rescale-shards S] [--rescale-threads W]\n\
           serve run the fleet as a TCP server (framed binary protocol)\n\
                 [--addr HOST:PORT] + the spec flags of `run`\n\
                 [--shards S] [--threads W] (0 = every core)\n\
                 [--backend auto|erased|soa]\n\
                 [--wal DIR] [--snapshot-every B] [--segment-bytes N]\n\
                 [--queue-max-events N] [--ring-capacity N] [--tick-ms T]\n\
                 [--drain-delay-ms D]\n\
                 (first stderr line is `# listening on HOST:PORT`; a\n\
                 client SHUTDOWN frame drains, snapshots, and exits;\n\
                 ingest past the queue bound answers BUSY, not buffering)\n\
                 hardening: [--read-deadline-ms T] [--write-deadline-ms T]\n\
                 [--idle-timeout-ms T] [--max-conns N]\n\
                 [--slow-consumer-budget D]  (0 disables a knob; past the\n\
                 conn cap new connections get a typed OVERLOAD reject)\n\
                 chaos: [--faults SPEC] or SWSAMPLE_FAULTS, e.g.\n\
                 seed=42,drop-rx=1/61,stall-tx=1/37:5ms,flip-tx=1/71,\n\
                 wal-append=1/23 — seeded, deterministic, replayable\n\
           loadgen drive a `serve` instance with the `multi` workload\n\
                 --addr HOST:PORT [--connections C] --keys K --count N\n\
                 [--theta T] [--workload-seed S] [--batch-size B]\n\
                 [--verify] [--render-multi] [--show H] [--shutdown-server]\n\
                 [--retry-base-us B] [--retry-cap-us C]\n\
                 [--retry-deadline-ms D] [--io-timeout-ms T]\n\
                 (--verify replays offline and asserts byte-identical\n\
                 answers; --render-multi reproduces `multi` stdout;\n\
                 BUSY and dead connections retry under bounded\n\
                 exponential backoff, reconnects dedupe by session)\n\
           seq   shorthand: sample the last N lines of stdin\n\
                 --window N [--k K] [--wor] [--report-every M] [--seed S]\n\
                 [--batch-size B]\n\
           ts    shorthand: sample a timestamped stream (`<ts> <value>` lines)\n\
                 --window T0 [--k K] [--wor] [--report-every M] [--seed S]\n\
                 [--batch-size B]\n\
           agg   approximate aggregates over a timestamped numeric stream\n\
                 --window T0 [--k K] [--epsilon E] [--report-every M] [--seed S]\n\
           gen   emit a synthetic workload (pipe into the other commands)\n\
                 --kind uniform|zipf|bursty --count N [--domain D] [--theta T]\n\
                 [--max-burst B] [--seed S]\n\
           help  this text\n\n\
         Sampling commands ingest stdin in batches of --batch-size lines\n\
         (default 512) and report end-of-run throughput on stderr."
    )
}

/// End-of-run ingestion throughput, reported on stderr so it never mixes
/// with the sample stream on stdout.
fn report_throughput(count: u64, elapsed: std::time::Duration) {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        eprintln!(
            "# throughput: {count} elements in {secs:.3}s ({:.0} elems/s)",
            count as f64 / secs
        );
    } else {
        eprintln!("# throughput: {count} elements in <1ms");
    }
}

/// Parse and validate the `--batch-size` flag (chunk length for batched
/// stdin ingestion).
fn batch_size(args: &Args) -> Result<usize, ArgError> {
    let b = args.get_usize("batch-size", 512)?;
    if b == 0 {
        return Err(ArgError("--batch-size must be at least 1".into()));
    }
    Ok(b)
}

/// Assemble a [`SamplerSpec`] from the spec flags present on the command
/// line, parsed through the one canonical grammar in `swsample-core`.
fn spec_from_flags(args: &Args) -> Result<SamplerSpec, ArgError> {
    let mut s = String::new();
    for name in ["window", "n", "w", "mode", "algo", "k", "seed"] {
        if let Some(v) = args.get_str(name) {
            // The grammar is whitespace-separated; a value containing
            // whitespace would silently re-tokenize into extra flags.
            if v.chars().any(char::is_whitespace) {
                return Err(ArgError(format!(
                    "--{name}: value `{v}` contains whitespace"
                )));
            }
            s.push_str("--");
            s.push_str(name);
            s.push(' ');
            s.push_str(v);
            s.push(' ');
        }
    }
    s.parse()
        .map_err(|e: swsample_core::SpecError| ArgError(e.to_string()))
}

/// Build a spec through the full factory (baseline algorithms included).
fn build_sampler<T: Clone + Send + Sync + 'static>(
    spec: &SamplerSpec,
) -> Result<Box<dyn ErasedWindowSampler<T>>, ArgError> {
    swsample_baselines::spec::build(spec).map_err(|e| ArgError(e.to_string()))
}

/// How the memory line qualifies the reported figure.
fn memory_note(spec: &SamplerSpec) -> &'static str {
    match (spec.algorithm, spec.window) {
        (Algorithm::Paper, WindowKind::Timestamp(_)) => "deterministic O(k log n)",
        (Algorithm::Paper, _) | (Algorithm::ReservoirL, _) => "deterministic",
        (Algorithm::WindowBuffer, _) => "exact O(n) buffer",
        (Algorithm::Chain, _) | (Algorithm::Priority, _) => "randomized bound",
    }
}

/// `run` — the full spec surface over stdin.
fn cmd_run(args: &Args, input: &mut dyn BufRead, out: &mut dyn Write) -> Result<(), ArgError> {
    let spec = spec_from_flags(args)?;
    drive_stream(&spec, args, input, out)
}

/// `seq`/`ts` — legacy shorthands: numeric `--window`, `--wor`, paper
/// algorithm. They fill in a spec and share `run`'s driver.
fn cmd_legacy(
    args: &Args,
    input: &mut dyn BufRead,
    out: &mut dyn Write,
    timestamped: bool,
) -> Result<(), ArgError> {
    let window: u64 = args.require("window")?;
    let k = args.get_usize("k", 1)?;
    let seed = args.get_u64("seed", 42)?;
    let replacement = if args.get_flag("wor") {
        swsample_core::spec::Replacement::Without
    } else {
        swsample_core::spec::Replacement::With
    };
    let spec = if timestamped {
        SamplerSpec::ts(window, replacement, k, seed)
    } else {
        SamplerSpec::seq(window, replacement, k, seed)
    };
    drive_stream(&spec, args, input, out)
}

/// The one ingestion loop behind `run`, `seq`, and `ts`: chunked reads
/// through the erased batch API, report-cadence-preserving flushes.
fn drive_stream(
    spec: &SamplerSpec,
    args: &Args,
    input: &mut dyn BufRead,
    out: &mut dyn Write,
) -> Result<(), ArgError> {
    let timestamped = matches!(spec.window, WindowKind::Timestamp(_));
    let every = args.get_u64("report-every", 0)?;
    let batch = batch_size(args)?;
    let io_err = |e: std::io::Error| ArgError(format!("io error: {e}"));

    let mut sampler = build_sampler::<String>(spec)?;
    let start = std::time::Instant::now();
    // Chunked ingestion: lines accumulate into `buf` and enter the
    // sampler through the batch fast paths. Chunks flush at
    // `--batch-size`, at every report boundary (so `--report-every`
    // cadence is unchanged from per-line ingestion) and, for timestamp
    // windows, on a timestamp change.
    let mut buf: Vec<String> = Vec::with_capacity(batch);
    let mut buf_ts = 0u64;
    let mut count = 0u64;
    for line in input.lines() {
        let line = line.map_err(io_err)?;
        if line.trim().is_empty() {
            continue;
        }
        let (ts, value) = if timestamped {
            let (ts, rest) = split_timestamped(&line)?;
            (ts, rest.to_string())
        } else {
            (0, line)
        };
        if ts != buf_ts && !buf.is_empty() {
            sampler.advance_and_insert(buf_ts, &buf);
            buf.clear();
        }
        buf_ts = ts;
        buf.push(value);
        count += 1;
        let at_report = every > 0 && count.is_multiple_of(every);
        if buf.len() >= batch || at_report {
            sampler.advance_and_insert(buf_ts, &buf);
            buf.clear();
            if at_report {
                report_samples(out, count, sampler.as_mut(), timestamped).map_err(io_err)?;
            }
        }
    }
    if count == 0 {
        return Err(ArgError("no input".into()));
    }
    if !buf.is_empty() {
        sampler.advance_and_insert(buf_ts, &buf);
    }
    report_throughput(count, start.elapsed());
    report_samples(out, count, sampler.as_mut(), timestamped).map_err(io_err)?;
    writeln!(
        out,
        "# memory: {} words ({})",
        sampler.memory_words(),
        memory_note(spec)
    )
    .map_err(io_err)?;
    Ok(())
}

/// Render one sample according to the window discipline.
fn render_sample<T: std::fmt::Display>(s: &swsample_core::Sample<T>, timestamped: bool) -> String {
    if timestamped {
        format!("{}@t{}", s.value(), s.timestamp())
    } else {
        format!("{}@{}", s.value(), s.index())
    }
}

fn report_samples(
    out: &mut dyn Write,
    count: u64,
    sampler: &mut dyn ErasedWindowSampler<String>,
    timestamped: bool,
) -> std::io::Result<()> {
    match sampler.sample_k() {
        Some(samples) => {
            let rendered: Vec<String> = samples
                .iter()
                .map(|s| render_sample(s, timestamped))
                .collect();
            writeln!(out, "{count}\t{}", rendered.join(" "))
        }
        None if timestamped => writeln!(out, "{count}\t(window empty)"),
        None => Ok(()),
    }
}

/// Parse a `<ts> <rest>` line.
fn split_timestamped(line: &str) -> Result<(u64, &str), ArgError> {
    let mut parts = line.splitn(2, char::is_whitespace);
    let ts: u64 = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ArgError(format!("bad timestamp in line `{line}`")))?;
    let rest = parts.next().unwrap_or("").trim();
    if rest.is_empty() {
        return Err(ArgError(format!("missing value in line `{line}`")));
    }
    Ok((ts, rest))
}

/// The fleet behind `multi`: plain in-memory, or wrapped in the
/// durability layer (`--wal DIR`) where every ingest batch is logged
/// before it is applied.
enum MultiFleet {
    Plain(MultiStreamEngine<u64, u64>),
    Durable(Box<DurableEngine<u64, u64>>),
}

impl MultiFleet {
    fn engine(&self) -> &MultiStreamEngine<u64, u64> {
        match self {
            MultiFleet::Plain(e) => e,
            MultiFleet::Durable(d) => d.engine(),
        }
    }

    fn ingest(&mut self, chunk: &[(u64, u64, u64)]) -> Result<(), ArgError> {
        match self {
            MultiFleet::Plain(e) => {
                e.ingest_parallel(chunk);
                Ok(())
            }
            MultiFleet::Durable(d) => d
                .ingest(chunk)
                .map(|_| ())
                .map_err(|e| ArgError(e.to_string())),
        }
    }

    fn set_shards(&mut self, shards: usize) -> Result<(), ArgError> {
        match self {
            MultiFleet::Plain(e) => e.set_shards(shards).map_err(|e| ArgError(e.to_string())),
            MultiFleet::Durable(d) => d.set_shards(shards).map_err(|e| ArgError(e.to_string())),
        }
    }

    fn set_threads(&mut self, threads: usize) {
        match self {
            MultiFleet::Plain(e) => e.set_threads(threads),
            MultiFleet::Durable(d) => d.set_threads(threads),
        }
    }

    /// Graceful shutdown: fsync the WAL and write a final snapshot
    /// covering everything ingested, so a later `--resume` (or any
    /// other reopen) restores without replaying the log (no-op for
    /// plain fleets). Stronger than a bare `sync` — the old end-of-run
    /// behavior — and what the `shutdown-after-appends` failpoint
    /// exercises mid-stream.
    fn close(&mut self) -> Result<(), ArgError> {
        match self {
            // Plain fleets still owe a flush: the work-stealing pipeline
            // may have an epoch in flight, and a deferred sampler panic
            // must not be silently dropped at end-of-stream.
            MultiFleet::Plain(e) => e.flush().map_err(|e| ArgError(e.to_string())),
            MultiFleet::Durable(d) => d.close().map(|_| ()).map_err(|e| ArgError(e.to_string())),
        }
    }
}

/// Resolve the `--threads` flag: `0` is the "use every core" sentinel,
/// mapping to [`std::thread::available_parallelism`] (reported on
/// stderr so runs are attributable); any other value passes through.
fn resolve_threads(threads: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    let resolved = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("# threads: 0 resolved to {resolved} (available parallelism)");
    resolved
}

/// `multi` — a sharded fleet of per-key windows over a self-generated
/// zipf-keyed workload: the serving shape (one independent window per
/// user) at CLI scale.
///
/// With `--wal DIR` the fleet is durable: batches are written ahead to a
/// segment log, `--snapshot-every B` adds periodic snapshots, and
/// `--resume` recovers from the directory and continues the regenerated
/// workload where the log ends — stdout is byte-identical to an
/// uninterrupted run. `SWSAMPLE_FAILPOINT` injects crashes for testing.
fn cmd_multi(args: &Args, out: &mut dyn Write) -> Result<(), ArgError> {
    let keys: u64 = args.require("keys")?;
    if keys == 0 {
        return Err(ArgError("--keys must be at least 1".into()));
    }
    // The zipf inverse-CDF table is O(keys); engine memory is O(keys
    // touched). Bound the table so absurd domains fail fast, not in the
    // allocator.
    const MAX_KEYS: u64 = 10_000_000;
    if keys > MAX_KEYS {
        return Err(ArgError(format!("--keys: at most {MAX_KEYS} supported")));
    }
    let count: u64 = args.require("count")?;
    let theta = args.get_f64("theta", 1.1)?;
    if !(theta.is_finite() && theta > 0.0) {
        return Err(ArgError(format!(
            "--theta: expected a positive number, got `{theta}`"
        )));
    }
    let shards = args.get_usize("shards", 16)?;
    let threads = resolve_threads(args.get_usize("threads", 1)?);
    let show = args.get_usize("show", 3)?;
    let wseed = args.get_u64("workload-seed", 1)?;
    let batch = batch_size(args)?;
    let backend: FleetBackend = match args.get_str("backend") {
        Some(v) => v
            .parse()
            .map_err(|e: swsample_core::SpecError| ArgError(e.to_string()))?,
        None => FleetBackend::Auto,
    };
    let io_err = |e: std::io::Error| ArgError(format!("io error: {e}"));

    // Durability flags (--wal switches the fleet onto the WAL-backed
    // engine) and the mid-stream rescale schedule.
    let wal_dir = args.get_str("wal").map(std::path::PathBuf::from);
    let resume = args.get_flag("resume");
    let snapshot_every = args.get_u64("snapshot-every", 0)?;
    let segment_bytes = args.get_u64("segment-bytes", 4 << 20)?;
    if resume && wal_dir.is_none() {
        return Err(ArgError("--resume requires --wal DIR".into()));
    }
    let fail = FailPlan::from_env().map_err(ArgError)?;
    if !fail.is_empty() && wal_dir.is_none() {
        return Err(ArgError(
            "SWSAMPLE_FAILPOINT is set but --wal is not (failpoints drive the durable engine)"
                .into(),
        ));
    }
    // Seeded transient faults (`wal-append`/`wal-fsync`) compose with
    // the hard failpoints above; network sites are inert here.
    let faults = FaultSchedule::from_env().map_err(ArgError)?;
    let rescale_after = args.get_u64("rescale-after", 0)?;
    let rescale_shards = args.get_usize("rescale-shards", 0)?;
    let rescale_threads = args.get_usize("rescale-threads", 0)?;
    if rescale_after > 0 && rescale_shards == 0 && rescale_threads == 0 {
        return Err(ArgError(
            "--rescale-after needs --rescale-shards and/or --rescale-threads".into(),
        ));
    }

    let spec = spec_from_flags(args)?;
    let timestamped = matches!(spec.window, WindowKind::Timestamp(_));
    // `done` = ingest batches already covered by a recovered WAL: the
    // workload is regenerated from scratch (it is deterministic in
    // --workload-seed), traffic is re-counted for every event, but the
    // first `done` batches are not re-ingested.
    let (mut fleet, done) = match &wal_dir {
        None => {
            let engine = MultiStreamEngine::with_backend(
                spec,
                shards,
                swsample_baselines::spec::build::<u64>,
                threads,
                backend,
            )
            .map_err(|e| ArgError(e.to_string()))?;
            (MultiFleet::Plain(engine), 0u64)
        }
        Some(dir) => {
            let opts = DurableOptions {
                segment_bytes: segment_bytes.max(1),
                snapshot_every: (snapshot_every > 0).then_some(snapshot_every),
                fail,
                faults: faults.clone(),
                ..DurableOptions::default()
            };
            if resume {
                // Explicit flags override the recorded config — the
                // rescale-on-resume path. Samples are unaffected.
                let overrides = ResumeOverrides {
                    shards: args.get_str("shards").is_some().then_some(shards),
                    threads: args.get_str("threads").is_some().then_some(threads),
                    backend: match backend {
                        FleetBackend::Auto => None,
                        explicit => Some(explicit),
                    },
                };
                let durable = DurableEngine::open_with(dir, opts, overrides)
                    .map_err(|e| ArgError(e.to_string()))?;
                let done = durable.next_seq();
                (MultiFleet::Durable(Box::new(durable)), done)
            } else {
                let durable = DurableEngine::create(dir, spec, shards, threads, backend, opts)
                    .map_err(|e| ArgError(e.to_string()))?;
                (MultiFleet::Durable(Box::new(durable)), 0u64)
            }
        }
    };
    // Stderr, like the throughput line: diagnostics never mix with the
    // sample stream (stdout is bit-identical across backends anyway).
    eprintln!("# backend: {}", fleet.engine().backend());
    if done > 0 {
        eprintln!("# resume: {done} batches recovered, re-ingesting from there");
    }

    // Zipf-skewed keys, values = stream index, 64 arrivals per tick —
    // deterministic given --workload-seed.
    let mut rng = SmallRng::seed_from_u64(wseed);
    let mut zipf = ZipfGen::new(keys, theta);
    // Traffic counts sized by keys *touched*, matching the engine's lazy
    // materialization, not by the key domain.
    let mut traffic: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut chunk: Vec<(u64, u64, u64)> = Vec::with_capacity(batch);
    let mut chunk_index = 0u64;
    let start = std::time::Instant::now();
    for i in 0..count {
        let key = zipf.next_value(&mut rng);
        *traffic.entry(key).or_insert(0) += 1;
        chunk.push((key, i / 64, i));
        if chunk.len() >= batch {
            if chunk_index >= done {
                fleet.ingest(&chunk)?;
            }
            chunk_index += 1;
            chunk.clear();
            if rescale_after > 0 && chunk_index == rescale_after {
                if rescale_shards > 0 {
                    fleet.set_shards(rescale_shards)?;
                }
                if rescale_threads > 0 {
                    fleet.set_threads(rescale_threads);
                }
                eprintln!(
                    "# rescale: {} shards, {} threads after batch {chunk_index}",
                    fleet.engine().num_shards(),
                    fleet.engine().num_threads()
                );
            }
        }
    }
    if !chunk.is_empty() && chunk_index >= done {
        fleet.ingest(&chunk)?;
    }
    fleet.close()?;
    report_throughput(count, start.elapsed());
    // Scheduler observability (stderr, like `# backend:`): epochs/units
    // drained, steal traffic, and busy-time imbalance across workers.
    // All zeros at threads=1 (the inline path publishes no epochs).
    if fleet.engine().num_threads() > 1 {
        let stats = fleet.engine().parallel_stats();
        eprintln!(
            "# parallel: threads={} epochs={} units={} steals={} violations={} imbalance={:.2}",
            stats.threads,
            stats.epochs,
            stats.units,
            stats.steals,
            stats.violations,
            stats.imbalance()
        );
    }

    // The hottest keys' current samples (deterministic order: traffic
    // descending, key ascending as the tiebreak).
    let mut by_traffic: Vec<(u64, u64)> = traffic.iter().map(|(&k, &c)| (k, c)).collect();
    by_traffic.sort_unstable_by_key(|&(key, cnt)| (std::cmp::Reverse(cnt), key));
    let engine = fleet.engine();
    for &(key, cnt) in by_traffic.iter().take(show) {
        let rendered = match engine.sample_k(&key) {
            Some(samples) => samples
                .iter()
                .map(|s| render_sample(s, timestamped))
                .collect::<Vec<_>>()
                .join(" "),
            None => "(window empty)".into(),
        };
        writeln!(out, "key {key}\t{cnt} arrivals\t{rendered}").map_err(io_err)?;
    }
    writeln!(
        out,
        "# keys: {}/{keys} materialized across {} shards",
        engine.num_keys(),
        engine.num_shards()
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "# memory: fleet {} words, max per key {} words ({})",
        engine.memory_words(),
        engine.max_key_memory_words(),
        memory_note(engine.template())
    )
    .map_err(io_err)?;
    Ok(())
}

/// `serve` — the fleet behind a TCP listener speaking the framed binary
/// protocol: batched ingest with bounded-queue backpressure, queries,
/// standing subscriptions, stats.
///
/// The first stderr line is `# listening on HOST:PORT` (with the real
/// port when `--addr` asked for :0), so scripts can parse where to
/// connect. The process runs until a client sends `SHUTDOWN`, then
/// drains the ingest queue, fsyncs + snapshots the WAL if one is
/// configured, prints the metrics line, and exits 0.
fn cmd_serve(args: &Args) -> Result<(), ArgError> {
    let mut cfg = ServerConfig::new(spec_from_flags(args)?);
    if let Some(addr) = args.get_str("addr") {
        cfg.addr = addr.to_string();
    }
    cfg.shards = args.get_usize("shards", cfg.shards)?;
    cfg.threads = resolve_threads(args.get_usize("threads", cfg.threads)?);
    if let Some(v) = args.get_str("backend") {
        cfg.backend = v
            .parse()
            .map_err(|e: swsample_core::SpecError| ArgError(e.to_string()))?;
    }
    cfg.wal_dir = args.get_str("wal").map(std::path::PathBuf::from);
    let snapshot_every = args.get_u64("snapshot-every", 0)?;
    cfg.snapshot_every = (snapshot_every > 0).then_some(snapshot_every);
    cfg.segment_bytes = args.get_u64("segment-bytes", cfg.segment_bytes)?.max(1);
    cfg.queue_max_events = args.get_usize("queue-max-events", cfg.queue_max_events)?;
    if cfg.queue_max_events == 0 {
        return Err(ArgError("--queue-max-events must be at least 1".into()));
    }
    cfg.ring_capacity = args.get_usize("ring-capacity", cfg.ring_capacity)?.max(1);
    cfg.tick = std::time::Duration::from_millis(args.get_u64("tick-ms", 100)?.max(1));
    cfg.drain_delay = std::time::Duration::from_millis(args.get_u64("drain-delay-ms", 0)?);

    // Hardening knobs: 0 disables a deadline/budget entirely.
    let ms = |v: u64| std::time::Duration::from_millis(v);
    cfg.read_deadline = ms(args.get_u64("read-deadline-ms", cfg.read_deadline.as_millis() as u64)?);
    cfg.write_deadline =
        ms(args.get_u64("write-deadline-ms", cfg.write_deadline.as_millis() as u64)?);
    cfg.idle_timeout = ms(args.get_u64("idle-timeout-ms", cfg.idle_timeout.as_millis() as u64)?);
    cfg.max_conns = args.get_usize("max-conns", cfg.max_conns)?;
    if cfg.max_conns == 0 {
        return Err(ArgError("--max-conns must be at least 1".into()));
    }
    cfg.slow_consumer_budget = args.get_u64("slow-consumer-budget", cfg.slow_consumer_budget)?;
    // Chaos: --faults SPEC wins over the SWSAMPLE_FAULTS environment
    // variable; both parse the same seeded-schedule grammar.
    cfg.faults = match args.get_str("faults") {
        Some(spec) => spec.parse().map_err(ArgError)?,
        None => FaultSchedule::from_env().map_err(ArgError)?,
    };
    if !cfg.faults.is_empty() {
        eprintln!("# faults: {}", cfg.faults);
    }

    let server = Server::start(cfg).map_err(|e| ArgError(format!("serve: {e}")))?;
    eprintln!("# listening on {}", server.local_addr());
    // Condvar-backed wait: wakes immediately on SHUTDOWN instead of
    // polling on a fixed interval.
    while !server.wait_shutdown_requested(std::time::Duration::from_secs(3600)) {}
    // Drains, snapshots, joins every thread, prints the metrics line.
    server.shutdown();
    Ok(())
}

/// `loadgen` — drive a `serve` instance with `multi`'s deterministic
/// zipf workload over N concurrent connections, reporting end-to-end
/// throughput and reply-latency percentiles on stderr.
fn cmd_loadgen(args: &Args, out: &mut dyn Write) -> Result<(), ArgError> {
    let addr: String = args.require("addr")?;
    let mut cfg = LoadgenConfig::new(addr);
    cfg.connections = args.get_usize("connections", 1)?.max(1);
    cfg.keys = args.require("keys")?;
    if cfg.keys == 0 {
        return Err(ArgError("--keys must be at least 1".into()));
    }
    cfg.count = args.require("count")?;
    cfg.theta = args.get_f64("theta", 1.1)?;
    if !(cfg.theta.is_finite() && cfg.theta > 0.0) {
        return Err(ArgError(format!(
            "--theta: expected a positive number, got `{}`",
            cfg.theta
        )));
    }
    cfg.workload_seed = args.get_u64("workload-seed", 1)?;
    cfg.batch = batch_size(args)?;
    cfg.verify = args.get_flag("verify");
    cfg.render_multi = args.get_flag("render-multi");
    cfg.show = args.get_usize("show", 3)?;
    cfg.shutdown_server = args.get_flag("shutdown-server");
    let us = |v: u64| std::time::Duration::from_micros(v);
    cfg.retry_base = us(args.get_u64("retry-base-us", cfg.retry_base.as_micros() as u64)?);
    cfg.retry_cap = us(args.get_u64("retry-cap-us", cfg.retry_cap.as_micros() as u64)?);
    cfg.retry_deadline = std::time::Duration::from_millis(
        args.get_u64("retry-deadline-ms", cfg.retry_deadline.as_millis() as u64)?,
    );
    cfg.io_timeout = std::time::Duration::from_millis(
        args.get_u64("io-timeout-ms", cfg.io_timeout.as_millis() as u64)?,
    );

    let report = loadgen::run(&cfg, out).map_err(|e| ArgError(format!("loadgen: {e}")))?;
    eprintln!(
        "# loadgen: {} events over {} connections in {:.3}s ({:.0} elems/s), \
         p50 {}us p99 {}us, {} busy retries, {} reconnects, {} keys verified",
        report.events_sent,
        cfg.connections,
        report.seconds,
        report.elems_per_sec,
        report.p50_us,
        report.p99_us,
        report.busy_retries,
        report.reconnects,
        report.verified_keys
    );
    Ok(())
}

fn cmd_agg(args: &Args, input: &mut dyn BufRead, out: &mut dyn Write) -> Result<(), ArgError> {
    let window: u64 = args.require("window")?;
    let k = args.get_usize("k", 64)?;
    let epsilon = args.get_f64("epsilon", 0.05)?;
    let every = args.get_u64("report-every", 0)?;
    let seed = args.get_u64("seed", 42)?;
    let io_err = |e: std::io::Error| ArgError(format!("io error: {e}"));

    let mut agg = TsAggregator::new(window, k, epsilon, SmallRng::seed_from_u64(seed));
    let mut count = 0u64;
    for line in input.lines() {
        let line = line.map_err(io_err)?;
        if line.trim().is_empty() {
            continue;
        }
        let (ts, rest) = split_timestamped(&line)?;
        let value: u64 = rest
            .parse()
            .map_err(|_| ArgError(format!("bad numeric value `{rest}`")))?;
        agg.advance_time(ts);
        agg.insert(value);
        count += 1;
        if every > 0 && count.is_multiple_of(every) {
            report_agg(out, count, &mut agg).map_err(io_err)?;
        }
    }
    if count == 0 {
        return Err(ArgError("no input".into()));
    }
    report_agg(out, count, &mut agg).map_err(io_err)?;
    writeln!(out, "# memory: {} words", agg.memory_words()).map_err(io_err)?;
    Ok(())
}

fn report_agg(out: &mut dyn Write, count: u64, agg: &mut TsAggregator) -> std::io::Result<()> {
    match (agg.estimate(), agg.quantile(0.5), agg.quantile(0.99)) {
        (Some(est), Some(p50), Some(p99)) => writeln!(
            out,
            "{count}\tcount~{:.0}\tmean~{:.2}\tsum~{:.0}\tp50~{p50}\tp99~{p99}",
            est.count, est.mean, est.sum
        ),
        _ => writeln!(out, "{count}\t(window empty)"),
    }
}

fn cmd_gen(args: &Args, out: &mut dyn Write) -> Result<(), ArgError> {
    let kind: String = args.require("kind")?;
    let count: u64 = args.require("count")?;
    let domain = args.get_u64("domain", 1000)?;
    let seed = args.get_u64("seed", 42)?;
    let io_err = |e: std::io::Error| ArgError(format!("io error: {e}"));
    let mut rng = SmallRng::seed_from_u64(seed);
    match kind.as_str() {
        "uniform" => {
            let mut gen = SteadyArrivals::new(UniformGen::new(domain));
            for _ in 0..count {
                let ev = gen.next_event(&mut rng);
                writeln!(out, "{} {}", ev.timestamp, ev.value).map_err(io_err)?;
            }
        }
        "zipf" => {
            let theta = args.get_f64("theta", 1.1)?;
            let mut gen = SteadyArrivals::new(ZipfGen::new(domain, theta));
            for _ in 0..count {
                let ev = gen.next_event(&mut rng);
                writeln!(out, "{} {}", ev.timestamp, ev.value).map_err(io_err)?;
            }
        }
        "bursty" => {
            let max_burst = args.get_u64("max-burst", 8)?;
            let mut gen = BurstyArrivals::new(UniformGen::new(domain), max_burst);
            for _ in 0..count {
                let ev = gen.next_event(&mut rng);
                writeln!(out, "{} {}", ev.timestamp, ev.value).map_err(io_err)?;
            }
        }
        other => return Err(ArgError(format!("unknown workload kind `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use std::io::Cursor;

    fn run_cmd(cmdline: &str, input: &str) -> Result<String, String> {
        let args =
            Args::parse(cmdline.split_whitespace().map(String::from)).map_err(|e| e.to_string())?;
        let mut out = Vec::new();
        let mut cur = Cursor::new(input.as_bytes().to_vec());
        run(&args, &mut cur, &mut out).map(|()| String::from_utf8(out).expect("utf8"))
    }

    #[test]
    fn seq_samples_from_window() {
        let input: String = (0..100).map(|i| format!("v{i}\n")).collect();
        let out = run_cmd("seq --window 10 --k 3 --seed 1", &input).expect("runs");
        // Final report: all samples from v90..v99.
        let line = out.lines().next().expect("report line");
        assert!(line.starts_with("100\t"));
        for tok in line.split_whitespace().skip(1) {
            let idx: u64 = tok
                .split('@')
                .nth(1)
                .expect("@index")
                .parse()
                .expect("index");
            assert!(idx >= 90, "sample {tok} outside window");
        }
        assert!(out.contains("# memory:"));
    }

    #[test]
    fn seq_wor_distinct() {
        let input: String = (0..50).map(|i| format!("{i}\n")).collect();
        let out = run_cmd("seq --window 20 --k 5 --wor --seed 2", &input).expect("runs");
        let line = out.lines().next().expect("report");
        let idx: Vec<&str> = line.split_whitespace().skip(1).collect();
        assert_eq!(idx.len(), 5);
        let mut set: Vec<&str> = idx.clone();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 5, "duplicates in WOR output");
    }

    #[test]
    fn ts_respects_window() {
        let mut input = String::new();
        for t in 0..100u64 {
            input.push_str(&format!("{t} item{t}\n"));
        }
        let out = run_cmd("ts --window 5 --k 2 --seed 3", &input).expect("runs");
        let line = out.lines().next().expect("report");
        for tok in line.split_whitespace().skip(1) {
            let ts: u64 = tok.split("@t").nth(1).expect("@t").parse().expect("ts");
            assert!(ts >= 95, "expired sample {tok}");
        }
    }

    #[test]
    fn legacy_shorthand_equals_run_spec_surface() {
        // `seq --window N --wor` and `run --window seq --n N --mode wor`
        // are the same spec — byte-identical output at equal seeds.
        let input: String = (0..200).map(|i| format!("v{i}\n")).collect();
        let legacy = run_cmd("seq --window 25 --k 4 --wor --seed 9", &input).expect("legacy");
        let spec = run_cmd("run --window seq --n 25 --mode wor --k 4 --seed 9", &input)
            .expect("spec surface");
        assert_eq!(legacy, spec);

        let mut ts_input = String::new();
        for t in 0..60u64 {
            ts_input.push_str(&format!("{t} item{t}\n"));
        }
        let legacy = run_cmd("ts --window 7 --k 2 --seed 4", &ts_input).expect("legacy ts");
        let spec =
            run_cmd("run --window ts --w 7 --mode wr --k 2 --seed 4", &ts_input).expect("spec ts");
        assert_eq!(legacy, spec);
    }

    #[test]
    fn run_supports_baseline_algorithms_and_stream_windows() {
        let input: String = (0..300).map(|i| format!("{i}\n")).collect();
        // Chain sampling through the same CLI path.
        let out = run_cmd(
            "run --window seq --n 50 --mode wr --algo chain --k 3 --seed 5",
            &input,
        )
        .expect("chain runs");
        assert!(out.contains("randomized bound"), "{out}");
        // Whole-stream reservoir: samples may be arbitrarily old.
        let out = run_cmd(
            "run --window stream --mode wor --algo reservoir-l --k 4 --seed 5",
            &input,
        )
        .expect("reservoir runs");
        let line = out.lines().next().expect("report");
        assert!(line.starts_with("300\t"));
        // Priority sampling over a ts window.
        let mut ts_input = String::new();
        for t in 0..80u64 {
            ts_input.push_str(&format!("{t} v{t}\n"));
        }
        let out = run_cmd(
            "run --window ts --w 10 --mode wor --algo priority --k 3 --seed 6",
            &ts_input,
        )
        .expect("priority runs");
        for tok in out
            .lines()
            .next()
            .expect("report")
            .split_whitespace()
            .skip(1)
        {
            let ts: u64 = tok.split("@t").nth(1).expect("@t").parse().expect("ts");
            assert!(ts >= 70, "expired sample {tok}");
        }
    }

    #[test]
    fn run_rejects_invalid_specs() {
        assert!(run_cmd("run --n 5", "x\n").is_err(), "missing --window");
        assert!(
            run_cmd("run --window seq --n 5 --algo priority", "x\n").is_err(),
            "priority needs ts windows"
        );
        assert!(
            run_cmd("run --window seq --n 5 --mode maybe", "x\n").is_err(),
            "bad mode"
        );
    }

    #[test]
    fn multi_runs_a_fleet_end_to_end() {
        let out = run_cmd(
            "multi --keys 50 --count 4000 --window seq --n 20 --k 2 --seed 3 \
             --theta 1.2 --shards 4 --show 2",
            "",
        )
        .expect("multi runs");
        // Two hottest keys with their windows.
        let key_lines: Vec<&str> = out.lines().filter(|l| l.starts_with("key ")).collect();
        assert_eq!(key_lines.len(), 2, "{out}");
        for line in key_lines {
            assert!(line.contains("arrivals"));
            assert!(line.contains('@'), "samples rendered: {line}");
        }
        assert!(out.contains("# keys: "), "{out}");
        assert!(out.contains("materialized across 4 shards"), "{out}");
        assert!(out.contains("# memory: fleet "), "{out}");
        assert!(out.contains("max per key"), "{out}");
    }

    #[test]
    fn multi_fleet_respects_per_key_windows() {
        // Regenerate the deterministic workload (--workload-seed default
        // 1, zipf theta default 1.1, values = global stream index) and
        // check every reported sample is one of that key's own last-n
        // arrivals: cross-key routing would surface as a value the key
        // never received, a stale sample as one outside its window.
        let (keys, count, n) = (5u64, 2_000u64, 10usize);
        let out = run_cmd(
            "multi --keys 5 --count 2000 --window seq --n 10 --mode wor --k 3 --seed 8 --show 5",
            "",
        )
        .expect("multi runs");
        let mut rng = SmallRng::seed_from_u64(1);
        let mut zipf = ZipfGen::new(keys, 1.1);
        let mut arrivals: Vec<Vec<u64>> = vec![Vec::new(); keys as usize];
        for i in 0..count {
            arrivals[zipf.next_value(&mut rng) as usize].push(i);
        }
        let key_lines: Vec<&str> = out.lines().filter(|l| l.starts_with("key ")).collect();
        assert_eq!(key_lines.len(), 5, "{out}");
        for line in key_lines {
            let mut parts = line.split('\t');
            let key: usize = parts
                .next()
                .expect("key column")
                .strip_prefix("key ")
                .expect("key prefix")
                .trim()
                .parse()
                .expect("key id");
            let cnt: u64 = parts
                .next()
                .expect("traffic column")
                .split_whitespace()
                .next()
                .expect("count")
                .parse()
                .expect("numeric count");
            assert_eq!(cnt, arrivals[key].len() as u64, "traffic count, key {key}");
            let window = &arrivals[key][arrivals[key].len().saturating_sub(n)..];
            for tok in parts.next().expect("samples column").split_whitespace() {
                let value: u64 = tok
                    .split('@')
                    .next()
                    .expect("value")
                    .parse()
                    .expect("value");
                assert!(
                    window.contains(&value),
                    "key {key}: sample {value} outside its window {window:?}"
                );
            }
        }
    }

    /// The determinism contract `--threads` rides on: per-key samples
    /// are bit-identical for every worker count, so the whole stdout
    /// report (samples, key census, memory) must match byte for byte.
    #[test]
    fn multi_threads_output_is_bit_identical() {
        let base = "multi --keys 200 --count 6000 --window seq --n 25 --k 3 --seed 5 \
             --theta 1.2 --shards 8 --show 4";
        let serial = run_cmd(base, "").expect("serial fleet runs");
        for threads in [2usize, 8] {
            let parallel =
                run_cmd(&format!("{base} --threads {threads}"), "").expect("parallel fleet runs");
            assert_eq!(
                serial, parallel,
                "--threads {threads} output diverges from --threads 1"
            );
        }
        // Timestamp templates cross the pool too.
        let ts_base = "multi --keys 50 --count 4000 --window ts --w 10 --mode wor --k 2 \
             --seed 6 --shards 4 --show 3";
        let serial = run_cmd(ts_base, "").expect("serial ts fleet runs");
        let parallel = run_cmd(&format!("{ts_base} --threads 4"), "").expect("parallel ts fleet");
        assert_eq!(serial, parallel, "ts template diverges across threads");
    }

    /// The backend contract `--backend` rides on: the SoA fleet is
    /// sample-for-sample bit-identical to the erased fleet, so the whole
    /// stdout report must match byte for byte — for a sequence-window
    /// and a timestamp-window template, at every worker count.
    #[test]
    fn multi_backend_output_is_bit_identical() {
        for base in [
            "multi --keys 200 --count 6000 --window seq --n 25 --k 3 --seed 5 \
             --theta 1.2 --shards 8 --show 4",
            "multi --keys 50 --count 4000 --window ts --w 10 --mode wor --k 2 \
             --seed 6 --shards 4 --show 3",
        ] {
            for threads in [1usize, 2, 8] {
                let erased = run_cmd(&format!("{base} --threads {threads} --backend erased"), "")
                    .expect("erased fleet runs");
                let soa = run_cmd(&format!("{base} --threads {threads} --backend soa"), "")
                    .expect("soa fleet runs");
                assert_eq!(
                    erased, soa,
                    "--backend soa output diverges from erased at --threads {threads}"
                );
            }
        }
        // And the default (auto) resolves to one of the two, so it
        // matches them as well.
        let base = "multi --keys 50 --count 2000 --window seq --n 25 --k 3 --seed 5";
        let auto = run_cmd(base, "").expect("auto fleet runs");
        let soa = run_cmd(&format!("{base} --backend soa"), "").expect("soa fleet runs");
        assert_eq!(auto, soa, "auto backend diverges from explicit soa");
        // An unknown backend token is a flag error, not a panic.
        assert!(
            run_cmd(
                "multi --keys 5 --count 10 --window seq --n 5 --backend hybrid",
                ""
            )
            .is_err(),
            "unknown backend token rejected"
        );
    }

    #[test]
    fn multi_rejects_bad_fleets() {
        assert!(
            run_cmd("multi --count 10 --window seq --n 5", "").is_err(),
            "missing --keys"
        );
        assert!(
            run_cmd("multi --keys 0 --count 10 --window seq --n 5", "").is_err(),
            "zero keys"
        );
        assert!(
            run_cmd("multi --keys 5 --count 10 --window seq --n 5 --k 0", "").is_err(),
            "invalid template"
        );
        // --threads 0 is the available-parallelism sentinel, not an
        // error — and the output stays byte-identical to --threads 1.
        let auto = run_cmd(
            "multi --keys 5 --count 10 --window seq --n 5 --threads 0",
            "",
        )
        .expect("--threads 0 resolves to available parallelism");
        let one = run_cmd(
            "multi --keys 5 --count 10 --window seq --n 5 --threads 1",
            "",
        )
        .expect("baseline");
        assert_eq!(auto, one, "--threads 0 output diverges from --threads 1");
        for theta in ["0", "-1", "nan"] {
            assert!(
                run_cmd(
                    &format!("multi --keys 5 --count 10 --window seq --n 5 --theta {theta}"),
                    ""
                )
                .is_err(),
                "theta {theta} must be rejected, not panic"
            );
        }
        assert!(
            run_cmd("multi --keys 99000000000 --count 10 --window seq --n 5", "").is_err(),
            "absurd key domain rejected before allocation"
        );
    }

    #[test]
    fn agg_reports_estimates() {
        let mut input = String::new();
        for t in 0..200u64 {
            input.push_str(&format!("{t} {}\n", t % 10));
        }
        let out = run_cmd("agg --window 50 --k 16 --seed 4", &input).expect("runs");
        assert!(out.contains("count~"), "{out}");
        assert!(out.contains("p99~"));
    }

    #[test]
    fn gen_produces_parseable_workload() {
        let out = run_cmd("gen --kind zipf --count 50 --domain 10 --seed 5", "").expect("runs");
        assert_eq!(out.lines().count(), 50);
        for line in out.lines() {
            let (_ts, v) = split_timestamped(line).expect("parse");
            let v: u64 = v.parse().expect("numeric");
            assert!(v < 10);
        }
    }

    #[test]
    fn gen_pipes_into_ts() {
        let workload =
            run_cmd("gen --kind bursty --count 200 --domain 100 --seed 6", "").expect("gen");
        let out = run_cmd("ts --window 10 --k 3 --wor --seed 7", &workload).expect("ts");
        assert!(out.lines().next().expect("report").starts_with("200\t"));
    }

    #[test]
    fn periodic_reports() {
        let input: String = (0..100).map(|i| format!("{i}\n")).collect();
        let out =
            run_cmd("seq --window 10 --k 1 --report-every 25 --seed 8", &input).expect("runs");
        // Reports at 25, 50, 75, 100 + final (100 repeats) + memory line.
        let reports = out.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(reports, 5);
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_cmd("seq", "").is_err(), "missing --window");
        assert!(
            run_cmd("nope --window 5", "").is_err(),
            "unknown subcommand"
        );
        assert!(
            run_cmd("ts --window 5", "not-a-ts x\n").is_err(),
            "bad timestamp"
        );
        assert!(run_cmd("seq --window 5", "").is_err(), "empty input");
        assert!(
            run_cmd("gen --kind weird --count 5", "").is_err(),
            "unknown kind"
        );
    }

    #[test]
    fn help_prints_usage() {
        let out = run_cmd("help", "").expect("help");
        assert!(out.contains("USAGE"));
        assert!(out.contains("seq"));
        assert!(out.contains("batch-size"));
        assert!(out.contains("multi"));
        assert!(out.contains("--algo"));
    }

    #[test]
    fn seq_batch_size_respects_window_and_reports() {
        let input: String = (0..100).map(|i| format!("v{i}\n")).collect();
        for bs in [1usize, 7, 100, 4096] {
            let out = run_cmd(
                &format!("seq --window 10 --k 3 --seed 1 --batch-size {bs}"),
                &input,
            )
            .expect("runs");
            let line = out.lines().next().expect("report line");
            assert!(line.starts_with("100\t"), "batch={bs}: {line}");
            for tok in line.split_whitespace().skip(1) {
                let idx: u64 = tok
                    .split('@')
                    .nth(1)
                    .expect("@index")
                    .parse()
                    .expect("index");
                assert!(idx >= 90, "batch={bs}: sample {tok} outside window");
            }
        }
    }

    #[test]
    fn seq_batching_keeps_report_cadence() {
        let input: String = (0..100).map(|i| format!("{i}\n")).collect();
        let out = run_cmd(
            "seq --window 10 --k 1 --report-every 25 --seed 8 --batch-size 64",
            &input,
        )
        .expect("runs");
        // Same cadence as the unbatched run: 25, 50, 75, 100 + final.
        let reports = out.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(reports, 5);
    }

    #[test]
    fn ts_batch_size_respects_window() {
        let mut input = String::new();
        for t in 0..50u64 {
            for j in 0..3u64 {
                input.push_str(&format!("{t} item{t}_{j}\n"));
            }
        }
        for bs in [1usize, 5, 1000] {
            let out = run_cmd(
                &format!("ts --window 5 --k 2 --seed 3 --batch-size {bs}"),
                &input,
            )
            .expect("runs");
            let line = out.lines().next().expect("report");
            for tok in line.split_whitespace().skip(1) {
                let ts: u64 = tok.split("@t").nth(1).expect("@t").parse().expect("ts");
                assert!(ts >= 45, "batch={bs}: expired sample {tok}");
            }
        }
    }

    #[test]
    fn zero_batch_size_is_an_error() {
        let input = "a\nb\n";
        assert!(run_cmd("seq --window 2 --batch-size 0", input).is_err());
        assert!(run_cmd("ts --window 2 --batch-size 0", "0 a\n").is_err());
    }
}
