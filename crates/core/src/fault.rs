//! Deterministic, seeded fault injection shared by the durable and
//! serving layers.
//!
//! A [`FaultSchedule`] is a set of rules, one per [`FaultSite`], parsed
//! from the `SWSAMPLE_FAULTS` environment variable (or a `--faults`
//! flag). Each rule fires on a deterministic subset of the operations
//! that pass through its site: whether the `n`th operation faults is a
//! pure function of `(seed, site, n)` — a splitmix64-style mix reduced
//! modulo the rule's rate denominator. The same seed therefore replays
//! the *exact same* connection drops, stalls, byte flips, and transient
//! disk errors on every run, which turns an exactly-once violation
//! under chaos into a reproducible test failure rather than a flake.
//!
//! The grammar is the same `name=value` comma list as the durable
//! crate's `SWSAMPLE_FAILPOINT`:
//!
//! ```text
//! SWSAMPLE_FAULTS=seed=7,drop-rx=1/61,stall-rx=1/37:5ms,flip-tx=1/71,wal-append=1/23
//! ```
//!
//! - `seed=S` — the schedule seed (defaults to 0 when omitted).
//! - `<site>=1/N` — fire on roughly one in `N` operations at `<site>`,
//!   chosen deterministically by the seeded mix (not every Nth).
//! - `<site>=1/N:Pms` — stall sites only: stall for `P` milliseconds
//!   when the rule fires.
//!
//! Sites: `drop-rx` / `drop-tx` (sever the connection while receiving /
//! sending, the tx side mid-frame), `stall-rx` / `stall-tx` (sleep past
//! the peer's deadline), `flip-tx` (flip one byte of an outgoing frame
//! so the peer's CRC catches it), `wal-append` / `wal-fsync` (transient
//! disk errors the durable engine retries boundedly).
//!
//! Layers consult the schedule through a [`FaultInjector`], which owns
//! the per-site operation counters (atomics, so concurrent reader and
//! writer threads share one injector) and counts every injected fault
//! for the server's STATS surface. An empty schedule short-circuits:
//! the per-operation cost in production is one branch.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Name of the environment variable [`FaultSchedule::from_env`] reads.
pub const FAULTS_ENV: &str = "SWSAMPLE_FAULTS";

/// SplitMix64 finalizer over a seed, a per-site salt, and an operation
/// index. Public because the client's retry jitter derives from the
/// same mix, keeping *all* chaos-path randomness seed-deterministic.
pub fn mix64(seed: u64, salt: u64, n: u64) -> u64 {
    let mut z = seed
        .wrapping_add(salt)
        .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A place in the stack where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// Sever the connection after receiving a complete frame.
    DropRx,
    /// Sever the connection mid-way through sending a frame.
    DropTx,
    /// Stall before processing a received frame.
    StallRx,
    /// Stall before sending a frame.
    StallTx,
    /// Flip one byte of an outgoing frame (the peer's CRC rejects it).
    FlipTx,
    /// Fail a WAL append with a transient (retryable) I/O error.
    WalAppend,
    /// Fail a WAL fsync with a transient (retryable) I/O error.
    WalFsync,
}

impl FaultSite {
    /// Every site, in canonical (grammar/display) order.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::DropRx,
        FaultSite::DropTx,
        FaultSite::StallRx,
        FaultSite::StallTx,
        FaultSite::FlipTx,
        FaultSite::WalAppend,
        FaultSite::WalFsync,
    ];

    /// The site's token in the schedule grammar.
    pub fn token(self) -> &'static str {
        match self {
            FaultSite::DropRx => "drop-rx",
            FaultSite::DropTx => "drop-tx",
            FaultSite::StallRx => "stall-rx",
            FaultSite::StallTx => "stall-tx",
            FaultSite::FlipTx => "flip-tx",
            FaultSite::WalAppend => "wal-append",
            FaultSite::WalFsync => "wal-fsync",
        }
    }

    /// Inverse of [`token`](Self::token).
    pub fn from_token(token: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.token() == token)
    }

    /// True for the sites whose rules accept a `:Pms` stall duration.
    pub fn takes_duration(self) -> bool {
        matches!(self, FaultSite::StallRx | FaultSite::StallTx)
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|s| *s == self).expect("in ALL")
    }

    /// Per-site salt so two sites with the same seed and rate fire on
    /// different operation indices.
    fn salt(self) -> u64 {
        mix64(0x5157_5341_4d50_4c45, 0, self.index() as u64)
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One rule of a [`FaultSchedule`]: fire at `site` on roughly one in
/// `denom` operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Where the rule applies.
    pub site: FaultSite,
    /// Rate denominator: the rule fires when the seeded mix of the
    /// operation index is divisible by `denom` (so ~1/denom of ops).
    pub denom: u64,
    /// Stall duration in milliseconds (stall sites only; 0 elsewhere).
    pub stall_ms: u64,
}

/// A fired fault: which site, which operation, and the rule's stall
/// parameter, plus an auxiliary seeded word for choosing byte offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultHit {
    /// The site that fired.
    pub site: FaultSite,
    /// 0-based index of the operation that faulted at this site.
    pub op: u64,
    /// Stall duration in milliseconds (stall sites only; 0 elsewhere).
    pub stall_ms: u64,
    /// Deterministic auxiliary randomness, e.g. to pick which byte of a
    /// frame to flip or where to cut a dropped frame.
    pub aux: u64,
}

/// A seeded schedule of fault rules. The default schedule is empty and
/// injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Seed mixed into every fire/no-fire decision.
    pub seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultSchedule {
    /// True if no rule is configured (the production fast path).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rule for `site`, if any.
    pub fn rule(&self, site: FaultSite) -> Option<&FaultRule> {
        self.rules.iter().find(|r| r.site == site)
    }

    /// Add or replace the rule for `rule.site`, keeping canonical order.
    pub fn set_rule(&mut self, rule: FaultRule) {
        self.rules.retain(|r| r.site != rule.site);
        self.rules.push(rule);
        self.rules.sort_by_key(|r| r.site);
    }

    /// Pure fire/no-fire decision for the `n`th (0-based) operation at
    /// `site`. Same `(seed, site, n)` — same answer, every run.
    pub fn fires(&self, site: FaultSite, n: u64) -> Option<FaultHit> {
        let rule = self.rule(site)?;
        let word = mix64(self.seed, site.salt(), n);
        word.is_multiple_of(rule.denom.max(1)).then(|| FaultHit {
            site,
            op: n,
            stall_ms: rule.stall_ms,
            aux: mix64(self.seed, site.salt() ^ 0xA0A0_A0A0_A0A0_A0A0, n),
        })
    }

    /// The smallest operation index at which `site` fires, scanning the
    /// first `limit` indices. Lets tests assert "this schedule *will*
    /// inject at least one drop within N operations" deterministically.
    pub fn first_hit(&self, site: FaultSite, limit: u64) -> Option<u64> {
        self.rule(site)?;
        (0..limit).find(|&n| self.fires(site, n).is_some())
    }

    /// Parse a schedule from the [`FAULTS_ENV`] environment variable.
    /// Unset or empty means no faults; a malformed value is an error
    /// (silently ignoring a typo'd schedule would make a chaos harness
    /// pass vacuously).
    pub fn from_env() -> Result<Self, String> {
        match std::env::var(FAULTS_ENV) {
            Ok(raw) => raw.parse(),
            Err(_) => Ok(FaultSchedule::default()),
        }
    }
}

impl fmt::Display for FaultSchedule {
    /// Canonical form: `seed=S` first (omitted only when the whole
    /// schedule is empty and the seed is 0), then rules in
    /// [`FaultSite::ALL`] order. `parse(display(s)) == s` always.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rules.is_empty() && self.seed == 0 {
            return Ok(());
        }
        write!(f, "seed={}", self.seed)?;
        for rule in &self.rules {
            write!(f, ",{}=1/{}", rule.site, rule.denom)?;
            if rule.site.takes_duration() {
                write!(f, ":{}ms", rule.stall_ms)?;
            }
        }
        Ok(())
    }
}

impl FromStr for FaultSchedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut schedule = FaultSchedule::default();
        let mut seed_seen = false;
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault `{part}`: expected name=value"))?;
            let (name, value) = (name.trim(), value.trim());
            if name == "seed" {
                if seed_seen {
                    return Err("fault `seed` given twice".to_string());
                }
                seed_seen = true;
                schedule.seed = value.parse().map_err(|_| {
                    format!("fault `seed`: expected an unsigned integer, got `{value}`")
                })?;
                continue;
            }
            let site = FaultSite::from_token(name)
                .ok_or_else(|| format!("unknown fault site `{name}`"))?;
            if schedule.rule(site).is_some() {
                return Err(format!("fault `{name}` given twice"));
            }
            let (rate, stall) = match value.split_once(':') {
                Some((rate, stall)) => (rate.trim(), Some(stall.trim())),
                None => (value, None),
            };
            let denom = rate
                .strip_prefix("1/")
                .and_then(|d| d.trim().parse::<u64>().ok())
                .filter(|&d| d >= 1)
                .ok_or_else(|| {
                    format!("fault `{name}`: expected a rate `1/N` (N >= 1), got `{rate}`")
                })?;
            let stall_ms = match stall {
                Some(stall) => {
                    if !site.takes_duration() {
                        return Err(format!(
                            "fault `{name}`: `:{stall}` — stall durations only apply to stall-rx/stall-tx"
                        ));
                    }
                    stall
                        .strip_suffix("ms")
                        .and_then(|ms| ms.trim().parse::<u64>().ok())
                        .ok_or_else(|| {
                            format!("fault `{name}`: expected a stall duration `<millis>ms`, got `{stall}`")
                        })?
                }
                // Stall sites default to 10ms when the duration is omitted.
                None if site.takes_duration() => 10,
                None => 0,
            };
            schedule.rules.push(FaultRule {
                site,
                denom,
                stall_ms,
            });
        }
        schedule.rules.sort_by_key(|r| r.site);
        Ok(schedule)
    }
}

/// Shared, thread-safe front end over a [`FaultSchedule`]: owns the
/// per-site operation counters and tallies fired faults.
#[derive(Debug, Default)]
pub struct FaultInjector {
    schedule: FaultSchedule,
    ops: [AtomicU64; FaultSite::ALL.len()],
    hits: [AtomicU64; FaultSite::ALL.len()],
}

impl FaultInjector {
    /// Wrap a schedule.
    pub fn new(schedule: FaultSchedule) -> Self {
        FaultInjector {
            schedule,
            ..FaultInjector::default()
        }
    }

    /// The wrapped schedule.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// True if the schedule injects nothing; callers on hot paths can
    /// skip whole fault blocks behind this one branch.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Count one operation at `site`; `Some(hit)` if that operation is
    /// scheduled to fault. An empty schedule never counts or fires.
    pub fn check(&self, site: FaultSite) -> Option<FaultHit> {
        self.schedule.rule(site)?;
        let n = self.ops[site.index()].fetch_add(1, Ordering::Relaxed);
        let hit = self.schedule.fires(site, n)?;
        self.hits[site.index()].fetch_add(1, Ordering::Relaxed);
        Some(hit)
    }

    /// Faults fired so far at `site`.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.hits[site.index()].load(Ordering::Relaxed)
    }

    /// Faults fired so far across every site.
    pub fn injected_total(&self) -> u64 {
        self.hits.iter().map(|h| h.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips_canonically() {
        let s: FaultSchedule = " stall-rx=1/37:5ms, seed=7,drop-rx=1/61 "
            .parse()
            .expect("parse");
        assert_eq!(s.seed, 7);
        assert_eq!(
            s.rule(FaultSite::DropRx),
            Some(&FaultRule {
                site: FaultSite::DropRx,
                denom: 61,
                stall_ms: 0
            })
        );
        assert_eq!(s.rule(FaultSite::StallRx).unwrap().stall_ms, 5);
        // Canonical display: seed first, sites in ALL order.
        let shown = s.to_string();
        assert_eq!(shown, "seed=7,drop-rx=1/61,stall-rx=1/37:5ms");
        assert_eq!(shown.parse::<FaultSchedule>().unwrap(), s);
    }

    #[test]
    fn empty_and_default_stall() {
        assert!("".parse::<FaultSchedule>().unwrap().is_empty());
        assert_eq!(FaultSchedule::default().to_string(), "");
        let s: FaultSchedule = "stall-tx=1/3".parse().unwrap();
        assert_eq!(s.rule(FaultSite::StallTx).unwrap().stall_ms, 10);
    }

    #[test]
    fn rejects_malformed_naming_the_token() {
        for (input, must_mention) in [
            ("drop-rx", "drop-rx"),
            ("drop-rx=61", "drop-rx"),
            ("drop-rx=1/0", "drop-rx"),
            ("drop-rx=1/x", "drop-rx"),
            ("flip-tx=1/3:5ms", "flip-tx"),
            ("stall-rx=1/3:5s", "stall-rx"),
            ("seed=banana", "seed"),
            ("seed=1,seed=2", "seed"),
            ("drop-rx=1/2,drop-rx=1/3", "drop-rx"),
            ("drop-sideways=1/2", "drop-sideways"),
        ] {
            let err = input.parse::<FaultSchedule>().expect_err(input);
            assert!(err.contains(must_mention), "{input}: {err}");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_rate_shaped() {
        let s: FaultSchedule = "seed=42,drop-rx=1/16".parse().unwrap();
        let fires: Vec<u64> = (0..10_000)
            .filter(|&n| s.fires(FaultSite::DropRx, n).is_some())
            .collect();
        // Same seed, same schedule: same decisions.
        let again: Vec<u64> = (0..10_000)
            .filter(|&n| s.fires(FaultSite::DropRx, n).is_some())
            .collect();
        assert_eq!(fires, again);
        // ~1/16 of 10k ops, generously bounded.
        assert!(
            (300..1000).contains(&fires.len()),
            "expected roughly 625 hits, got {}",
            fires.len()
        );
        assert_eq!(
            s.first_hit(FaultSite::DropRx, 10_000),
            fires.first().copied()
        );
        // A different seed makes different decisions.
        let other: FaultSchedule = "seed=43,drop-rx=1/16".parse().unwrap();
        let other_fires: Vec<u64> = (0..10_000)
            .filter(|&n| other.fires(FaultSite::DropRx, n).is_some())
            .collect();
        assert_ne!(fires, other_fires);
        // Sites are decorrelated: same seed, different site, different ops.
        let two: FaultSchedule = "seed=42,drop-rx=1/16,drop-tx=1/16".parse().unwrap();
        let tx: Vec<u64> = (0..10_000)
            .filter(|&n| two.fires(FaultSite::DropTx, n).is_some())
            .collect();
        assert_ne!(fires, tx);
    }

    #[test]
    fn injector_counts_ops_and_hits() {
        let injector = FaultInjector::new("seed=1,wal-append=1/4".parse().expect("schedule"));
        let mut fired = 0u64;
        for _ in 0..1000 {
            if injector.check(FaultSite::WalAppend).is_some() {
                fired += 1;
            }
        }
        assert!(fired > 0);
        assert_eq!(injector.injected(FaultSite::WalAppend), fired);
        assert_eq!(injector.injected_total(), fired);
        // Unscheduled sites never fire and never count.
        assert!(injector.check(FaultSite::FlipTx).is_none());
        assert_eq!(injector.injected(FaultSite::FlipTx), 0);
    }

    #[test]
    fn empty_injector_is_inert() {
        let injector = FaultInjector::default();
        assert!(injector.is_empty());
        for site in FaultSite::ALL {
            assert!(injector.check(site).is_none());
        }
        assert_eq!(injector.injected_total(), 0);
    }
}
