//! Sampling **without replacement** from sequence-based windows
//! (Theorem 2.2).

use crate::memory::MemoryWords;
use crate::reservoir::{ReservoirK, ReservoirL};
use crate::sample::Sample;
use crate::state::{self, ReservoirLState, SamplerState, StateError};
use crate::traits::WindowSampler;
use rand::Rng;

/// The per-bucket reservoir: Algorithm L (skip-ahead, the default) or
/// Algorithm R (one draw per arrival, the reference path kept for
/// equivalence tests and as the benchmark baseline). Identical sampling
/// distribution either way.
#[derive(Debug, Clone)]
enum BucketReservoir<T> {
    Skip(ReservoirL<T>),
    Naive(ReservoirK<T>),
}

impl<T: Clone> BucketReservoir<T> {
    fn insert<R: Rng>(&mut self, rng: &mut R, value: T, index: u64, timestamp: u64) {
        match self {
            Self::Skip(r) => r.insert(rng, value, index, timestamp),
            Self::Naive(r) => r.insert(rng, value, index, timestamp),
        }
    }

    fn insert_batch<R: Rng>(&mut self, rng: &mut R, values: &[T], first_index: u64) {
        match self {
            Self::Skip(r) => r.insert_batch(rng, values, first_index),
            Self::Naive(r) => {
                for (j, v) in values.iter().enumerate() {
                    let idx = first_index + j as u64;
                    r.insert(rng, v.clone(), idx, idx);
                }
            }
        }
    }

    fn entries(&self) -> &[Sample<T>] {
        match self {
            Self::Skip(r) => r.entries(),
            Self::Naive(r) => r.entries(),
        }
    }

    fn take(&mut self) -> Vec<Sample<T>> {
        match self {
            Self::Skip(r) => r.take(),
            Self::Naive(r) => r.take(),
        }
    }
}

impl<T> MemoryWords for BucketReservoir<T> {
    fn memory_words(&self) -> usize {
        match self {
            Self::Skip(r) => r.memory_words(),
            Self::Naive(r) => r.memory_words(),
        }
    }
}

/// A uniform `k`-sample *without replacement* over the last `n` arrivals —
/// Theorem 2.2, `O(k)` memory words, deterministic.
///
/// Construction (§2.2): keep an independent reservoir `k`-sample per
/// equivalent-width bucket. When the window straddles the complete bucket
/// `U` and the partial bucket `V`, let `i` be the number of expired entries
/// in `X_U`; the window sample is the non-expired part of `X_U` together
/// with a uniform `i`-subset of `X_V` (a uniform sub-subset of a
/// without-replacement sample is itself a without-replacement sample).
///
/// When fewer than `k` elements are active, the sample is *all* active
/// elements.
///
/// Ingestion uses Li's Algorithm L per bucket: `O(k(1 + log(n/k)))` RNG
/// draws per bucket instead of `n`, with arrivals between precomputed
/// acceptances skipped wholesale by
/// [`insert_batch`](WindowSampler::insert_batch). The per-arrival
/// Algorithm R path remains available via [`SeqSamplerWor::naive`].
///
/// ```
/// use swsample_core::seq::SeqSamplerWor;
/// use swsample_core::WindowSampler;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut s = SeqSamplerWor::new(100, 5, SmallRng::seed_from_u64(3));
/// for i in 0..1_000u64 {
///     s.insert(i);
/// }
/// let mut idx: Vec<u64> = s.sample_k().unwrap().iter().map(|x| x.index()).collect();
/// idx.sort_unstable();
/// idx.dedup();
/// assert_eq!(idx.len(), 5);                      // distinct
/// assert!(idx.iter().all(|&i| i >= 900));        // all in the window
/// ```
#[derive(Debug, Clone)]
pub struct SeqSamplerWor<T, R> {
    n: u64,
    k: usize,
    count: u64,
    rng: R,
    /// k-sample of the most recent complete bucket (`X_U`).
    prev: Vec<Sample<T>>,
    /// Reservoir over the partial bucket (`X_V`).
    cur: BucketReservoir<T>,
}

impl<T: Clone, R: Rng> SeqSamplerWor<T, R> {
    /// Sampler for windows of the last `n ≥ 1` arrivals, maintaining a
    /// `k ≥ 1`-sample without replacement (skip-ahead ingestion).
    pub fn new(n: u64, k: usize, rng: R) -> Self {
        Self::build(n, k, rng, false)
    }

    /// Like [`SeqSamplerWor::new`] but with the per-arrival Algorithm R
    /// bucket reservoirs — the reference path for equivalence tests and
    /// benchmark baselines.
    pub fn naive(n: u64, k: usize, rng: R) -> Self {
        Self::build(n, k, rng, true)
    }

    fn build(n: u64, k: usize, rng: R, naive: bool) -> Self {
        assert!(n >= 1, "SeqSamplerWor: window size must be at least 1");
        assert!(k >= 1, "SeqSamplerWor: k must be at least 1");
        Self {
            n,
            k,
            count: 0,
            rng,
            prev: Vec::new(),
            cur: if naive {
                BucketReservoir::Naive(ReservoirK::new(k))
            } else {
                BucketReservoir::Skip(ReservoirL::new(k))
            },
        }
    }

    /// Window size `n`.
    pub fn window(&self) -> u64 {
        self.n
    }

    /// Total arrivals observed.
    pub fn len_seen(&self) -> u64 {
        self.count
    }

    /// Insert the next arrival.
    pub fn push(&mut self, value: T) {
        let idx = self.count;
        self.cur.insert(&mut self.rng, value, idx, idx);
        self.count += 1;
        if self.count.is_multiple_of(self.n) {
            self.prev = self.cur.take();
        }
    }
}

/// Choose `i` distinct entries uniformly from `pool` (partial
/// Fisher–Yates). A free kernel so [`SeqSamplerWor`] and the
/// struct-of-arrays fleet ([`crate::soa::SeqWorFleet`]) draw the exact
/// same RNG words for the same query — the SoA-vs-erased equivalence
/// tests pin that.
pub(crate) fn choose_distinct<T: Clone, R: Rng>(
    rng: &mut R,
    pool: &[Sample<T>],
    i: usize,
) -> Vec<Sample<T>> {
    debug_assert!(i <= pool.len(), "choose_distinct: {i} > {}", pool.len());
    let mut scratch: Vec<&Sample<T>> = pool.iter().collect();
    let mut out = Vec::with_capacity(i);
    for step in 0..i {
        let j = rng.gen_range(step..scratch.len());
        scratch.swap(step, j);
        out.push(scratch[step].clone());
    }
    out
}

impl<T, R> MemoryWords for SeqSamplerWor<T, R> {
    fn memory_words(&self) -> usize {
        self.prev.len() * Sample::<T>::WORDS + self.cur.memory_words() + 3 // + (n, k, count)
    }
}

impl<T: Clone, R: Rng + 'static> WindowSampler<T> for SeqSamplerWor<T, R> {
    fn insert(&mut self, value: T) {
        self.push(value);
    }

    fn save_state(&self) -> Option<SamplerState<T>> {
        let rng = state::capture_rng(&self.rng)?;
        // Only the Algorithm L path (the spec-built default) is
        // checkpointable; the Algorithm R reference path is test-only.
        let res = match &self.cur {
            BucketReservoir::Skip(r) => r,
            BucketReservoir::Naive(_) => return None,
        };
        let (next_accept, w_bits) = res.skip_state();
        Some(SamplerState::SeqWor {
            count: self.count,
            rng,
            prev: self.prev.clone(),
            cur: ReservoirLState {
                entries: res.entries().to_vec(),
                seen: res.seen(),
                next_accept,
                w_bits,
            },
        })
    }

    fn restore_state(&mut self, state: SamplerState<T>) -> Result<(), StateError> {
        let (count, rng, prev, cur) = match state {
            SamplerState::SeqWor {
                count,
                rng,
                prev,
                cur,
            } => (count, rng, prev, cur),
            other => {
                return Err(StateError::Mismatch {
                    expected: "seq-wor",
                    found: other.family(),
                })
            }
        };
        if !matches!(self.cur, BucketReservoir::Skip(_)) {
            return Err(StateError::Unsupported);
        }
        if prev.len() > self.k || cur.entries.len() > self.k {
            return Err(StateError::Corrupt(format!(
                "seq-wor: {} prev / {} cur entries for k = {}",
                prev.len(),
                cur.entries.len(),
                self.k
            )));
        }
        if !state::restore_rng(&mut self.rng, &rng) {
            return Err(StateError::Unsupported);
        }
        self.count = count;
        self.prev = prev;
        self.cur = BucketReservoir::Skip(ReservoirL::from_parts(
            self.k,
            cur.entries,
            cur.seen,
            cur.next_accept,
            cur.w_bits,
        ));
        Ok(())
    }

    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        let mut i = 0usize;
        while i < values.len() {
            // Feed the run that stays inside the current partial bucket,
            // letting the bucket reservoir hop over non-acceptances.
            let pos = self.count % self.n;
            let chunk = (self.n - pos).min((values.len() - i) as u64) as usize;
            self.cur
                .insert_batch(&mut self.rng, &values[i..i + chunk], self.count);
            self.count += chunk as u64;
            i += chunk;
            if self.count.is_multiple_of(self.n) {
                self.prev = self.cur.take();
            }
        }
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        self.sample_k().map(|mut v| {
            let j = self.rng.gen_range(0..v.len());
            v.swap_remove(j)
        })
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        if self.count == 0 {
            return None;
        }
        if self.count < self.n {
            // Warm-up: window = partial bucket; its reservoir *is* the
            // k-sample (or all elements when fewer than k).
            return Some(self.cur.entries().to_vec());
        }
        if self.count.is_multiple_of(self.n) {
            // Window coincides with the complete bucket.
            return Some(self.prev.clone());
        }
        let oldest_active = self.count - self.n;
        // Split X_U into expired and retained parts.
        let retained: Vec<Sample<T>> = self
            .prev
            .iter()
            .filter(|s| s.index() >= oldest_active)
            .cloned()
            .collect();
        let expired_count = self.prev.len() - retained.len();
        if expired_count == 0 {
            return Some(retained);
        }
        // Top up with a uniform expired_count-subset of X_V. The paper
        // guarantees expired_count <= min(k, |V_a|) = |X_V| entries.
        let top_up = choose_distinct(&mut self.rng, self.cur.entries(), expired_count);
        let mut out = retained;
        out.extend(top_up);
        Some(out)
    }

    fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    fn drive(n: u64, k: usize, stop: u64, seed: u64) -> Vec<Sample<u64>> {
        let mut s = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(seed));
        for i in 0..stop {
            s.insert(i);
        }
        s.sample_k().expect("nonempty")
    }

    #[test]
    fn empty_returns_none() {
        let mut s: SeqSamplerWor<u64, _> = SeqSamplerWor::new(5, 2, SmallRng::seed_from_u64(0));
        assert!(s.sample_k().is_none());
        assert!(s.sample().is_none());
    }

    #[test]
    fn exactly_k_distinct_in_window() {
        for &stop in &[9u64, 16, 17, 20, 31, 32, 33] {
            for seed in 0..50 {
                let out = drive(16, 5, stop, seed);
                assert_eq!(out.len(), 5, "stop={stop}");
                let lo = stop - 16.min(stop);
                let mut idx: Vec<u64> = out.iter().map(|s| s.index()).collect();
                idx.sort_unstable();
                for w in idx.windows(2) {
                    assert_ne!(w[0], w[1], "duplicate at stop={stop}");
                }
                for &i in &idx {
                    assert!(
                        i >= lo && i < stop,
                        "index {i} outside window at stop={stop}"
                    );
                }
            }
        }
    }

    #[test]
    fn returns_all_when_window_smaller_than_k() {
        let out = drive(100, 10, 4, 1);
        assert_eq!(out.len(), 4);
        let mut idx: Vec<u64> = out.iter().map(|s| s.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn marginal_inclusion_is_k_over_n() {
        // Every window element must appear with probability k/n; uniform
        // over positions after conditioning on inclusion counts.
        let (n, k) = (12u64, 3usize);
        for &stop in &[12u64, 19, 24, 30] {
            let trials = 20_000u64;
            let mut counts = vec![0u64; n as usize];
            for t in 0..trials {
                for s in drive(n, k, stop, 7_000 + t) {
                    counts[(s.index() - (stop - n)) as usize] += 1;
                }
            }
            let out = chi_square_uniform_test(&counts);
            assert!(
                out.p_value > 1e-4,
                "marginals at stop={stop}: p = {}",
                out.p_value
            );
        }
    }

    #[test]
    fn naive_path_marginals_match() {
        // Algorithm R reference path, held to the same threshold.
        let (n, k, stop) = (12u64, 3usize, 19u64);
        let trials = 20_000u64;
        let mut counts = vec![0u64; n as usize];
        for t in 0..trials {
            let mut s = SeqSamplerWor::naive(n, k, SmallRng::seed_from_u64(300_000 + t));
            for i in 0..stop {
                s.insert(i);
            }
            for s in s.sample_k().expect("nonempty") {
                counts[(s.index() - (stop - n)) as usize] += 1;
            }
        }
        let out = chi_square_uniform_test(&counts);
        assert!(out.p_value > 1e-4, "naive marginals: p = {}", out.p_value);
    }

    #[test]
    fn batched_insert_marginals_match() {
        // Chunked ingestion through the Algorithm L hop path.
        let (n, k, stop) = (12u64, 3usize, 30u64);
        let trials = 20_000u64;
        let mut counts = vec![0u64; n as usize];
        for t in 0..trials {
            let mut s = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(600_000 + t));
            let values: Vec<u64> = (0..stop).collect();
            for chunk in values.chunks(7) {
                s.insert_batch(chunk);
            }
            for s in s.sample_k().expect("nonempty") {
                counts[(s.index() - (stop - n)) as usize] += 1;
            }
        }
        let out = chi_square_uniform_test(&counts);
        assert!(out.p_value > 1e-4, "batched marginals: p = {}", out.p_value);
    }

    #[test]
    fn pairwise_inclusion_uniform() {
        // Frequency of each unordered pair must be uniform across all pairs.
        let (n, k, stop) = (6u64, 2usize, 9u64);
        let trials = 30_000u64;
        let mut counts = vec![0u64; (n * (n - 1) / 2) as usize];
        for t in 0..trials {
            let out = drive(n, k, stop, 40_000 + t);
            let mut pos: Vec<u64> = out.iter().map(|s| s.index() - (stop - n)).collect();
            pos.sort_unstable();
            let (a, b) = (pos[0], pos[1]);
            // Rank of pair (a,b), a<b, in lexicographic order.
            let rank = a * n - a * (a + 1) / 2 + (b - a - 1);
            counts[rank as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(out.p_value > 1e-4, "pairs not uniform: p = {}", out.p_value);
    }

    #[test]
    fn memory_is_o_of_k() {
        let k = 7usize;
        let cap = 2 * k * 3 + 16;
        for &n in &[8u64, 512, 8192] {
            let mut s = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(3));
            for i in 0..4000u64 {
                s.insert(i);
                assert!(
                    s.memory_words() <= cap,
                    "n={n}: {} > {cap}",
                    s.memory_words()
                );
            }
        }
    }

    #[test]
    fn skip_memory_exceeds_naive_by_constant() {
        // Algorithm L carries two extra scalar state words (next_accept,
        // W) per partial-bucket reservoir; everything else is lockstep.
        let mut skip = SeqSamplerWor::new(17, 4, SmallRng::seed_from_u64(5));
        let mut naive = SeqSamplerWor::naive(17, 4, SmallRng::seed_from_u64(6));
        for i in 0..500u64 {
            skip.insert(i);
            naive.insert(i);
            assert_eq!(skip.memory_words(), naive.memory_words() + 2, "at step {i}");
        }
    }

    #[test]
    fn single_sample_draws_from_the_k_set() {
        let mut s = SeqSamplerWor::new(10, 3, SmallRng::seed_from_u64(4));
        for i in 0..50u64 {
            s.insert(i);
        }
        let one = s.sample().expect("nonempty");
        assert!(one.index() >= 40 && one.index() < 50);
    }
}
