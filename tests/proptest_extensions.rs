//! Property-based tests for the extension subsystems: the DGIM window
//! counter (error bound + structural invariants under arbitrary schedules)
//! and the sample-based query layer (estimates bounded by window extremes,
//! emptiness reported exactly).

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample::counting::WindowCounter;
use swsample::query::{HeavyHitters, SeqAggregator, TsAggregator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dgim_error_bound_holds_for_any_schedule(
        t0 in 1u64..100,
        r in 2usize..12,
        bursts in vec((0u64..4, 0u64..12), 1..80),
    ) {
        let mut c = WindowCounter::new(t0, r);
        let mut exact: std::collections::VecDeque<u64> = Default::default();
        let mut now = 0u64;
        let eps = 1.0 / (2.0 * (r as f64 - 1.0));
        for (gap, burst) in bursts {
            now += gap;
            c.advance_time(now);
            while exact.front().is_some_and(|&ts| now - ts >= t0) {
                exact.pop_front();
            }
            for _ in 0..burst {
                c.insert();
                exact.push_back(now);
            }
            c.check_invariants().map_err(TestCaseError::fail)?;
            let truth = exact.len() as f64;
            let est = c.estimate() as f64;
            prop_assert!(
                (est - truth).abs() <= eps * truth + 1.0,
                "est {est} vs truth {truth} at eps {eps}"
            );
            prop_assert!(c.lower_bound() as f64 <= truth);
            prop_assert!(c.upper_bound() as f64 >= truth);
        }
    }

    #[test]
    fn dgim_memory_logarithmic(
        t0 in 1u64..1000,
        total in 1u64..5000,
    ) {
        let mut c = WindowCounter::new(t0, 4);
        c.advance_time(0);
        for _ in 0..total {
            c.insert();
        }
        let log_n = 64 - total.leading_zeros() as usize;
        prop_assert!(
            c.bucket_count() <= 5 * (log_n + 1),
            "{} buckets for {total} arrivals", c.bucket_count()
        );
    }

    #[test]
    fn seq_aggregates_within_window_extremes(
        n in 1u64..300,
        k in 1usize..32,
        values in vec(0u64..10_000, 1..400),
        seed in any::<u64>(),
    ) {
        let mut a = SeqAggregator::new(n, k, SmallRng::seed_from_u64(seed));
        for &v in &values {
            a.insert(v);
        }
        let window = &values[values.len().saturating_sub(n as usize)..];
        let lo = *window.iter().min().expect("nonempty") as f64;
        let hi = *window.iter().max().expect("nonempty") as f64;
        let est = a.estimate().expect("nonempty");
        prop_assert!(est.mean >= lo && est.mean <= hi, "mean {} outside [{lo}, {hi}]", est.mean);
        prop_assert!(est.min_seen as f64 >= lo && (est.max_seen as f64) <= hi);
        prop_assert_eq!(est.count as u64, window.len() as u64);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let quant = a.quantile(q).expect("nonempty") as f64;
            prop_assert!(quant >= lo && quant <= hi);
        }
        let share = a.share(|&v| v < 5_000).expect("nonempty");
        prop_assert!((0.0..=1.0).contains(&share));
    }

    #[test]
    fn ts_aggregator_empty_iff_window_empty(
        t0 in 1u64..20,
        bursts in vec((0u64..6, 0u64..4), 1..40),
        seed in any::<u64>(),
    ) {
        let mut a = TsAggregator::new(t0, 4, 0.1, SmallRng::seed_from_u64(seed));
        let mut now = 0u64;
        let mut exact: std::collections::VecDeque<u64> = Default::default();
        for (gap, burst) in bursts {
            now += gap;
            a.advance_time(now);
            while exact.front().is_some_and(|&ts| now - ts >= t0) {
                exact.pop_front();
            }
            for v in 0..burst {
                a.insert(v);
                exact.push_back(now);
            }
            prop_assert_eq!(a.estimate().is_some(), !exact.is_empty());
        }
    }

    #[test]
    fn heavy_hitters_never_report_absent_values(
        n in 10u64..200,
        values in vec(0u64..20, 10..300),
        seed in any::<u64>(),
    ) {
        let mut h = HeavyHitters::new(n, 16, 0.05, SmallRng::seed_from_u64(seed));
        for &v in &values {
            h.insert(v);
        }
        let window: std::collections::HashSet<u64> =
            values[values.len().saturating_sub(n as usize)..].iter().copied().collect();
        for hit in h.hitters() {
            prop_assert!(window.contains(&hit.value), "reported {} not in window", hit.value);
            prop_assert!(hit.share > 0.0 && hit.share <= 1.0);
        }
    }
}
