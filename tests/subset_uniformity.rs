//! The strongest distributional check for the without-replacement samplers:
//! over a small window, *every* k-subset of positions must be equally
//! likely — `P(Z = Q) = 1/C(n, k)` for each of the `C(n, k)` subsets. This
//! is exactly the quantity the Theorem 2.2 / 4.4 proofs compute, verified
//! here by chi-square over the full subset lattice.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample::core::seq::SeqSamplerWor;
use swsample::core::ts::TsSamplerWor;
use swsample::core::WindowSampler;
use swsample::stats::chi_square_uniform_test;

/// Rank of the sorted subset `positions` (each < n) in colex order.
fn subset_rank(positions: &[u64], n: u64) -> usize {
    // Enumerate all C(n, k) sorted subsets lexicographically and find ours:
    // n and k are tiny (n ≤ 6, k ≤ 3), so a direct scan is fine and obvious.
    let k = positions.len();
    let mut rank = 0usize;
    let mut current: Vec<u64> = (0..k as u64).collect();
    loop {
        if current == positions {
            return rank;
        }
        rank += 1;
        // Next subset in lexicographic order.
        let mut i = k;
        loop {
            assert!(i > 0, "subset {positions:?} not found for n={n}");
            i -= 1;
            if current[i] < n - (k - i) as u64 {
                current[i] += 1;
                for j in i + 1..k {
                    current[j] = current[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn choose(n: u64, k: u64) -> usize {
    let mut r = 1u64;
    for i in 0..k {
        r = r * (n - i) / (i + 1);
    }
    r as usize
}

#[test]
fn subset_rank_enumerates_correctly() {
    // All 2-subsets of 4: {0,1},{0,2},{0,3},{1,2},{1,3},{2,3}.
    assert_eq!(subset_rank(&[0, 1], 4), 0);
    assert_eq!(subset_rank(&[0, 3], 4), 2);
    assert_eq!(subset_rank(&[2, 3], 4), 5);
    assert_eq!(choose(6, 3), 20);
}

#[test]
fn seq_wor_all_subsets_equally_likely() {
    // n = 6, k = 3: 20 subsets; straddling query (stop not a multiple of n).
    let (n, k, stop) = (6u64, 3usize, 9u64);
    let cells = choose(n, k as u64);
    let trials = 60_000u64;
    let mut counts = vec![0u64; cells];
    for t in 0..trials {
        let mut s = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(500_000 + t));
        for i in 0..stop {
            s.insert(i);
        }
        let mut pos: Vec<u64> = s
            .sample_k()
            .expect("nonempty")
            .iter()
            .map(|x| x.index() - (stop - n))
            .collect();
        pos.sort_unstable();
        counts[subset_rank(&pos, n)] += 1;
    }
    let out = chi_square_uniform_test(&counts);
    assert!(
        out.p_value > 1e-4,
        "SEQ-WOR subsets not uniform: p = {} (counts {counts:?})",
        out.p_value
    );
}

#[test]
fn seq_wor_all_subsets_equally_likely_at_bucket_boundary() {
    // Window coincides exactly with a completed bucket: pure reservoir path.
    let (n, k, stop) = (5u64, 2usize, 10u64);
    let cells = choose(n, k as u64);
    let trials = 40_000u64;
    let mut counts = vec![0u64; cells];
    for t in 0..trials {
        let mut s = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(700_000 + t));
        for i in 0..stop {
            s.insert(i);
        }
        let mut pos: Vec<u64> = s
            .sample_k()
            .expect("nonempty")
            .iter()
            .map(|x| x.index() - (stop - n))
            .collect();
        pos.sort_unstable();
        counts[subset_rank(&pos, n)] += 1;
    }
    let out = chi_square_uniform_test(&counts);
    assert!(
        out.p_value > 1e-4,
        "boundary subsets not uniform: p = {}",
        out.p_value
    );
}

#[test]
fn ts_wor_all_subsets_equally_likely() {
    // Timestamp window holding exactly 5 elements, k = 2: 10 subsets. This
    // exercises the full §4 pipeline: delayed engines, implicit events in
    // the straddling case, and the Lemma 4.2 folding.
    let (t0, k, ticks) = (5u64, 2usize, 18u64);
    let cells = choose(t0, k as u64);
    let trials = 50_000u64;
    let mut counts = vec![0u64; cells];
    for t in 0..trials {
        let mut s = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(900_000 + t));
        for tick in 0..ticks {
            s.advance_time(tick);
            s.insert(tick);
        }
        let mut pos: Vec<u64> = s
            .sample_k()
            .expect("nonempty")
            .iter()
            .map(|x| x.index() - (ticks - t0))
            .collect();
        pos.sort_unstable();
        counts[subset_rank(&pos, t0)] += 1;
    }
    let out = chi_square_uniform_test(&counts);
    assert!(
        out.p_value > 1e-4,
        "TS-WOR subsets not uniform: p = {} (counts {counts:?})",
        out.p_value
    );
}

#[test]
fn ts_wor_subsets_uniform_on_bursty_schedule() {
    // Bursts: deterministic schedule with 6 active elements, k = 2 -> 15
    // subsets; tests uniformity when several elements share timestamps.
    let t0 = 3u64;
    let schedule: [(u64, u64); 6] = [(0, 4), (1, 2), (2, 3), (3, 1), (4, 3), (5, 2)];
    // Active at t=5: ticks 3, 4, 5 -> 1 + 3 + 2 = 6 elements.
    let active = 6u64;
    let first_active: u64 = 4 + 2 + 3;
    let k = 2usize;
    let cells = choose(active, k as u64);
    let trials = 50_000u64;
    let mut counts = vec![0u64; cells];
    for t in 0..trials {
        let mut s = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(1_200_000 + t));
        for &(tick, burst) in &schedule {
            s.advance_time(tick);
            for _ in 0..burst {
                s.insert(tick);
            }
        }
        let mut pos: Vec<u64> = s
            .sample_k()
            .expect("nonempty")
            .iter()
            .map(|x| x.index() - first_active)
            .collect();
        pos.sort_unstable();
        counts[subset_rank(&pos, active)] += 1;
    }
    let out = chi_square_uniform_test(&counts);
    assert!(
        out.p_value > 1e-4,
        "bursty TS-WOR subsets not uniform: p = {}",
        out.p_value
    );
}
