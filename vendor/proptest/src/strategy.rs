//! Strategies: how property inputs are generated.
//!
//! A [`Strategy`] here is just a deterministic generator — no shrinking
//! tree, see the crate docs for why that trade-off is acceptable offline.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of generated values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                match (hi - lo).checked_add(1) {
                    Some(span) => lo + rng.below(span as u64) as $t,
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize);

macro_rules! signed_ranges {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                (self.start as $u).wrapping_add(rng.below(span as u64) as $u) as $t
            }
        }
    )*};
}
signed_ranges!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Full-range strategy for a primitive, as in `proptest::prelude::any`.
pub fn any<T: AnyValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types [`any`] can generate (full, unbiased range).
pub trait AnyValue: Sized {
    /// Generate one value covering the type's entire range.
    fn any_value(rng: &mut TestRng) -> Self;
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl AnyValue for $t {
            fn any_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl AnyValue for bool {
    fn any_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: AnyValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::any_value(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }
