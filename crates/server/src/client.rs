//! A blocking client for the wire protocol — the substrate for the
//! load generator, the CLI `loadgen` subcommand, and the integration
//! tests.
//!
//! One TCP connection, request/reply with transparent handling of
//! asynchronous `PUSH` frames: replies are matched in order (the
//! protocol answers every request with exactly one frame), pushes that
//! arrive interleaved are buffered and retrievable with
//! [`Client::take_pushes`].

use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use swsample_core::fault::mix64;
use swsample_durable::frame::write_frame;

use crate::protocol::{
    read_server_msg, ClientMsg, ReadOutcome, ServerMsg, SubscribeKind, WireEvent, WireSample,
    PROTOCOL_VERSION,
};
use crate::stats::StatsSnapshot;

/// The server's answer to one `INGEST` attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Applied; the count of events the server acknowledged.
    Applied(u64),
    /// Rejected with backpressure; the server's queued-event count.
    Busy(u64),
}

/// Bounded exponential backoff with deterministic jitter, for `BUSY`
/// storms and reconnect loops. Delay for attempt `n` is
/// `min(cap, base * 2^n)` scaled by a seed-derived factor in
/// `[0.5, 1.0)` — the same seed replays the same pacing, so chaos runs
/// stay reproducible while concurrent clients still decorrelate.
#[derive(Debug, Clone)]
pub struct Backoff {
    /// First-retry delay.
    pub base: Duration,
    /// Delay ceiling.
    pub cap: Duration,
    /// Give up (with `TimedOut`) once an operation has been retrying
    /// this long. `None` retries forever.
    pub deadline: Option<Duration>,
    /// Jitter seed; derive per-client so concurrent backoffs don't
    /// synchronize.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff {
            base: Duration::from_micros(200),
            cap: Duration::from_millis(50),
            deadline: Some(Duration::from_secs(30)),
            seed: 0,
        }
    }
}

impl Backoff {
    /// The delay before retry `attempt` (0-based).
    pub fn delay(&self, attempt: u64) -> Duration {
        let exp = attempt.min(20) as u32;
        let raw = self
            .base
            .checked_mul(1u32 << exp)
            .unwrap_or(self.cap)
            .min(self.cap);
        // Jitter factor in [1/2, 1): 512..1024 over 1024.
        let jitter = 512 + (mix64(self.seed, 0x4a49_5454_4552, attempt) % 512);
        raw.mul_f64(jitter as f64 / 1024.0)
    }

    /// True once `started` is past the deadline (never, if unset).
    fn expired(&self, started: Instant) -> bool {
        self.deadline.is_some_and(|d| started.elapsed() >= d)
    }
}

/// A connected, HELLO-completed protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    offset: u64,
    conn_id: u64,
    template: String,
    pushes: Vec<ServerMsg>,
}

impl Client {
    /// Connect and complete the version handshake.
    pub fn connect(addr: &str, name: &str) -> io::Result<Client> {
        Client::connect_with_session(addr, name, 0)
    }

    /// Connect with a nonzero session id to opt into server-side ingest
    /// dedup: if an ack is lost (connection dropped mid-reply) the
    /// client can reconnect with the *same* session and resend the
    /// unacked batch — the server acks without reapplying anything it
    /// already applied, making retried ingest exactly-once.
    pub fn connect_with_session(addr: &str, name: &str, session: u64) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            offset: 0,
            conn_id: 0,
            template: String::new(),
            pushes: Vec::new(),
        };
        client.send(&ClientMsg::Hello {
            version: PROTOCOL_VERSION,
            name: name.to_string(),
            session,
        })?;
        match client.recv_reply()? {
            ServerMsg::HelloAck {
                conn_id, template, ..
            } => {
                client.conn_id = conn_id;
                client.template = template;
                Ok(client)
            }
            other => Err(io::Error::other(format!(
                "expected HELLO_ACK, got {other:?}"
            ))),
        }
    }

    /// The server-assigned connection id.
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// The server fleet's template spec string.
    pub fn template(&self) -> &str {
        &self.template
    }

    fn send(&mut self, msg: &ClientMsg) -> io::Result<()> {
        write_frame(&mut self.writer, &msg.encode())?;
        self.writer.flush()
    }

    /// Receive the next server frame (push or reply). Protocol failures
    /// become `io::Error`s — a client has no one to report them to.
    pub fn recv(&mut self) -> io::Result<ServerMsg> {
        match read_server_msg(&mut self.reader, &mut self.offset)? {
            ReadOutcome::Msg(msg) => Ok(msg),
            ReadOutcome::Eof => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            ReadOutcome::Bad(e) => Err(io::Error::other(e.to_string())),
        }
    }

    /// Receive the next *reply*, buffering any `PUSH` frames that
    /// arrive first.
    fn recv_reply(&mut self) -> io::Result<ServerMsg> {
        loop {
            match self.recv()? {
                msg @ ServerMsg::Push { .. } => self.pushes.push(msg),
                msg => return Ok(msg),
            }
        }
    }

    /// `PUSH` frames collected while waiting for replies.
    pub fn take_pushes(&mut self) -> Vec<ServerMsg> {
        std::mem::take(&mut self.pushes)
    }

    /// Block until the next `PUSH` frame arrives (buffered ones first).
    pub fn recv_push(&mut self) -> io::Result<ServerMsg> {
        if !self.pushes.is_empty() {
            return Ok(self.pushes.remove(0));
        }
        loop {
            if let msg @ ServerMsg::Push { .. } = self.recv()? {
                return Ok(msg);
            }
        }
    }

    /// One `INGEST` attempt: applied, or rejected with backpressure.
    pub fn ingest(&mut self, seq: u64, batch: &[WireEvent]) -> io::Result<IngestOutcome> {
        self.send(&ClientMsg::Ingest {
            seq,
            batch: batch.to_vec(),
        })?;
        match self.recv_reply()? {
            ServerMsg::IngestOk { seq: got, events } if got == seq => {
                Ok(IngestOutcome::Applied(events))
            }
            ServerMsg::Busy {
                seq: got,
                queued_events,
            } if got == seq => Ok(IngestOutcome::Busy(queued_events)),
            other => Err(io::Error::other(format!(
                "expected OK/BUSY for seq {seq}, got {other:?}"
            ))),
        }
    }

    /// `INGEST` with busy-retry under the default [`Backoff`]. Returns
    /// the number of `BUSY` rejections absorbed.
    pub fn ingest_retry(&mut self, seq: u64, batch: &[WireEvent]) -> io::Result<u64> {
        self.ingest_retry_with(seq, batch, &Backoff::default())
    }

    /// `INGEST` with busy-retry: resend on `BUSY` until applied, so no
    /// event is ever silently dropped. Waits `backoff.delay(attempt)`
    /// between attempts (bounded exponential, not a hot resend loop)
    /// and fails with `TimedOut` once past `backoff.deadline`. Returns
    /// the number of `BUSY` rejections absorbed.
    pub fn ingest_retry_with(
        &mut self,
        seq: u64,
        batch: &[WireEvent],
        backoff: &Backoff,
    ) -> io::Result<u64> {
        let started = Instant::now();
        let mut retries = 0u64;
        loop {
            match self.ingest(seq, batch)? {
                IngestOutcome::Applied(_) => return Ok(retries),
                IngestOutcome::Busy(_) => {
                    if backoff.expired(started) {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("seq {seq} still BUSY after {retries} retries"),
                        ));
                    }
                    std::thread::sleep(backoff.delay(retries));
                    retries += 1;
                }
            }
        }
    }

    /// Apply a socket read timeout, so a server stall (or a corrupted
    /// length prefix) surfaces as `WouldBlock`/`TimedOut` instead of
    /// hanging the client forever. `None` restores blocking reads.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Query a key's current `k`-sample.
    pub fn query(&mut self, key: u64) -> io::Result<Option<Vec<WireSample>>> {
        self.send(&ClientMsg::Query { key })?;
        match self.recv_reply()? {
            ServerMsg::Samples { key: got, samples } if got == key => Ok(samples),
            other => Err(io::Error::other(format!(
                "expected SAMPLES for key {key}, got {other:?}"
            ))),
        }
    }

    /// Register a standing query; returns the subscription id.
    pub fn subscribe(
        &mut self,
        kind: SubscribeKind,
        key: u64,
        every_ticks: u64,
        threshold: u64,
    ) -> io::Result<u64> {
        self.send(&ClientMsg::Subscribe {
            kind,
            key,
            every_ticks,
            threshold,
        })?;
        match self.recv_reply()? {
            ServerMsg::SubAck { id } => Ok(id),
            other => Err(io::Error::other(format!("expected SUB_ACK, got {other:?}"))),
        }
    }

    /// Fetch a consistent stats snapshot.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        self.send(&ClientMsg::Stats)?;
        match self.recv_reply()? {
            ServerMsg::StatsReply(snapshot) => Ok(snapshot),
            other => Err(io::Error::other(format!(
                "expected STATS_REPLY, got {other:?}"
            ))),
        }
    }

    /// Orderly close.
    pub fn bye(mut self) -> io::Result<()> {
        self.send(&ClientMsg::Bye)?;
        match self.recv_reply()? {
            ServerMsg::Bye => Ok(()),
            other => Err(io::Error::other(format!("expected BYE, got {other:?}"))),
        }
    }

    /// Ask the server to shut down gracefully (drain, fsync, final
    /// snapshot). The server answers `BYE` before it starts draining.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.send(&ClientMsg::Shutdown)?;
        match self.recv_reply()? {
            ServerMsg::Bye => Ok(()),
            other => Err(io::Error::other(format!("expected BYE, got {other:?}"))),
        }
    }
}
