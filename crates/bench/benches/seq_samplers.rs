//! Criterion bench for experiments E1/E2: per-element insert cost of the
//! sequence-window samplers (Theorems 2.1 / 2.2) across window sizes and
//! sample counts `k`, plus query cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use swsample_core::seq::{SeqSamplerWor, SeqSamplerWr};
use swsample_core::WindowSampler;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_insert");
    group.throughput(Throughput::Elements(1));
    for &n in &[1024u64, 65_536] {
        for &k in &[1usize, 8, 64] {
            group.bench_with_input(
                BenchmarkId::new("wr", format!("n{n}_k{k}")),
                &(n, k),
                |b, &(n, k)| {
                    let mut s = SeqSamplerWr::new(n, k, SmallRng::seed_from_u64(1));
                    let mut i = 0u64;
                    b.iter(|| {
                        s.insert(black_box(i));
                        i += 1;
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new("wor", format!("n{n}_k{k}")),
                &(n, k),
                |b, &(n, k)| {
                    let mut s = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(2));
                    let mut i = 0u64;
                    b.iter(|| {
                        s.insert(black_box(i));
                        i += 1;
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_query");
    for &k in &[1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("wr_sample_k", k), &k, |b, &k| {
            let mut s = SeqSamplerWr::new(4096, k, SmallRng::seed_from_u64(3));
            for i in 0..10_000u64 {
                s.insert(i);
            }
            b.iter(|| black_box(s.sample_k()));
        });
        group.bench_with_input(BenchmarkId::new("wor_sample_k", k), &k, |b, &k| {
            let mut s = SeqSamplerWor::new(4096, k, SmallRng::seed_from_u64(4));
            for i in 0..10_000u64 {
                s.insert(i);
            }
            b.iter(|| black_box(s.sample_k()));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_insert, bench_query
}
criterion_main!(benches);
