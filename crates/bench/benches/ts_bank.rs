//! Criterion group `e8_ts_bank`: per-element ingestion cost of the fused
//! `TsEngineBank` samplers against the retained independent-engine
//! construction, across `k` — the ablation behind the `ts_wr_speedup_k64`
//! field of `BENCH_throughput.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use swsample_core::ts::{TsSamplerWor, TsSamplerWr};
use swsample_core::WindowSampler;

fn bench_bank_vs_independent(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_ts_bank");
    group.throughput(Throughput::Elements(1));
    let t0 = 1024u64;
    for &k in &[16usize, 64] {
        for (label, fused) in [("fused", true), ("independent", false)] {
            group.bench_with_input(
                BenchmarkId::new(format!("wr_{label}"), format!("k{k}")),
                &k,
                |b, &k| {
                    let mut s = if fused {
                        TsSamplerWr::new(t0, k, SmallRng::seed_from_u64(1))
                    } else {
                        TsSamplerWr::independent(t0, k, SmallRng::seed_from_u64(1))
                    };
                    let mut tick = 0u64;
                    let mut i = 0u64;
                    b.iter(|| {
                        // 4 arrivals per tick.
                        if i.is_multiple_of(4) {
                            tick += 1;
                            s.advance_time(tick);
                        }
                        s.insert(black_box(i));
                        i += 1;
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("wor_{label}"), format!("k{k}")),
                &k,
                |b, &k| {
                    let mut s = if fused {
                        TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(2))
                    } else {
                        TsSamplerWor::independent(t0, k, SmallRng::seed_from_u64(2))
                    };
                    let mut tick = 0u64;
                    let mut i = 0u64;
                    b.iter(|| {
                        if i.is_multiple_of(4) {
                            tick += 1;
                            s.advance_time(tick);
                        }
                        s.insert(black_box(i));
                        i += 1;
                    });
                },
            );
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bank_vs_independent
}
criterion_main!(benches);
