//! The CLI subcommands, written against generic readers/writers so the
//! tests can drive them end-to-end in memory.
//!
//! Input formats:
//! * `seq` — one value per line (arbitrary UTF-8 token).
//! * `ts` — `<timestamp> <value>` per line, non-decreasing timestamps.
//! * `agg` — `<timestamp> <numeric value>` per line.
//! * `gen` — no input; emits a synthetic workload for piping.

use crate::args::{ArgError, Args};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{BufRead, Write};
use swsample_core::seq::{SeqSamplerWor, SeqSamplerWr};
use swsample_core::ts::{TsSamplerWor, TsSamplerWr};
use swsample_core::{MemoryWords, WindowSampler};
use swsample_query::TsAggregator;
use swsample_stream::{BurstyArrivals, SteadyArrivals, UniformGen, ZipfGen};

/// Run one subcommand against the given input/output. Returns an error
/// message suitable for the user.
pub fn run(args: &Args, input: &mut dyn BufRead, out: &mut dyn Write) -> Result<(), String> {
    let res = match args.command.as_str() {
        "seq" => cmd_seq(args, input, out),
        "ts" => cmd_ts(args, input, out),
        "agg" => cmd_agg(args, input, out),
        "gen" => cmd_gen(args, out),
        "help" | "--help" => write_help(out).map_err(|e| ArgError(e.to_string())),
        other => Err(ArgError(format!(
            "unknown subcommand `{other}` (try `help`)"
        ))),
    };
    res.map_err(|e| e.to_string())
}

/// Usage text.
pub fn write_help(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "swsample — uniform random sampling from sliding windows\n\
         (Braverman–Ostrovsky–Zaniolo, PODS 2009)\n\n\
         USAGE: swsample <COMMAND> [--flag value]...\n\n\
         COMMANDS\n\
           seq   sample the last N lines of stdin (chunked skip-ahead ingestion)\n\
                 --window N [--k K] [--wor] [--report-every M] [--seed S]\n\
                 [--batch-size B]\n\
           ts    sample a timestamped stream (`<ts> <value>` lines)\n\
                 --window T0 [--k K] [--wor] [--report-every M] [--seed S]\n\
                 [--batch-size B]\n\
           agg   approximate aggregates over a timestamped numeric stream\n\
                 --window T0 [--k K] [--epsilon E] [--report-every M] [--seed S]\n\
           gen   emit a synthetic workload (pipe into the other commands)\n\
                 --kind uniform|zipf|bursty --count N [--domain D] [--theta T]\n\
                 [--max-burst B] [--seed S]\n\
           help  this text\n\n\
         seq/ts ingest stdin in batches of --batch-size lines (default 512)\n\
         and report end-of-run throughput on stderr."
    )
}

/// End-of-run ingestion throughput, reported on stderr so it never mixes
/// with the sample stream on stdout.
fn report_throughput(count: u64, elapsed: std::time::Duration) {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        eprintln!(
            "# throughput: {count} elements in {secs:.3}s ({:.0} elems/s)",
            count as f64 / secs
        );
    } else {
        eprintln!("# throughput: {count} elements in <1ms");
    }
}

/// Parse and validate the `--batch-size` flag (chunk length for batched
/// stdin ingestion).
fn batch_size(args: &Args) -> Result<usize, ArgError> {
    let b: usize = args.get_or("batch-size", 512)?;
    if b == 0 {
        return Err(ArgError("--batch-size must be at least 1".into()));
    }
    Ok(b)
}

fn cmd_seq(args: &Args, input: &mut dyn BufRead, out: &mut dyn Write) -> Result<(), ArgError> {
    let window: u64 = args.require("window")?;
    let k: usize = args.get_or("k", 1)?;
    let every: u64 = args.get_or("report-every", 0)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let wor = args.has("wor");
    let io_err = |e: std::io::Error| ArgError(format!("io error: {e}"));

    let batch = batch_size(args)?;

    let mut wr = (!wor).then(|| SeqSamplerWr::new(window, k, SmallRng::seed_from_u64(seed)));
    let mut wo = wor.then(|| SeqSamplerWor::new(window, k, SmallRng::seed_from_u64(seed)));
    let start = std::time::Instant::now();
    let mut buf: Vec<String> = Vec::with_capacity(batch);
    let mut count = 0u64;
    // Chunked ingestion: lines accumulate into `buf` and enter the sampler
    // through the skip-ahead `insert_batch` path. Chunks are flushed at
    // `--batch-size` and at every report boundary, so `--report-every`
    // cadence is unchanged from per-line ingestion.
    for line in input.lines() {
        let value = line.map_err(io_err)?;
        if value.is_empty() {
            continue;
        }
        buf.push(value);
        count += 1;
        let at_report = every > 0 && count.is_multiple_of(every);
        if buf.len() >= batch || at_report {
            flush_seq(&mut wr, &mut wo, &mut buf);
            if at_report {
                report_seq(out, count, &mut wr, &mut wo).map_err(io_err)?;
            }
        }
    }
    if count == 0 {
        return Err(ArgError("no input".into()));
    }
    flush_seq(&mut wr, &mut wo, &mut buf);
    report_throughput(count, start.elapsed());
    report_seq(out, count, &mut wr, &mut wo).map_err(io_err)?;
    let words = wr
        .as_ref()
        .map(|s| s.memory_words())
        .or(wo.as_ref().map(|s| s.memory_words()));
    writeln!(
        out,
        "# memory: {} words (deterministic)",
        words.expect("one sampler")
    )
    .map_err(io_err)?;
    Ok(())
}

fn flush_seq(
    wr: &mut Option<SeqSamplerWr<String, SmallRng>>,
    wo: &mut Option<SeqSamplerWor<String, SmallRng>>,
    buf: &mut Vec<String>,
) {
    if buf.is_empty() {
        return;
    }
    if let Some(s) = wr.as_mut() {
        s.insert_batch(buf);
    }
    if let Some(s) = wo.as_mut() {
        s.insert_batch(buf);
    }
    buf.clear();
}

fn report_seq(
    out: &mut dyn Write,
    count: u64,
    wr: &mut Option<SeqSamplerWr<String, SmallRng>>,
    wo: &mut Option<SeqSamplerWor<String, SmallRng>>,
) -> std::io::Result<()> {
    let samples = match (wr, wo) {
        (Some(s), _) => s.sample_k(),
        (_, Some(s)) => s.sample_k(),
        _ => unreachable!("one sampler is always configured"),
    };
    if let Some(samples) = samples {
        let rendered: Vec<String> = samples
            .iter()
            .map(|s| format!("{}@{}", s.value(), s.index()))
            .collect();
        writeln!(out, "{count}\t{}", rendered.join(" "))?;
    }
    Ok(())
}

/// Parse a `<ts> <rest>` line.
fn split_timestamped(line: &str) -> Result<(u64, &str), ArgError> {
    let mut parts = line.splitn(2, char::is_whitespace);
    let ts: u64 = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ArgError(format!("bad timestamp in line `{line}`")))?;
    let rest = parts.next().unwrap_or("").trim();
    if rest.is_empty() {
        return Err(ArgError(format!("missing value in line `{line}`")));
    }
    Ok((ts, rest))
}

fn cmd_ts(args: &Args, input: &mut dyn BufRead, out: &mut dyn Write) -> Result<(), ArgError> {
    let window: u64 = args.require("window")?;
    let k: usize = args.get_or("k", 1)?;
    let every: u64 = args.get_or("report-every", 0)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let wor = args.has("wor");
    let io_err = |e: std::io::Error| ArgError(format!("io error: {e}"));

    let batch = batch_size(args)?;

    let mut wr = (!wor).then(|| TsSamplerWr::new(window, k, SmallRng::seed_from_u64(seed)));
    let mut wo = wor.then(|| TsSamplerWor::new(window, k, SmallRng::seed_from_u64(seed)));
    let start = std::time::Instant::now();
    // Chunked ingestion: consecutive same-timestamp lines accumulate and
    // enter the samplers through one `advance_and_insert` call. Chunks
    // flush on a timestamp change, at `--batch-size`, and at report
    // boundaries (keeping `--report-every` cadence identical to per-line
    // ingestion).
    let mut buf: Vec<String> = Vec::with_capacity(batch);
    let mut buf_ts: u64 = 0;
    let mut count = 0u64;
    for line in input.lines() {
        let line = line.map_err(io_err)?;
        if line.trim().is_empty() {
            continue;
        }
        let (ts, value) = split_timestamped(&line)?;
        if ts != buf_ts && !buf.is_empty() {
            flush_ts(&mut wr, &mut wo, buf_ts, &mut buf);
        }
        buf_ts = ts;
        buf.push(value.to_string());
        count += 1;
        let at_report = every > 0 && count.is_multiple_of(every);
        if buf.len() >= batch || at_report {
            flush_ts(&mut wr, &mut wo, buf_ts, &mut buf);
            if at_report {
                report_ts(out, count, &mut wr, &mut wo).map_err(io_err)?;
            }
        }
    }
    if count == 0 {
        return Err(ArgError("no input".into()));
    }
    flush_ts(&mut wr, &mut wo, buf_ts, &mut buf);
    report_throughput(count, start.elapsed());
    report_ts(out, count, &mut wr, &mut wo).map_err(io_err)?;
    let words = wr
        .as_ref()
        .map(|s| s.memory_words())
        .or(wo.as_ref().map(|s| s.memory_words()));
    writeln!(
        out,
        "# memory: {} words (deterministic O(k log n))",
        words.expect("one sampler")
    )
    .map_err(io_err)?;
    Ok(())
}

fn flush_ts(
    wr: &mut Option<TsSamplerWr<String, SmallRng>>,
    wo: &mut Option<TsSamplerWor<String, SmallRng>>,
    ts: u64,
    buf: &mut Vec<String>,
) {
    if buf.is_empty() {
        return;
    }
    if let Some(s) = wr.as_mut() {
        s.advance_and_insert(ts, buf);
    }
    if let Some(s) = wo.as_mut() {
        s.advance_and_insert(ts, buf);
    }
    buf.clear();
}

fn report_ts(
    out: &mut dyn Write,
    count: u64,
    wr: &mut Option<TsSamplerWr<String, SmallRng>>,
    wo: &mut Option<TsSamplerWor<String, SmallRng>>,
) -> std::io::Result<()> {
    let samples = match (wr, wo) {
        (Some(s), _) => s.sample_k(),
        (_, Some(s)) => s.sample_k(),
        _ => unreachable!("one sampler is always configured"),
    };
    match samples {
        Some(samples) => {
            let rendered: Vec<String> = samples
                .iter()
                .map(|s| format!("{}@t{}", s.value(), s.timestamp()))
                .collect();
            writeln!(out, "{count}\t{}", rendered.join(" "))
        }
        None => writeln!(out, "{count}\t(window empty)"),
    }
}

fn cmd_agg(args: &Args, input: &mut dyn BufRead, out: &mut dyn Write) -> Result<(), ArgError> {
    let window: u64 = args.require("window")?;
    let k: usize = args.get_or("k", 64)?;
    let epsilon: f64 = args.get_or("epsilon", 0.05)?;
    let every: u64 = args.get_or("report-every", 0)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let io_err = |e: std::io::Error| ArgError(format!("io error: {e}"));

    let mut agg = TsAggregator::new(window, k, epsilon, SmallRng::seed_from_u64(seed));
    let mut count = 0u64;
    for line in input.lines() {
        let line = line.map_err(io_err)?;
        if line.trim().is_empty() {
            continue;
        }
        let (ts, rest) = split_timestamped(&line)?;
        let value: u64 = rest
            .parse()
            .map_err(|_| ArgError(format!("bad numeric value `{rest}`")))?;
        agg.advance_time(ts);
        agg.insert(value);
        count += 1;
        if every > 0 && count.is_multiple_of(every) {
            report_agg(out, count, &mut agg).map_err(io_err)?;
        }
    }
    if count == 0 {
        return Err(ArgError("no input".into()));
    }
    report_agg(out, count, &mut agg).map_err(io_err)?;
    writeln!(out, "# memory: {} words", agg.memory_words()).map_err(io_err)?;
    Ok(())
}

fn report_agg(
    out: &mut dyn Write,
    count: u64,
    agg: &mut TsAggregator<SmallRng>,
) -> std::io::Result<()> {
    match (agg.estimate(), agg.quantile(0.5), agg.quantile(0.99)) {
        (Some(est), Some(p50), Some(p99)) => writeln!(
            out,
            "{count}\tcount~{:.0}\tmean~{:.2}\tsum~{:.0}\tp50~{p50}\tp99~{p99}",
            est.count, est.mean, est.sum
        ),
        _ => writeln!(out, "{count}\t(window empty)"),
    }
}

fn cmd_gen(args: &Args, out: &mut dyn Write) -> Result<(), ArgError> {
    let kind: String = args.require("kind")?;
    let count: u64 = args.require("count")?;
    let domain: u64 = args.get_or("domain", 1000)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let io_err = |e: std::io::Error| ArgError(format!("io error: {e}"));
    let mut rng = SmallRng::seed_from_u64(seed);
    match kind.as_str() {
        "uniform" => {
            let mut gen = SteadyArrivals::new(UniformGen::new(domain));
            for _ in 0..count {
                let ev = gen.next_event(&mut rng);
                writeln!(out, "{} {}", ev.timestamp, ev.value).map_err(io_err)?;
            }
        }
        "zipf" => {
            let theta: f64 = args.get_or("theta", 1.1)?;
            let mut gen = SteadyArrivals::new(ZipfGen::new(domain, theta));
            for _ in 0..count {
                let ev = gen.next_event(&mut rng);
                writeln!(out, "{} {}", ev.timestamp, ev.value).map_err(io_err)?;
            }
        }
        "bursty" => {
            let max_burst: u64 = args.get_or("max-burst", 8)?;
            let mut gen = BurstyArrivals::new(UniformGen::new(domain), max_burst);
            for _ in 0..count {
                let ev = gen.next_event(&mut rng);
                writeln!(out, "{} {}", ev.timestamp, ev.value).map_err(io_err)?;
            }
        }
        other => return Err(ArgError(format!("unknown workload kind `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use std::io::Cursor;

    fn run_cmd(cmdline: &str, input: &str) -> Result<String, String> {
        let args =
            Args::parse(cmdline.split_whitespace().map(String::from)).map_err(|e| e.to_string())?;
        let mut out = Vec::new();
        let mut cur = Cursor::new(input.as_bytes().to_vec());
        run(&args, &mut cur, &mut out).map(|()| String::from_utf8(out).expect("utf8"))
    }

    #[test]
    fn seq_samples_from_window() {
        let input: String = (0..100).map(|i| format!("v{i}\n")).collect();
        let out = run_cmd("seq --window 10 --k 3 --seed 1", &input).expect("runs");
        // Final report: all samples from v90..v99.
        let line = out.lines().next().expect("report line");
        assert!(line.starts_with("100\t"));
        for tok in line.split_whitespace().skip(1) {
            let idx: u64 = tok
                .split('@')
                .nth(1)
                .expect("@index")
                .parse()
                .expect("index");
            assert!(idx >= 90, "sample {tok} outside window");
        }
        assert!(out.contains("# memory:"));
    }

    #[test]
    fn seq_wor_distinct() {
        let input: String = (0..50).map(|i| format!("{i}\n")).collect();
        let out = run_cmd("seq --window 20 --k 5 --wor --seed 2", &input).expect("runs");
        let line = out.lines().next().expect("report");
        let idx: Vec<&str> = line.split_whitespace().skip(1).collect();
        assert_eq!(idx.len(), 5);
        let mut set: Vec<&str> = idx.clone();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 5, "duplicates in WOR output");
    }

    #[test]
    fn ts_respects_window() {
        let mut input = String::new();
        for t in 0..100u64 {
            input.push_str(&format!("{t} item{t}\n"));
        }
        let out = run_cmd("ts --window 5 --k 2 --seed 3", &input).expect("runs");
        let line = out.lines().next().expect("report");
        for tok in line.split_whitespace().skip(1) {
            let ts: u64 = tok.split("@t").nth(1).expect("@t").parse().expect("ts");
            assert!(ts >= 95, "expired sample {tok}");
        }
    }

    #[test]
    fn agg_reports_estimates() {
        let mut input = String::new();
        for t in 0..200u64 {
            input.push_str(&format!("{t} {}\n", t % 10));
        }
        let out = run_cmd("agg --window 50 --k 16 --seed 4", &input).expect("runs");
        assert!(out.contains("count~"), "{out}");
        assert!(out.contains("p99~"));
    }

    #[test]
    fn gen_produces_parseable_workload() {
        let out = run_cmd("gen --kind zipf --count 50 --domain 10 --seed 5", "").expect("runs");
        assert_eq!(out.lines().count(), 50);
        for line in out.lines() {
            let (_ts, v) = split_timestamped(line).expect("parse");
            let v: u64 = v.parse().expect("numeric");
            assert!(v < 10);
        }
    }

    #[test]
    fn gen_pipes_into_ts() {
        let workload =
            run_cmd("gen --kind bursty --count 200 --domain 100 --seed 6", "").expect("gen");
        let out = run_cmd("ts --window 10 --k 3 --wor --seed 7", &workload).expect("ts");
        assert!(out.lines().next().expect("report").starts_with("200\t"));
    }

    #[test]
    fn periodic_reports() {
        let input: String = (0..100).map(|i| format!("{i}\n")).collect();
        let out =
            run_cmd("seq --window 10 --k 1 --report-every 25 --seed 8", &input).expect("runs");
        // Reports at 25, 50, 75, 100 + final (100 repeats) + memory line.
        let reports = out.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(reports, 5);
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_cmd("seq", "").is_err(), "missing --window");
        assert!(
            run_cmd("nope --window 5", "").is_err(),
            "unknown subcommand"
        );
        assert!(
            run_cmd("ts --window 5", "not-a-ts x\n").is_err(),
            "bad timestamp"
        );
        assert!(run_cmd("seq --window 5", "").is_err(), "empty input");
        assert!(
            run_cmd("gen --kind weird --count 5", "").is_err(),
            "unknown kind"
        );
    }

    #[test]
    fn help_prints_usage() {
        let out = run_cmd("help", "").expect("help");
        assert!(out.contains("USAGE"));
        assert!(out.contains("seq"));
        assert!(out.contains("batch-size"));
    }

    #[test]
    fn seq_batch_size_respects_window_and_reports() {
        let input: String = (0..100).map(|i| format!("v{i}\n")).collect();
        for bs in [1usize, 7, 100, 4096] {
            let out = run_cmd(
                &format!("seq --window 10 --k 3 --seed 1 --batch-size {bs}"),
                &input,
            )
            .expect("runs");
            let line = out.lines().next().expect("report line");
            assert!(line.starts_with("100\t"), "batch={bs}: {line}");
            for tok in line.split_whitespace().skip(1) {
                let idx: u64 = tok
                    .split('@')
                    .nth(1)
                    .expect("@index")
                    .parse()
                    .expect("index");
                assert!(idx >= 90, "batch={bs}: sample {tok} outside window");
            }
        }
    }

    #[test]
    fn seq_batching_keeps_report_cadence() {
        let input: String = (0..100).map(|i| format!("{i}\n")).collect();
        let out = run_cmd(
            "seq --window 10 --k 1 --report-every 25 --seed 8 --batch-size 64",
            &input,
        )
        .expect("runs");
        // Same cadence as the unbatched run: 25, 50, 75, 100 + final.
        let reports = out.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(reports, 5);
    }

    #[test]
    fn ts_batch_size_respects_window() {
        let mut input = String::new();
        for t in 0..50u64 {
            for j in 0..3u64 {
                input.push_str(&format!("{t} item{t}_{j}\n"));
            }
        }
        for bs in [1usize, 5, 1000] {
            let out = run_cmd(
                &format!("ts --window 5 --k 2 --seed 3 --batch-size {bs}"),
                &input,
            )
            .expect("runs");
            let line = out.lines().next().expect("report");
            for tok in line.split_whitespace().skip(1) {
                let ts: u64 = tok.split("@t").nth(1).expect("@t").parse().expect("ts");
                assert!(ts >= 45, "batch={bs}: expired sample {tok}");
            }
        }
    }

    #[test]
    fn zero_batch_size_is_an_error() {
        let input = "a\nb\n";
        assert!(run_cmd("seq --window 2 --batch-size 0", input).is_err());
        assert!(run_cmd("ts --window 2 --batch-size 0", "0 a\n").is_err());
    }
}
