//! `bench_throughput` — regenerate `BENCH_throughput.json`, the repo's
//! machine-readable ingestion-throughput baseline.
//!
//! ```text
//! bench_throughput                        # full suite -> BENCH_throughput.json
//! bench_throughput --quick --out /tmp/t.json   # CI smoke shape
//! ```
//!
//! The suite is seeded and the sampler/config matrix is fixed, so the only
//! run-to-run variance is wall-clock noise; `rng_draws` columns are exact
//! and fully reproducible. The binary validates the JSON it wrote (with
//! the bench crate's own parser) and exits non-zero if it does not parse —
//! the CI smoke step relies on that plus an external `json.tool` pass.
//!
//! Run it from the repo root with `cargo run --release -p swsample-bench
//! --bin bench_throughput`; always use `--release`, a debug-profile
//! baseline would be meaningless.

use swsample_bench::throughput::{
    durable_wal_overhead_100k, machine, multi_100k_speedup, multi_soa_100k_speedup,
    multi_soa_vs_erased_100k, parallel_t4_efficiency_100k, parallel_t8_overhead, params,
    run_durable, run_multi, run_parallel, run_server, run_with, server_e2e_100k_vs_direct, speedup,
    to_json, DURABLE_WAL_100K_GATE, MULTI_SOA_100K_GATE, PARALLEL_T4_EFFICIENCY_GATE,
    PARALLEL_T8_OVERHEAD_GATE, SERVER_E2E_100K_GATE,
};
use swsample_bench::{json, table_header, table_row};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let max_threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--threads: numeric"));
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: bench_throughput [--quick] [--out PATH] [--threads MAX]");
        return;
    }

    let mut p = params(quick);
    if let Some(max) = max_threads {
        p.multi_threads.retain(|&t| t <= max.max(1));
    }
    eprintln!(
        "running throughput suite ({}; {} configurations)...",
        if quick { "quick" } else { "full" },
        p.ks.len() * (p.ns.len() * 12 + 2)
    );
    let rows = run_with(&p);

    table_header(
        "ingestion throughput (batched API, seeded streams)",
        &["sampler", "win", "k", "n", "elems/s", "draws/elem"],
    );
    for r in &rows {
        table_row(&[
            r.sampler.into(),
            r.discipline.into(),
            r.k.to_string(),
            r.n.to_string(),
            format!("{:.0}", r.elems_per_sec),
            format!("{:.4}", r.rng_draws as f64 / r.elements as f64),
        ]);
    }
    if let Some(s) = speedup(&rows, "seq_wr_skip", "seq_wr_naive", 64, 100_000) {
        println!("\nseq-WR skip vs naive at k=64, n=1e5: {s:.1}x elems/sec");
        if s < 5.0 {
            // Hard gate: never write a baseline artifact that violates the
            // acceptance bar (tests/skip_equivalence.rs re-checks the
            // committed file, so a regression cannot slip through either).
            eprintln!("bench_throughput: skip-path speedup {s:.1}x below the 5x acceptance bar");
            std::process::exit(1);
        }
    }
    for (fused, indep, label) in [
        ("ts_wr", "ts_wr_indep", "ts-WR"),
        ("ts_wor", "ts_wor_indep", "ts-WOR"),
    ] {
        if let Some(s) = speedup(&rows, fused, indep, 64, 100_000) {
            println!("{label} fused bank vs independent engines at k=64, n=1e5: {s:.1}x elems/sec");
            if s < 5.0 {
                eprintln!(
                    "bench_throughput: {label} bank speedup {s:.1}x below the 5x acceptance bar"
                );
                std::process::exit(1);
            }
        }
    }
    // The fused ts rows are draw-gated: ingestion must cost at most
    // k/32 + 1 RNG words per element (packed merge-coin bits), in quick
    // and full shapes alike. CI re-asserts this on the emitted JSON.
    for r in rows
        .iter()
        .filter(|r| r.sampler == "ts_wr" || r.sampler == "ts_wor")
    {
        let dpe = r.rng_draws as f64 / r.elements as f64;
        let bound = r.k as f64 / 32.0 + 1.0;
        if dpe > bound {
            eprintln!(
                "bench_throughput: {} k={} draws/element {dpe:.4} above the k/32+1 bound {bound}",
                r.sampler, r.k
            );
            std::process::exit(1);
        }
    }
    // The priority_topk lazy-eviction rebuild: 1 draw/element sampling
    // must never be slower than full k-draw priority sampling at k = 64
    // (the PR-4 artifact had it *under* — 0.88M vs 1.1M elems/s).
    for &n in &p.ns {
        if let Some(s) = speedup(&rows, "priority_topk", "priority", 64, n) {
            println!("GL top-k vs k-draw priority at k=64, n={n}: {s:.1}x elems/sec");
            if s < 1.0 {
                eprintln!(
                    "bench_throughput: priority_topk {s:.2}x slower than priority at k=64, n={n}"
                );
                std::process::exit(1);
            }
        }
    }

    let m = machine();
    println!("\nmachine: {} logical cores, {}", m.cores, m.model);

    let multi = run_multi(&p);
    table_header(
        "multi-stream engine (zipf-keyed fleet, seq-WR template, batched keyed ingest)",
        &[
            "backend",
            "keys",
            "k",
            "shards",
            "cold elems/s",
            "sustained elems/s",
            "keys touched",
            "fleet words",
            "max key words",
        ],
    );
    for r in &multi {
        table_row(&[
            r.backend.into(),
            r.keys.to_string(),
            r.k.to_string(),
            r.shards.to_string(),
            format!("{:.0}", r.elems_per_sec),
            format!("{:.0}", r.sustained_elems_per_sec),
            r.keys_touched.to_string(),
            r.memory_words.to_string(),
            r.max_key_words.to_string(),
        ]);
    }

    let parallel = run_parallel(&p);
    table_header(
        "parallel ingestion (work-stealing shard-run scheduler, seq-WR template)",
        &[
            "backend",
            "keys",
            "k",
            "shards",
            "threads",
            "batch",
            "fleet elems/s",
            "units",
            "steals",
            "imbalance",
        ],
    );
    for r in &parallel {
        table_row(&[
            r.backend.into(),
            r.keys.to_string(),
            r.k.to_string(),
            r.shards.to_string(),
            r.threads.to_string(),
            r.batch.to_string(),
            format!("{:.0}", r.elems_per_sec),
            r.units.to_string(),
            r.steals.to_string(),
            format!("{:.2}", r.imbalance),
        ]);
    }
    if let Some(s) = multi_100k_speedup(&parallel) {
        println!(
            "\nslab+parallel engine vs PR-3 committed baseline at 100k keys, k=16: {s:.2}x \
             (best thread count)"
        );
        if s < 2.0 {
            // Hard gate: the engine redesign's acceptance bar. Like the
            // other gates, it only fires when the sweep includes the
            // acceptance configuration (full mode).
            eprintln!("bench_throughput: multi_100k_speedup {s:.2}x below the 2x acceptance bar");
            std::process::exit(1);
        }
    }
    if let Some(s) = multi_soa_100k_speedup(&multi) {
        println!(
            "soa fleet backend (sustained) vs v3 committed erased figure at 100k keys, k=16: \
             {s:.2}x"
        );
        if s < MULTI_SOA_100K_GATE {
            // Hard gate: the SoA backend's acceptance bar. The level is
            // set by the accept-RNG compute floor of this workload — see
            // V3_MULTI_100K_ELEMS_PER_SEC's docs for the accounting.
            eprintln!(
                "bench_throughput: multi_soa_100k_speedup {s:.2}x below the \
                 {MULTI_SOA_100K_GATE}x acceptance bar"
            );
            std::process::exit(1);
        }
    }
    if let Some(s) = multi_soa_vs_erased_100k(&multi) {
        println!("soa vs erased backend, sustained, same run, 100k keys: {s:.2}x");
        if s < 1.0 {
            eprintln!("bench_throughput: soa backend slower than erased at 100k keys ({s:.2}x)");
            std::process::exit(1);
        }
    }
    for (keys, label) in [(1_000u64, "1k"), (100_000u64, "100k")] {
        if let Some(s) = parallel_t8_overhead(&parallel, keys) {
            println!("work-stealing 8-thread vs serial at {label} keys (worse backend): {s:.2}x");
            if s < PARALLEL_T8_OVERHEAD_GATE {
                // Hard gate, armed on any host: the scheduler's fixed
                // per-batch cost (partition + epoch handshake) must not
                // eat more than 10% of serial throughput even when all
                // 8 workers share one core.
                eprintln!(
                    "bench_throughput: parallel_t8_overhead_{label} {s:.2}x below the \
                     {PARALLEL_T8_OVERHEAD_GATE}x acceptance bar"
                );
                std::process::exit(1);
            }
        }
    }
    if let Some(s) = parallel_t4_efficiency_100k(&parallel) {
        println!("work-stealing 4-thread vs serial at 100k keys (better backend): {s:.2}x");
        if m.cores > 1 && s < PARALLEL_T4_EFFICIENCY_GATE {
            // Hard gate, armed only on parallel hosts: with real cores
            // available, 4 workers must actually scale.
            eprintln!(
                "bench_throughput: parallel_t4_efficiency_100k {s:.2}x below the \
                 {PARALLEL_T4_EFFICIENCY_GATE}x acceptance bar (cores={})",
                m.cores
            );
            std::process::exit(1);
        }
    }

    let durable = run_durable(&p);
    table_header(
        "durable pipeline (WAL + snapshots over the keyed fleet, seq-WR template)",
        &["mode", "keys", "k", "snap every", "elems/s", "recovery s"],
    );
    for r in &durable {
        table_row(&[
            r.mode.into(),
            r.keys.to_string(),
            r.k.to_string(),
            r.snapshot_every.to_string(),
            format!("{:.0}", r.elems_per_sec),
            format!("{:.3}", r.recovery_seconds),
        ]);
    }
    if let Some(s) = durable_wal_overhead_100k(&durable) {
        println!("\nWAL-on vs WAL-off ingest at 100k keys: {s:.2}x");
        if s < DURABLE_WAL_100K_GATE {
            // Hard gate: the durability tax must stay a bandwidth tax.
            // Dropping under 0.7x means an fsync or allocation snuck
            // into the per-batch path.
            eprintln!(
                "bench_throughput: durable_wal_overhead_100k {s:.2}x below the \
                 {DURABLE_WAL_100K_GATE}x acceptance bar"
            );
            std::process::exit(1);
        }
    }

    let server = run_server(&p);
    table_header(
        "end-to-end serving (loopback TCP server + load generator, seq-WR template)",
        &[
            "conns",
            "keys",
            "elems/s",
            "p50 us",
            "p99 us",
            "busy",
            "direct elems/s",
        ],
    );
    for r in &server {
        table_row(&[
            r.connections.to_string(),
            r.keys.to_string(),
            format!("{:.0}", r.elems_per_sec),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
            r.busy.to_string(),
            format!("{:.0}", r.direct_elems_per_sec),
        ]);
    }
    if let Some(s) = server_e2e_100k_vs_direct(&server) {
        println!(
            "\nend-to-end server vs same-run direct ingest at 100k keys: {s:.2}x (best conns)"
        );
        if s < SERVER_E2E_100K_GATE {
            // Hard gate: the serving tax must stay a framing/bandwidth
            // tax. Dropping under 0.5x means the pipeline serialized —
            // a per-batch sync round trip, queue thrash, or a blocking
            // writer snuck into the hot path.
            eprintln!(
                "bench_throughput: server_e2e_100k_vs_direct {s:.2}x below the \
                 {SERVER_E2E_100K_GATE}x acceptance bar"
            );
            std::process::exit(1);
        }
    }

    let doc = to_json(&rows, &multi, &parallel, &durable, &server, quick);
    if let Err(e) = json::validate(&doc) {
        eprintln!("bench_throughput: emitted invalid JSON ({e}) — refusing to write");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("bench_throughput: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    // Re-read and re-validate: the committed artifact itself must parse.
    match std::fs::read_to_string(&out_path) {
        Ok(back) => {
            if let Err(e) = json::validate(&back) {
                eprintln!("bench_throughput: {out_path} does not re-parse ({e})");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("bench_throughput: cannot re-read {out_path}: {e}");
            std::process::exit(1);
        }
    }
    println!("\nwrote {out_path} ({} rows, validated)", rows.len());
}
