//! Server observability: the counters behind the `STATS` frame and the
//! shutdown metrics line.
//!
//! All global counters live behind one mutex so a [`StatsSnapshot`] is
//! *atomic* — every field comes from the same instant, no torn reads
//! across counters. Per-connection counters are folded in under the
//! same pass.

use swsample_core::state::{StateError, StateReader, StateWriter};

/// Global server counters (one consistent view).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GlobalStats {
    /// Events received in `INGEST` frames (whether or not enqueued).
    pub events_in: u64,
    /// `INGEST` frames received.
    pub batches_in: u64,
    /// Events applied to the fleet by the ingest loop.
    pub events_applied: u64,
    /// `INGEST` frames rejected with `BUSY` (the events in them are
    /// counted in `events_in` but never in `events_applied` — the
    /// client retries them, so nothing is silently dropped).
    pub busy_rejections: u64,
    /// `PUSH` frames dropped for slow subscribers (drop-oldest rings).
    pub subscriber_drops: u64,
    /// Events currently waiting in the bounded ingest queue.
    pub queue_events: u64,
    /// High-watermark of `queue_events` over the server's lifetime —
    /// never exceeds the configured queue bound.
    pub queue_hwm_events: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Connections ever accepted.
    pub connections_total: u64,
    /// Scheduler ticks elapsed.
    pub ticks: u64,
    /// Connections dropped for stalling mid-frame past the read
    /// deadline, or for blocking writes past the write deadline.
    pub deadline_drops: u64,
    /// Connections reaped for sitting idle past `idle_timeout`.
    pub idle_reaped: u64,
    /// Connections refused at the `--max-conns` cap (typed `OVERLOAD`
    /// reject, then close).
    pub conns_rejected: u64,
    /// Subscribers disconnected after their ring dropped more pushes
    /// than `slow_consumer_budget`.
    pub slow_disconnects: u64,
    /// Ingest batches acked-but-not-reapplied because their
    /// `(session, seq)` was already applied — a retry after a lost ack.
    pub dup_batches: u64,
    /// Connections that died mid-frame leaving a torn partial batch
    /// (discarded; nothing applied).
    pub partial_frames: u64,
    /// Network faults injected by the seeded `SWSAMPLE_FAULTS`
    /// schedule (drops, stalls, flips). 0 in production.
    pub faults_injected: u64,
    /// Transient WAL append/fsync faults absorbed by the durable
    /// engine's bounded retry.
    pub wal_retries: u64,
}

/// One connection's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// The connection id from `HELLO_ACK`.
    pub conn_id: u64,
    /// Events received on this connection.
    pub events_in: u64,
    /// `INGEST` frames received on this connection.
    pub batches_in: u64,
    /// `BUSY` rejections sent to this connection.
    pub busy_rejections: u64,
    /// `PUSH` frames dropped for this connection.
    pub subscriber_drops: u64,
}

/// The fleet, as seen at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Keys with materialized samplers.
    pub keys: u64,
    /// Shard count.
    pub shards: u64,
    /// Ingest worker threads.
    pub threads: u64,
    /// Fleet memory footprint in 8-byte words.
    pub memory_words: u64,
    /// Largest single-key footprint in words.
    pub max_key_words: u64,
    /// Work-stealing shard-run units executed across all parallel
    /// ingest epochs (0 when running single-threaded).
    pub parallel_units: u64,
    /// Units claimed by a worker other than the shard's home worker —
    /// the work-stealing scheduler absorbing skew.
    pub parallel_steals: u64,
}

/// A consistent snapshot of everything the server counts, answering
/// the `STATS` opcode.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Global counters.
    pub global: GlobalStats,
    /// The fleet's shape and footprint.
    pub engine: EngineStats,
    /// Per-connection counters for every open connection, in
    /// connection-id order.
    pub conns: Vec<ConnStats>,
}

impl StatsSnapshot {
    /// Append the wire form (a run of varints; counts first).
    pub fn encode(&self, w: &mut StateWriter) {
        let g = &self.global;
        for v in [
            g.events_in,
            g.batches_in,
            g.events_applied,
            g.busy_rejections,
            g.subscriber_drops,
            g.queue_events,
            g.queue_hwm_events,
            g.connections_open,
            g.connections_total,
            g.ticks,
            g.deadline_drops,
            g.idle_reaped,
            g.conns_rejected,
            g.slow_disconnects,
            g.dup_batches,
            g.partial_frames,
            g.faults_injected,
            g.wal_retries,
        ] {
            w.put_varint_u64(v);
        }
        let e = &self.engine;
        for v in [
            e.keys,
            e.shards,
            e.threads,
            e.memory_words,
            e.max_key_words,
            e.parallel_units,
            e.parallel_steals,
        ] {
            w.put_varint_u64(v);
        }
        w.put_u32(self.conns.len() as u32);
        for c in &self.conns {
            for v in [
                c.conn_id,
                c.events_in,
                c.batches_in,
                c.busy_rejections,
                c.subscriber_drops,
            ] {
                w.put_varint_u64(v);
            }
        }
    }

    /// Decode the wire form written by [`encode`](Self::encode).
    pub fn decode(r: &mut StateReader<'_>) -> Result<StatsSnapshot, StateError> {
        let mut g = GlobalStats::default();
        for slot in [
            &mut g.events_in,
            &mut g.batches_in,
            &mut g.events_applied,
            &mut g.busy_rejections,
            &mut g.subscriber_drops,
            &mut g.queue_events,
            &mut g.queue_hwm_events,
            &mut g.connections_open,
            &mut g.connections_total,
            &mut g.ticks,
            &mut g.deadline_drops,
            &mut g.idle_reaped,
            &mut g.conns_rejected,
            &mut g.slow_disconnects,
            &mut g.dup_batches,
            &mut g.partial_frames,
            &mut g.faults_injected,
            &mut g.wal_retries,
        ] {
            *slot = r.get_varint_u64()?;
        }
        let mut e = EngineStats::default();
        for slot in [
            &mut e.keys,
            &mut e.shards,
            &mut e.threads,
            &mut e.memory_words,
            &mut e.max_key_words,
            &mut e.parallel_units,
            &mut e.parallel_steals,
        ] {
            *slot = r.get_varint_u64()?;
        }
        let n = r.get_count(5)?;
        let mut conns = Vec::with_capacity(n);
        for _ in 0..n {
            let mut c = ConnStats::default();
            for slot in [
                &mut c.conn_id,
                &mut c.events_in,
                &mut c.batches_in,
                &mut c.busy_rejections,
                &mut c.subscriber_drops,
            ] {
                *slot = r.get_varint_u64()?;
            }
            conns.push(c);
        }
        Ok(StatsSnapshot {
            global: g,
            engine: e,
            conns,
        })
    }

    /// The single-line stderr metrics summary the server prints on
    /// shutdown (`#`-prefixed so it never collides with data output).
    pub fn metrics_line(&self, elems_per_sec: f64) -> String {
        let g = &self.global;
        format!(
            "# server: events_in={} batches={} applied={} busy={} sub_drops={} \
             queue_hwm={} conns={}/{} keys={} dup={} partial={} deadline_drops={} \
             reaped={} slow={} rejected={} faults={} wal_retries={} \
             steal_units={} steals={} elems_per_sec={elems_per_sec:.2}",
            g.events_in,
            g.batches_in,
            g.events_applied,
            g.busy_rejections,
            g.subscriber_drops,
            g.queue_hwm_events,
            g.connections_open,
            g.connections_total,
            self.engine.keys,
            g.dup_batches,
            g.partial_frames,
            g.deadline_drops,
            g.idle_reaped,
            g.slow_disconnects,
            g.conns_rejected,
            g.faults_injected,
            g.wal_retries,
            self.engine.parallel_units,
            self.engine.parallel_steals,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips() {
        let snap = StatsSnapshot {
            global: GlobalStats {
                events_in: 1_000_000,
                batches_in: 2000,
                events_applied: 999_000,
                busy_rejections: 17,
                subscriber_drops: 3,
                queue_events: 512,
                queue_hwm_events: 262_144,
                connections_open: 8,
                connections_total: 12,
                ticks: 99,
                deadline_drops: 2,
                idle_reaped: 1,
                conns_rejected: 4,
                slow_disconnects: 1,
                dup_batches: 6,
                partial_frames: 2,
                faults_injected: 40,
                wal_retries: 9,
            },
            engine: EngineStats {
                keys: 100_000,
                shards: 16,
                threads: 8,
                memory_words: 1 << 20,
                max_key_words: 37,
                parallel_units: 4321,
                parallel_steals: 87,
            },
            conns: vec![
                ConnStats {
                    conn_id: 1,
                    events_in: 10,
                    batches_in: 1,
                    busy_rejections: 0,
                    subscriber_drops: 2,
                },
                ConnStats {
                    conn_id: 2,
                    ..ConnStats::default()
                },
            ],
        };
        let mut w = StateWriter::new();
        snap.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let decoded = StatsSnapshot::decode(&mut r).expect("decode");
        r.finish().expect("consumed");
        assert_eq!(decoded, snap);
        assert!(snap
            .metrics_line(123.4)
            .starts_with("# server: events_in=1000000"));
    }

    #[test]
    fn truncated_snapshot_is_an_error() {
        let mut w = StateWriter::new();
        StatsSnapshot::default().encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes[..bytes.len() - 1]);
        assert!(StatsSnapshot::decode(&mut r).is_err());
    }
}
