//! The trivial exact method: buffer the entire window (Zhang, Li, Yu, Wang,
//! Jiang — "random sampling algorithms for sliding windows", 2005).
//!
//! `O(n)` memory — "applicable only for small windows" as the paper notes —
//! but exact: it doubles as ground truth for tests and as the memory-cost
//! yardstick in experiment E6. Supports both window disciplines.

use rand::Rng;
use std::collections::VecDeque;
use swsample_core::state::{self, SamplerState, StateError};
use swsample_core::{MemoryWords, Sample, WindowSampler};
use swsample_stream::WindowSpec;

/// Full-window buffer sampler (both disciplines).
#[derive(Debug, Clone)]
pub struct WindowBuffer<T, R> {
    spec: WindowSpec,
    k: usize,
    now: u64,
    next_index: u64,
    rng: R,
    buf: VecDeque<Sample<T>>,
}

impl<T: Clone, R: Rng> WindowBuffer<T, R> {
    /// Buffer sampler for the given window discipline, answering `k`-sample
    /// queries (without replacement).
    pub fn new(spec: WindowSpec, k: usize, rng: R) -> Self {
        assert!(k >= 1 && spec.parameter() >= 1);
        Self {
            spec,
            k,
            now: 0,
            next_index: 0,
            rng,
            buf: VecDeque::new(),
        }
    }

    fn expire(&mut self) {
        let newest = self.next_index.saturating_sub(1);
        let (spec, now) = (self.spec, self.now);
        while self
            .buf
            .front()
            .is_some_and(|s| !spec.is_active(s.index(), s.timestamp(), newest, now))
        {
            self.buf.pop_front();
        }
    }

    /// Stamp and store one arrival (no expiry — callers expire once per
    /// insert or once per batch).
    fn push_one(&mut self, value: T) {
        let ts = match self.spec {
            WindowSpec::Sequence(_) => self.next_index,
            WindowSpec::Timestamp(_) => self.now,
        };
        self.buf.push_back(Sample::new(value, self.next_index, ts));
        self.next_index += 1;
    }

    /// The exact active window content, oldest first.
    pub fn window_contents(&self) -> impl Iterator<Item = &Sample<T>> {
        self.buf.iter()
    }

    /// Number of active elements (exact).
    pub fn active_len(&self) -> usize {
        self.buf.len()
    }
}

impl<T, R> MemoryWords for WindowBuffer<T, R> {
    fn memory_words(&self) -> usize {
        self.buf.len() * Sample::<T>::WORDS + 4
    }
}

impl<T: Clone, R: Rng + 'static> WindowSampler<T> for WindowBuffer<T, R> {
    fn advance_time(&mut self, now: u64) {
        assert!(now >= self.now, "WindowBuffer: clock moved backwards");
        self.now = now;
        self.expire();
    }

    fn insert(&mut self, value: T) {
        self.push_one(value);
        self.expire();
    }

    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        // Push the whole run, then expire once: one front-trim instead of
        // one per element.
        for v in values {
            self.push_one(v.clone());
        }
        self.expire();
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        if self.buf.is_empty() {
            return None;
        }
        let j = self.rng.gen_range(0..self.buf.len());
        Some(self.buf[j].clone())
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        if self.buf.is_empty() {
            return None;
        }
        // Partial Fisher–Yates over buffer positions.
        let take = self.k.min(self.buf.len());
        let mut order: Vec<usize> = (0..self.buf.len()).collect();
        let mut out = Vec::with_capacity(take);
        for step in 0..take {
            let j = self.rng.gen_range(step..order.len());
            order.swap(step, j);
            out.push(self.buf[order[step]].clone());
        }
        Some(out)
    }

    fn k(&self) -> usize {
        self.k
    }

    fn save_state(&self) -> Option<SamplerState<T>> {
        Some(SamplerState::WindowBuffer {
            now: self.now,
            next_index: self.next_index,
            rng: state::capture_rng(&self.rng)?,
            buf: self.buf.iter().cloned().collect(),
        })
    }

    fn restore_state(&mut self, state: SamplerState<T>) -> Result<(), StateError> {
        let (now, next_index, rng, buf) = match state {
            SamplerState::WindowBuffer {
                now,
                next_index,
                rng,
                buf,
            } => (now, next_index, rng, buf),
            other => {
                return Err(StateError::Mismatch {
                    expected: "window-buffer",
                    found: other.family(),
                })
            }
        };
        if !state::restore_rng(&mut self.rng, &rng) {
            return Err(StateError::Unsupported);
        }
        self.buf = buf.into();
        self.now = now;
        self.next_index = next_index;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sequence_discipline_keeps_last_n() {
        let mut s = WindowBuffer::new(WindowSpec::Sequence(5), 2, SmallRng::seed_from_u64(0));
        for i in 0..12u64 {
            s.insert(i);
        }
        assert_eq!(s.active_len(), 5);
        let contents: Vec<u64> = s.window_contents().map(|x| x.index()).collect();
        assert_eq!(contents, vec![7, 8, 9, 10, 11]);
    }

    #[test]
    fn timestamp_discipline_expires_by_clock() {
        let mut s = WindowBuffer::new(WindowSpec::Timestamp(3), 1, SmallRng::seed_from_u64(1));
        for tick in 0..10u64 {
            s.advance_time(tick);
            s.insert(tick);
        }
        // Active at tick 9: ts in {7, 8, 9}.
        assert_eq!(s.active_len(), 3);
    }

    #[test]
    fn memory_is_linear_in_window() {
        let mut s = WindowBuffer::new(WindowSpec::Sequence(100), 1, SmallRng::seed_from_u64(2));
        for i in 0..500u64 {
            s.insert(i);
        }
        assert!(s.memory_words() >= 300, "expected O(n) memory");
    }

    #[test]
    fn sample_k_distinct_and_capped() {
        let mut s = WindowBuffer::new(WindowSpec::Sequence(10), 4, SmallRng::seed_from_u64(3));
        for i in 0..30u64 {
            s.insert(i);
        }
        let out = s.sample_k().expect("nonempty");
        assert_eq!(out.len(), 4);
        let mut idx: Vec<u64> = out.iter().map(|x| x.index()).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 4);
        // Smaller window than k: returns everything.
        let mut tiny = WindowBuffer::new(WindowSpec::Sequence(2), 4, SmallRng::seed_from_u64(4));
        tiny.insert(1u64);
        tiny.insert(2u64);
        assert_eq!(tiny.sample_k().expect("nonempty").len(), 2);
    }

    #[test]
    fn empty_returns_none() {
        let mut s: WindowBuffer<u64, _> =
            WindowBuffer::new(WindowSpec::Timestamp(5), 1, SmallRng::seed_from_u64(5));
        assert!(s.sample().is_none());
        assert!(s.sample_k().is_none());
    }
}
