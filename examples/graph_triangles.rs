//! Triangle counting over a sliding window of graph edges (Corollary 5.3):
//! the Buriol-style sampling estimator, running on the paper's window
//! sampler, against the exact count — on a stream whose triangle density
//! changes over time.
//!
//! ```sh
//! cargo run --example graph_triangles
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample::apps::TriangleEstimator;
use swsample::core::MemoryWords;
use swsample::stream::{count_triangles, Edge, EdgeStreamGen};

fn main() {
    let nodes = 150u32;
    let window = 600u64;
    let estimators = 4096usize;

    let mut est = TriangleEstimator::new(window, nodes, estimators, SmallRng::seed_from_u64(5), 6);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut buf: std::collections::VecDeque<Edge> = Default::default();

    println!("graph: {nodes} nodes; window: last {window} edges; {estimators} basic estimators\n");
    println!(
        "{:>7} {:>14} {:>10} {:>10}",
        "edges", "triangle rate", "estimate", "exact"
    );

    let mut edges = 0u64;
    for phase in 0..6 {
        // Community churn: phases alternate between triangle-rich and
        // triangle-poor regimes.
        let rate = if phase % 2 == 0 { 0.45 } else { 0.05 };
        let mut gen = EdgeStreamGen::new(nodes, rate);
        for _ in 0..window {
            let e = gen.next_edge(&mut rng);
            est.insert(e);
            buf.push_back(e);
            if buf.len() > window as usize {
                buf.pop_front();
            }
            edges += 1;
        }
        let exact = count_triangles(buf.make_contiguous());
        let got = est.estimate().expect("window non-empty");
        println!("{edges:>7} {rate:>14.2} {got:>10.1} {exact:>10}");
    }
    println!(
        "\nestimator memory: {} words — independent of the number of edges",
        est.memory_words()
    );
    println!("(the estimate follows the regime shifts; precision grows with the estimator count)");
}
