//! Lockstep equivalence: for every spec-expressible sampler family,
//! `save → restore → keep ingesting` produces exactly the samples an
//! uninterrupted run produces — the invariant that makes checkpointed
//! recovery bit-identical rather than merely statistically equivalent.
//!
//! The durable engine is the round-trip under test: states travel
//! through a real snapshot file on disk, not just through memory.

use std::path::PathBuf;

use swsample_core::{FleetBackend, Sample, SamplerSpec};
use swsample_durable::{DurableEngine, DurableOptions};
use swsample_stream::MultiStreamEngine;

/// One canonical template per family the spec grammar can express.
const FAMILIES: &[(&str, &str)] = &[
    (
        "seq-wr",
        "--window seq --n 48 --mode wr --algo paper --k 3 --seed 101",
    ),
    (
        "seq-wor",
        "--window seq --n 48 --mode wor --algo paper --k 3 --seed 102",
    ),
    (
        "ts-wr",
        "--window ts --w 24 --mode wr --algo paper --k 3 --seed 103",
    ),
    (
        "ts-wor",
        "--window ts --w 24 --mode wor --algo paper --k 3 --seed 104",
    ),
    (
        "reservoir-l",
        "--window stream --mode wor --algo reservoir-l --k 3 --seed 105",
    ),
    (
        "chain",
        "--window seq --n 48 --mode wr --algo chain --k 3 --seed 106",
    ),
    (
        "priority",
        "--window ts --w 24 --mode wr --algo priority --k 3 --seed 107",
    ),
    (
        "priority-topk",
        "--window ts --w 24 --mode wor --algo priority --k 3 --seed 108",
    ),
    (
        "buffer-seq",
        "--window seq --n 48 --mode wor --algo window-buffer --k 3 --seed 109",
    ),
    (
        "buffer-ts",
        "--window ts --w 24 --mode wor --algo window-buffer --k 3 --seed 110",
    ),
];

const KEYS: u64 = 29;
const BATCHES: usize = 40;
const BATCH_LEN: u64 = 11;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swsample-lockstep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic keyed workload with a non-decreasing clock: batch `b`
/// carries events `(e % KEYS, e / 4, e * 7)` for `e` in its index range.
fn batch(b: usize) -> Vec<(u64, u64, u64)> {
    (0..BATCH_LEN)
        .map(|i| {
            let e = b as u64 * BATCH_LEN + i;
            (e % KEYS, e / 4, e * 7)
        })
        .collect()
}

fn fleet_samples(engine: &MultiStreamEngine<u64, u64>) -> Vec<(u64, Option<Vec<Sample<u64>>>)> {
    let mut keys = engine.keys();
    keys.sort_unstable();
    keys.into_iter()
        .map(|k| {
            let s = engine.sample_k(&k);
            (k, s)
        })
        .collect()
}

#[test]
fn every_family_survives_save_restore_in_lockstep() {
    for (name, template) in FAMILIES {
        let spec: SamplerSpec = template.parse().unwrap_or_else(|e| {
            panic!("family {name}: template failed to parse: {e}");
        });

        // The uninterrupted reference run.
        let mut reference = MultiStreamEngine::<u64, u64>::with_factory(
            spec.clone(),
            4,
            swsample_baselines::spec::build::<u64>,
        )
        .unwrap_or_else(|e| panic!("family {name}: reference engine: {e}"));
        for b in 0..BATCHES {
            reference.ingest(&batch(b));
        }

        // The interrupted run: ingest half, checkpoint through a real
        // snapshot file, reopen, ingest the rest.
        let dir = tmp_dir(name);
        let mut durable = DurableEngine::<u64, u64>::create(
            &dir,
            spec,
            4,
            2,
            FleetBackend::Auto,
            DurableOptions::default(),
        )
        .unwrap_or_else(|e| panic!("family {name}: create: {e}"));
        for b in 0..BATCHES / 2 {
            durable.ingest(&batch(b)).unwrap();
        }
        durable.snapshot().unwrap();
        drop(durable);
        let mut durable = DurableEngine::<u64, u64>::open(&dir, DurableOptions::default())
            .unwrap_or_else(|e| panic!("family {name}: open: {e}"));
        assert_eq!(durable.next_seq(), (BATCHES / 2) as u64, "family {name}");
        for b in BATCHES / 2..BATCHES {
            durable.ingest(&batch(b)).unwrap();
        }

        assert_eq!(
            fleet_samples(durable.engine()),
            fleet_samples(&reference),
            "family {name}: resumed samples diverged from uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn checkpoint_at_every_boundary_is_equivalent_for_one_family() {
    // Finer-grained variant for one representative family: cutting the
    // stream at *any* batch boundary and round-tripping through disk
    // never changes the final samples.
    let spec: SamplerSpec = "--window ts --w 24 --mode wor --algo paper --k 3 --seed 77"
        .parse()
        .expect("spec");
    let mut reference = MultiStreamEngine::<u64, u64>::with_factory(
        spec.clone(),
        4,
        swsample_baselines::spec::build::<u64>,
    )
    .expect("reference");
    for b in 0..12 {
        reference.ingest(&batch(b));
    }
    let expected = fleet_samples(&reference);

    for cut in 0..=12usize {
        let dir = tmp_dir(&format!("cut{cut}"));
        let mut durable = DurableEngine::<u64, u64>::create(
            &dir,
            spec.clone(),
            4,
            1,
            FleetBackend::Auto,
            DurableOptions::default(),
        )
        .expect("create");
        for b in 0..cut {
            durable.ingest(&batch(b)).unwrap();
        }
        durable.snapshot().unwrap();
        drop(durable);
        let mut durable =
            DurableEngine::<u64, u64>::open(&dir, DurableOptions::default()).expect("open");
        for b in cut..12 {
            durable.ingest(&batch(b)).unwrap();
        }
        assert_eq!(
            fleet_samples(durable.engine()),
            expected,
            "cut at batch {cut} diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
