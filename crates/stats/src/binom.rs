//! Exact binomial probabilities and tails.
//!
//! Experiment E8 compares the *measured* failure probability of the
//! over-sampling baseline ("fewer than k of the k' maintained samples are
//! still alive") against the analytic binomial tail; these helpers compute
//! that tail exactly in log-space.

use crate::gamma::ln_gamma;

/// Natural log of the binomial coefficient `C(n, k)`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose: k={k} > n={n}");
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// `P(Bin(n, p) = k)` computed in log-space for numerical stability.
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "binomial_pmf: p={p}");
    assert!(k <= n);
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Lower tail `P(Bin(n, p) <= k)`.
pub fn binomial_tail_le(n: u64, p: f64, k: u64) -> f64 {
    (0..=k.min(n))
        .map(|i| binomial_pmf(n, p, i))
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

/// Upper tail `P(Bin(n, p) >= k)`.
pub fn binomial_tail_ge(n: u64, p: f64, k: u64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    (k..=n)
        .map(|i| binomial_pmf(n, p, i))
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (25, 0.5), (40, 0.9)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, p, k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn fair_coin_symmetry() {
        for k in 0..=10u64 {
            let a = binomial_pmf(10, 0.5, k);
            let b = binomial_pmf(10, 0.5, 10 - k);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn hand_computed_values() {
        // P(Bin(4, 0.5) = 2) = 6/16
        assert!((binomial_pmf(4, 0.5, 2) - 0.375).abs() < 1e-12);
        // P(Bin(3, 1/3) = 0) = (2/3)^3 = 8/27
        assert!((binomial_pmf(3, 1.0 / 3.0, 0) - 8.0 / 27.0).abs() < 1e-12);
    }

    #[test]
    fn tails_are_complementary() {
        for k in 0..=20u64 {
            let le = binomial_tail_le(20, 0.37, k);
            let ge = binomial_tail_ge(20, 0.37, k + 1);
            assert!((le + ge - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn degenerate_probabilities() {
        assert_eq!(binomial_pmf(5, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(5, 0.0, 3), 0.0);
        assert_eq!(binomial_pmf(5, 1.0, 5), 1.0);
        assert_eq!(binomial_tail_ge(5, 1.0, 5), 1.0);
    }

    #[test]
    fn tail_reference() {
        // SciPy: binom.cdf(45, 100, 0.5) = 0.18410080866334788
        let p = binomial_tail_le(100, 0.5, 45);
        assert!((p - 0.184_100_808_663_347_88).abs() < 1e-9, "p = {p}");
    }
}
