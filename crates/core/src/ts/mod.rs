//! Timestamp-based windows — §3 and §4 of the paper.
//!
//! An element with timestamp `T(p)` is active at time `t` iff
//! `t − T(p) < t₀`. The number of active elements `n = n(t)` is *unknown*
//! (it cannot even be approximated in sublinear space, Datar et al.), which
//! is what makes this model hard: a uniform sample over a domain of unknown
//! size must be produced.
//!
//! The machinery, bottom-up:
//!
//! * `bucket` — bucket structures `BS(x, y)`: index range, first-element
//!   timestamp, and *two* independent uniform samples `R`, `Q` (Q feeds the
//!   implicit-event generator).
//! * `covering` — the covering decomposition `ζ(a, b)` (Definition 3.1)
//!   and its `Incr` maintenance operator (Lemma 3.4): an `O(log)`-length
//!   list of dyadic buckets covering a stream suffix.
//! * `engine` — the single-sample engine: state maintenance per Lemma 3.5
//!   (case 1 "all covered elements active" / case 2 "one straddling
//!   bucket"), plus the implicit-event construction of Lemmas 3.6–3.8 that
//!   samples uniformly although the window size is unknown.
//! * `wr` — [`TsSamplerWr`]: `k` independent engines (Theorem 3.9 /
//!   `O(k log n)` for general `k`).
//! * `wor` — [`TsSamplerWor`]: the §4 black-box reduction from sampling
//!   without replacement to `k` delayed with-replacement samplers
//!   (Lemmas 4.1–4.3, Theorem 4.4).

pub(crate) mod bucket;
pub(crate) mod covering;
pub(crate) mod engine;
mod wor;
mod wr;

pub use engine::TsEngine;
pub use wor::TsSamplerWor;
pub use wr::TsSamplerWr;
