//! Empirical entropy over sliding windows (Corollary 5.4).
//!
//! The Chakrabarti–Cormode–McGregor estimator: pick a uniform position `j`,
//! let `r` be the occurrence count of value `a_j` in the suffix from `j`;
//! then
//!
//! ```text
//! X = r·log₂(N/r) − (r−1)·log₂(N/(r−1))        (X = log₂ N when r = 1)
//! ```
//!
//! satisfies `E[X] = H = Σ (xᵢ/N) log₂(N/xᵢ)` — the telescoping trick of
//! the AMS family applied to `f(x) = x log₂(N/x)`. Windowed via the same
//! Theorem 5.1 transfer as [`crate::moments`]: uniform positions from
//! [`SeqSamplerWr`], suffix counts from [`OccurrenceTracker`].

use crate::moments::median_of_means;
use rand::Rng;
use swsample_core::seq::SeqSamplerWr;
use swsample_core::track::OccurrenceTracker;
use swsample_core::MemoryWords;

/// CCM entropy estimator over the last `n` arrivals.
///
/// ```
/// use swsample_apps::EntropyEstimator;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// // Round-robin over 16 symbols in a 16-wide window: H = 4 bits.
/// let mut est = EntropyEstimator::new(16, 32, 3, SmallRng::seed_from_u64(2));
/// for i in 0..480u64 {
///     est.insert(i % 16);
/// }
/// let h = est.estimate().unwrap();
/// assert!((h - 4.0).abs() < 1.0, "H = {h}");
/// ```
#[derive(Debug, Clone)]
pub struct EntropyEstimator<R> {
    s1: usize,
    s2: usize,
    sampler: SeqSamplerWr<u64, R, OccurrenceTracker>,
}

impl<R: Rng> EntropyEstimator<R> {
    /// Estimator over windows of `n` arrivals with `s1`-way averaging and
    /// `s2`-way medians (total `s1·s2` window samples).
    pub fn new(n: u64, s1: usize, s2: usize, rng: R) -> Self {
        assert!(s1 >= 1 && s2 >= 1, "EntropyEstimator: need s1, s2 >= 1");
        Self {
            s1,
            s2,
            sampler: SeqSamplerWr::with_tracker(n, s1 * s2, rng, OccurrenceTracker),
        }
    }

    /// Feed the next arrival.
    pub fn insert(&mut self, value: u64) {
        self.sampler.push(value);
    }

    /// Current entropy estimate (bits); `None` before any arrival.
    pub fn estimate(&mut self) -> Option<f64> {
        let n = self.sampler.active_len() as f64;
        if n == 0.0 {
            return None;
        }
        let picks = self.sampler.sample_k_with_stats()?;
        let basics: Vec<f64> = picks
            .iter()
            .map(|(_, (_, r))| {
                let r = *r as f64;
                debug_assert!(r >= 1.0 && r <= n);
                let hi = r * (n / r).log2();
                let lo = if r > 1.0 {
                    (r - 1.0) * (n / (r - 1.0)).log2()
                } else {
                    0.0
                };
                hi - lo
            })
            .collect();
        Some(median_of_means(&basics, self.s1, self.s2))
    }

    /// Number of active elements.
    pub fn active_len(&self) -> u64 {
        self.sampler.active_len()
    }
}

impl<R> MemoryWords for EntropyEstimator<R> {
    fn memory_words(&self) -> usize {
        self.sampler.memory_words() + self.s1 * self.s2 * 2 + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactWindow;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::OnlineMoments;

    #[test]
    fn constant_stream_has_zero_entropy() {
        let mut est = EntropyEstimator::new(32, 8, 3, SmallRng::seed_from_u64(1));
        for _ in 0..200 {
            est.insert(5);
        }
        // r = n − j + ...: every basic estimator is r log(n/r) − (r−1)log(n/(r−1));
        // for the constant stream the *average* over uniform positions is
        // H = 0... individual basics are noisy but telescoping makes the
        // sum over all positions exactly 0 = n·H. Accept small error.
        let h = est.estimate().expect("nonempty");
        assert!(h.abs() < 0.35, "entropy of constant stream: {h}");
    }

    #[test]
    fn unbiased_against_exact_entropy() {
        let n = 32u64;
        let stream: Vec<u64> = (0..300u64).map(|i| (i * 7) % 5).collect();
        let mut exact = ExactWindow::new(n as usize);
        for &v in &stream {
            exact.insert(v);
        }
        let truth = exact.entropy();
        let mut acc = OnlineMoments::new();
        for seed in 0..300 {
            let mut est = EntropyEstimator::new(n, 4, 1, SmallRng::seed_from_u64(seed));
            for &v in &stream {
                est.insert(v);
            }
            acc.push(est.estimate().expect("nonempty"));
        }
        let rel = (acc.mean() - truth).abs() / truth.max(1e-9);
        assert!(rel < 0.1, "mean {} vs exact {truth}", acc.mean());
    }

    #[test]
    fn uniform_window_entropy_close_to_log_n() {
        // Round-robin over 16 values in a 16-wide window: H = 4 bits.
        let mut est = EntropyEstimator::new(16, 16, 5, SmallRng::seed_from_u64(2));
        for i in 0..320u64 {
            est.insert(i % 16);
        }
        let h = est.estimate().expect("nonempty");
        assert!((h - 4.0).abs() < 1.0, "estimate {h} vs 4.0");
    }

    #[test]
    fn empty_returns_none() {
        let mut est = EntropyEstimator::new(8, 1, 1, SmallRng::seed_from_u64(3));
        assert!(est.estimate().is_none());
    }
}
