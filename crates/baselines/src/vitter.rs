//! Plain reservoir sampling over the *entire* stream — no window, no
//! expiry. Skip-based (Li's Algorithm L \[53\]) by default, with Vitter's
//! per-element Algorithm R (1985) available as the reference path.
//!
//! This is the insertion-only method the paper's Question 1.2 measures
//! against ("is sampling from sliding windows algorithmically harder than
//! sampling from the entire stream?"); the throughput benchmark (E7) uses it
//! as the per-element cost floor — which is why it runs the skip-based
//! variant: baseline-vs-paper comparisons should pit *optimized*
//! implementations against each other.

use rand::Rng;
use swsample_core::reservoir::{ReservoirK, ReservoirL};
use swsample_core::{MemoryWords, Sample, WindowSampler};

/// Whole-stream `k`-sample without replacement (the sliding window is the
/// entire stream), ingesting through Algorithm L's geometric skips:
/// `O(k(1 + log(N/k)))` RNG draws total instead of `N`.
#[derive(Debug, Clone)]
pub struct StreamReservoir<T, R> {
    inner: ReservoirL<T>,
    rng: R,
    next_index: u64,
}

impl<T: Clone, R: Rng> StreamReservoir<T, R> {
    /// Reservoir of capacity `k ≥ 1`.
    pub fn new(k: usize, rng: R) -> Self {
        Self {
            inner: ReservoirL::new(k),
            rng,
            next_index: 0,
        }
    }
}

/// Algorithm R counterpart: identical distribution, one RNG draw per
/// element. Kept as the ablation baseline (`reservoir_ablation` bench /
/// `bench_throughput`'s naive rows).
#[derive(Debug, Clone)]
pub struct NaiveStreamReservoir<T, R> {
    inner: ReservoirK<T>,
    rng: R,
    next_index: u64,
}

impl<T: Clone, R: Rng> NaiveStreamReservoir<T, R> {
    /// Reservoir of capacity `k ≥ 1`.
    pub fn new(k: usize, rng: R) -> Self {
        Self {
            inner: ReservoirK::new(k),
            rng,
            next_index: 0,
        }
    }
}

impl<T, R> MemoryWords for StreamReservoir<T, R> {
    fn memory_words(&self) -> usize {
        self.inner.memory_words() + 1
    }
}

impl<T, R> MemoryWords for NaiveStreamReservoir<T, R> {
    fn memory_words(&self) -> usize {
        self.inner.memory_words() + 1
    }
}

impl<T: Clone, R: Rng> WindowSampler<T> for StreamReservoir<T, R> {
    fn insert(&mut self, value: T) {
        let idx = self.next_index;
        self.next_index += 1;
        self.inner.insert(&mut self.rng, value, idx, idx);
    }

    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        // Algorithm L's precomputed acceptance index lets the reservoir
        // hop over non-accepted arrivals wholesale.
        self.inner
            .insert_batch(&mut self.rng, values, self.next_index);
        self.next_index += values.len() as u64;
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        let entries = self.inner.entries();
        if entries.is_empty() {
            return None;
        }
        let j = self.rng.gen_range(0..entries.len());
        Some(entries[j].clone())
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        if self.inner.entries().is_empty() {
            None
        } else {
            Some(self.inner.entries().to_vec())
        }
    }

    fn k(&self) -> usize {
        self.inner.capacity()
    }
}

impl<T: Clone, R: Rng> WindowSampler<T> for NaiveStreamReservoir<T, R> {
    fn insert(&mut self, value: T) {
        let idx = self.next_index;
        self.next_index += 1;
        self.inner.insert(&mut self.rng, value, idx, idx);
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        let entries = self.inner.entries();
        if entries.is_empty() {
            return None;
        }
        let j = self.rng.gen_range(0..entries.len());
        Some(entries[j].clone())
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        if self.inner.entries().is_empty() {
            None
        } else {
            Some(self.inner.entries().to_vec())
        }
    }

    fn k(&self) -> usize {
        self.inner.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    #[test]
    fn holds_k_samples_from_whole_stream() {
        let mut s = StreamReservoir::new(5, SmallRng::seed_from_u64(0));
        for i in 0..1000u64 {
            s.insert(i);
        }
        let out = s.sample_k().expect("nonempty");
        assert_eq!(out.len(), 5);
        // Samples may be arbitrarily old — that is the point of contrast
        // with windowed samplers.
        assert!(out.iter().all(|x| x.index() < 1000));
    }

    #[test]
    fn memory_constant() {
        let mut s = StreamReservoir::new(3, SmallRng::seed_from_u64(1));
        for i in 0..10_000u64 {
            s.insert(i);
        }
        // Algorithm L carries 2 extra scalar state words vs Algorithm R.
        assert!(s.memory_words() <= 3 * 3 + 5);
        let mut r = NaiveStreamReservoir::new(3, SmallRng::seed_from_u64(1));
        for i in 0..10_000u64 {
            r.insert(i);
        }
        assert!(r.memory_words() <= 3 * 3 + 3);
    }

    #[test]
    fn empty_returns_none() {
        let mut s: StreamReservoir<u64, _> = StreamReservoir::new(2, SmallRng::seed_from_u64(2));
        assert!(s.sample().is_none());
        let mut r: NaiveStreamReservoir<u64, _> =
            NaiveStreamReservoir::new(2, SmallRng::seed_from_u64(2));
        assert!(r.sample().is_none());
    }

    #[test]
    fn batched_ingest_uniform_marginals() {
        // Chunked ingestion through the skip path keeps k/N inclusion.
        let (n, k, trials) = (24u64, 3usize, 30_000u64);
        let mut counts = vec![0u64; n as usize];
        for t in 0..trials {
            let mut s = StreamReservoir::new(k, SmallRng::seed_from_u64(40_000 + t));
            let values: Vec<u64> = (0..n).collect();
            for chunk in values.chunks(5) {
                s.insert_batch(chunk);
            }
            for e in s.sample_k().expect("nonempty") {
                counts[e.index() as usize] += 1;
            }
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "batched stream reservoir not uniform: p = {}",
            out.p_value
        );
    }
}
