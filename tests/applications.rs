//! Integration tests for the §5 applications: the estimators built on the
//! window samplers must converge to the exact window statistics.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample::apps::{EntropyEstimator, ExactWindow, MomentEstimator, TriangleEstimator};
use swsample::stats::OnlineMoments;
use swsample::stream::{count_triangles, Edge, EdgeStreamGen, ValueGen, ZipfGen};

#[test]
fn f2_estimator_converges_on_zipf_stream() {
    let n = 512u64;
    let mut exact = ExactWindow::new(n as usize);
    let mut gen = ZipfGen::new(50, 1.1);
    let mut rng = SmallRng::seed_from_u64(1);
    let stream: Vec<u64> = (0..2 * n).map(|_| gen.next_value(&mut rng)).collect();
    for &v in &stream {
        exact.insert(v);
    }
    let truth = exact.moment(2);
    let mut acc = OnlineMoments::new();
    for seed in 0..60 {
        let mut est = MomentEstimator::new(n, 2, 64, 3, SmallRng::seed_from_u64(seed));
        for &v in &stream {
            est.insert(v);
        }
        acc.push(est.estimate().expect("nonempty"));
    }
    let rel = (acc.mean() - truth).abs() / truth;
    assert!(
        rel < 0.10,
        "F2 mean {} vs exact {truth} (rel {rel})",
        acc.mean()
    );
}

#[test]
fn f3_estimator_in_the_right_regime() {
    let n = 512u64;
    let mut exact = ExactWindow::new(n as usize);
    let stream: Vec<u64> = (0..2 * n).map(|i| i % 17).collect();
    for &v in &stream {
        exact.insert(v);
    }
    let truth = exact.moment(3);
    let mut acc = OnlineMoments::new();
    for seed in 0..60 {
        let mut est = MomentEstimator::new(n, 3, 64, 3, SmallRng::seed_from_u64(100 + seed));
        for &v in &stream {
            est.insert(v);
        }
        acc.push(est.estimate().expect("nonempty"));
    }
    let rel = (acc.mean() - truth).abs() / truth;
    assert!(rel < 0.15, "F3 mean {} vs exact {truth}", acc.mean());
}

#[test]
fn entropy_estimator_tracks_window_change() {
    // The stream switches from constant (H = 0) to uniform (H = 5 bits);
    // after a full window of the new regime, the estimate must follow.
    let n = 1024u64;
    let mut est = EntropyEstimator::new(n, 128, 3, SmallRng::seed_from_u64(3));
    for _ in 0..2 * n {
        est.insert(0);
    }
    let before = est.estimate().expect("nonempty");
    assert!(before.abs() < 0.3, "constant-regime entropy {before}");
    for i in 0..2 * n {
        est.insert(i % 32);
    }
    let after = est.estimate().expect("nonempty");
    assert!(
        (after - 5.0).abs() < 0.7,
        "uniform-regime entropy {after} (want 5)"
    );
}

#[test]
fn triangle_estimator_zero_on_forests_positive_on_cliques() {
    // Forest: star graph, no triangles.
    let mut est = TriangleEstimator::new(100, 50, 64, SmallRng::seed_from_u64(4), 5);
    for i in 1..50u32 {
        est.insert(Edge::new(0, i));
    }
    assert_eq!(est.estimate().expect("nonempty"), 0.0);

    // Clique stream: plenty of triangles; the estimate must be positive on
    // average across instances.
    let mut total = 0.0;
    for seed in 0..10u64 {
        let mut est = TriangleEstimator::new(200, 12, 256, SmallRng::seed_from_u64(seed), seed);
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                est.insert(Edge::new(a, b));
            }
        }
        total += est.estimate().expect("nonempty");
    }
    assert!(total > 0.0, "no triangles detected in a clique");
}

#[test]
fn triangle_estimate_order_of_magnitude_on_planted_stream() {
    let nodes = 120u32;
    let window = 500u64;
    let mut gen = EdgeStreamGen::new(nodes, 0.4);
    let mut rng = SmallRng::seed_from_u64(6);
    let mut acc = OnlineMoments::new();
    let mut buf = Vec::new();
    for seed in 0..8u64 {
        let mut est =
            TriangleEstimator::new(window, nodes, 4096, SmallRng::seed_from_u64(seed), seed);
        buf.clear();
        for _ in 0..window {
            let e = gen.next_edge(&mut rng);
            est.insert(e);
            buf.push(e);
        }
        let exact = count_triangles(&buf) as f64;
        acc.push(est.estimate().expect("nonempty") / exact.max(1.0));
    }
    // Mean ratio within a factor ~1.5 of 1.
    assert!(
        acc.mean() > 0.5 && acc.mean() < 1.6,
        "triangle estimate ratio off: {}",
        acc.mean()
    );
}

#[test]
fn estimators_are_streaming_not_batch() {
    // Interleaved insert/estimate calls must work at every prefix.
    let mut est = MomentEstimator::new(64, 2, 8, 1, SmallRng::seed_from_u64(7));
    let mut h = EntropyEstimator::new(64, 8, 1, SmallRng::seed_from_u64(8));
    assert!(est.estimate().is_none());
    assert!(h.estimate().is_none());
    for i in 0..500u64 {
        est.insert(i % 9);
        h.insert(i % 9);
        assert!(est.estimate().expect("nonempty") >= 0.0);
        assert!(h.estimate().is_some());
    }
}
