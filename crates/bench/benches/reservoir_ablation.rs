//! Criterion bench for experiment E13 — the design-choice ablation called
//! out in DESIGN.md: Vitter's Algorithm R (one RNG draw per element) vs
//! Li's Algorithm L (geometric skips) as the per-bucket reservoir.
//!
//! Expected shape: identical at tiny streams, L pulling ahead as the
//! stream/bucket grows (R's cost is Θ(N) draws, L's is
//! Θ(k (1 + log(N/k)))).
//!
//! ASSERTION (enforced twice: `bench_throughput` exits non-zero rather
//! than write a violating artifact, and `tests/skip_equivalence.rs::
//! committed_throughput_baseline_holds_acceptance_bar` gates CI on the
//! committed file): at len = 100_000 / k = 64 the skip-based ingestion
//! must hold a ≥5× elems/sec lead over the per-element path — the bar
//! `BENCH_throughput.json` records for `seq_wr_skip` vs `seq_wr_naive` at
//! k = 64, n = 10⁵. Since this PR the samplers also clone at most
//! `acceptors − 1` values per arrival (the value is *moved* into the last
//! accepting instance, so the common single-acceptor case clones nothing);
//! if either property regresses, this bench is where the curve bends
//! first.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use swsample_core::reservoir::{ReservoirK, ReservoirL, ReservoirOne};

fn bench_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("reservoir_fill");
    for &len in &[1_000u64, 100_000] {
        group.throughput(Throughput::Elements(len));
        for &k in &[4usize, 64] {
            group.bench_with_input(
                BenchmarkId::new("algorithm_r", format!("len{len}_k{k}")),
                &(len, k),
                |b, &(len, k)| {
                    let mut rng = SmallRng::seed_from_u64(1);
                    b.iter(|| {
                        let mut r = ReservoirK::new(k);
                        for i in 0..len {
                            r.insert(&mut rng, black_box(i), i, i);
                        }
                        black_box(r.entries().len())
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new("algorithm_l", format!("len{len}_k{k}")),
                &(len, k),
                |b, &(len, k)| {
                    let mut rng = SmallRng::seed_from_u64(2);
                    b.iter(|| {
                        let mut r = ReservoirL::new(k);
                        for i in 0..len {
                            r.insert(&mut rng, black_box(i), i, i);
                        }
                        black_box(r.entries().len())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("reservoir_one");
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut r = ReservoirOne::new();
        let mut i = 0u64;
        b.iter(|| {
            r.insert(&mut rng, black_box(i), i, i);
            i += 1;
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fill, bench_single
}
criterion_main!(benches);
