//! Chaos harness: the server and load generator under seeded,
//! deterministic fault schedules — dropped connections mid-frame,
//! stalled and corrupted replies, transient WAL errors — asserting the
//! system degrades *gracefully*: no event lost, no event double-applied
//! (the `--verify` offline oracle plus exact `events_applied`
//! accounting), no thread panics, and every casualty showing up in the
//! right STATS counter.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use swsample_core::fault::{FaultSchedule, FaultSite};
use swsample_core::spec::SamplerSpec;
use swsample_durable::frame::write_frame;
use swsample_server::loadgen::{self, LoadgenConfig};
use swsample_server::protocol::{read_server_msg, ClientMsg, ReadOutcome, SubscribeKind};
use swsample_server::{Client, Server, ServerConfig, ServerMsg, PROTOCOL_VERSION};

fn template() -> SamplerSpec {
    "--window seq --n 64 --mode wr --algo paper --k 4 --seed 7"
        .parse()
        .expect("template spec")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "swsample-server-chaos-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn start(mut cfg: ServerConfig) -> Server {
    cfg.addr = "127.0.0.1:0".into();
    Server::start(cfg).expect("server start")
}

/// The capstone: a WAL-backed server under every fault site at once —
/// connections dropped mid-frame in both directions, reads stalled,
/// reply bytes flipped, transient WAL append errors — driven by a
/// loadgen that must reconnect and resend. Exactly-once end to end:
/// the offline oracle byte-matches every touched key and the applied
/// event count equals the driven count exactly (dedup absorbed every
/// resend of an already-applied batch).
#[test]
fn chaos_schedule_degrades_gracefully_and_loses_nothing() {
    let faults: FaultSchedule =
        "seed=16,drop-rx=1/61,drop-tx=1/53,stall-rx=1/37:3ms,flip-tx=1/71,wal-append=1/23"
            .parse()
            .expect("fault schedule");
    // The schedule is deterministic: make sure every site actually
    // fires within the op volume this workload generates, so the
    // assertions below are meaningful (and stable) for this seed.
    for (site, ops) in [
        (FaultSite::DropRx, 60),
        (FaultSite::DropTx, 60),
        (FaultSite::StallRx, 60),
        (FaultSite::FlipTx, 60),
        (FaultSite::WalAppend, 60),
    ] {
        assert!(
            faults.first_hit(site, ops).is_some(),
            "{site:?} never fires in {ops} ops — pick a denser rule"
        );
    }

    let dir = temp_dir("mixed");
    let mut cfg = ServerConfig::new(template());
    cfg.faults = faults;
    cfg.wal_dir = Some(dir.clone());
    // A small queue plus a drain delay so BUSY storms happen *under*
    // the fault schedule too.
    cfg.queue_max_events = 600;
    cfg.drain_delay = Duration::from_millis(1);
    cfg.read_deadline = Duration::from_secs(5);
    cfg.write_deadline = Duration::from_secs(5);
    let server = start(cfg);
    let addr = server.local_addr().to_string();

    let mut lg = LoadgenConfig::new(&addr);
    lg.connections = 4;
    lg.keys = 60;
    lg.count = 12_000;
    lg.batch = 128;
    lg.verify = true;
    lg.io_timeout = Duration::from_secs(2);
    let mut out = Vec::new();
    let report = loadgen::run(&lg, &mut out).expect("chaos loadgen survives the schedule");

    assert_eq!(report.events_sent, 12_000);
    assert!(
        report.verified_keys > 0,
        "the offline oracle must compare at least one key"
    );
    assert!(
        report.reconnects > 0,
        "drop faults at 1/53–1/61 must kill at least one connection"
    );

    let stats = server.shutdown();
    assert_eq!(
        stats.global.events_applied, 12_000,
        "exactly-once: every driven event applied, no resend double-applied"
    );
    assert!(
        stats.global.faults_injected > 0,
        "the schedule verified above must have fired"
    );
    assert!(
        stats.global.wal_retries > 0,
        "wal-append at 1/23 must have been ridden out at least once"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// A connection dying mid-INGEST frame: the server discards the torn
/// partial batch, counts it, and the next connection is unaffected —
/// a fresh verified loadgen run still byte-matches the offline oracle.
#[test]
fn death_mid_frame_discards_the_partial_batch() {
    let server = start(ServerConfig::new(template()));
    let addr = server.local_addr().to_string();

    // Raw socket: complete the handshake, then send *half* an INGEST
    // frame and vanish.
    let stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream.try_clone().expect("clone");
    let hello = ClientMsg::Hello {
        version: PROTOCOL_VERSION,
        name: "torn".into(),
        session: 0,
    };
    write_frame(&mut writer, &hello.encode()).expect("hello frame");
    let mut offset = 0u64;
    match read_server_msg(&mut reader, &mut offset).expect("hello ack") {
        ReadOutcome::Msg(ServerMsg::HelloAck { .. }) => {}
        other => panic!("expected HELLO_ACK, got {other:?}"),
    }
    let batch: Vec<(u64, u64, u64)> = (0..64u64).map(|i| (9, i / 64, i)).collect();
    let mut frame = Vec::new();
    write_frame(&mut frame, &ClientMsg::Ingest { seq: 0, batch }.encode()).expect("ingest frame");
    writer
        .write_all(&frame[..frame.len() / 2])
        .expect("half a frame");
    writer.flush().expect("flush");
    drop((reader, writer, stream)); // EOF mid-frame.

    // The casualty is counted and nothing from the torn batch applied.
    let mut observer = Client::connect(&addr, "observer").expect("observer");
    let mut partial = 0u64;
    for _ in 0..200 {
        let stats = observer.stats().expect("stats");
        partial = stats.global.partial_frames;
        if partial > 0 {
            assert_eq!(stats.global.events_applied, 0, "torn batch must not apply");
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(partial, 1, "the torn frame must be counted exactly once");
    observer.bye().expect("bye");

    // The next traffic is unaffected: full verified run, exact counts.
    let mut lg = LoadgenConfig::new(&addr);
    lg.keys = 20;
    lg.count = 2_000;
    lg.batch = 128;
    lg.verify = true;
    let report = loadgen::run(&lg, &mut Vec::new()).expect("post-torn loadgen");
    assert!(report.verified_keys > 0);
    let stats = server.shutdown();
    assert_eq!(stats.global.events_applied, 2_000);
}

/// A peer that stalls *mid-frame* (half a frame sent, then silence) is
/// severed at the read deadline and counted in `deadline_drops` —
/// distinct from an idle peer at a frame boundary, which is legal.
#[test]
fn stalling_mid_frame_hits_the_read_deadline() {
    let mut cfg = ServerConfig::new(template());
    cfg.read_deadline = Duration::from_millis(50);
    cfg.idle_timeout = Duration::ZERO; // isolate the deadline path
    let server = start(cfg);
    let addr = server.local_addr().to_string();

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream.try_clone().expect("clone");
    let hello = ClientMsg::Hello {
        version: PROTOCOL_VERSION,
        name: "staller".into(),
        session: 0,
    };
    write_frame(&mut writer, &hello.encode()).expect("hello frame");
    let mut offset = 0u64;
    assert!(matches!(
        read_server_msg(&mut reader, &mut offset).expect("hello ack"),
        ReadOutcome::Msg(ServerMsg::HelloAck { .. })
    ));
    let batch: Vec<(u64, u64, u64)> = (0..64u64).map(|i| (5, i / 64, i)).collect();
    let mut frame = Vec::new();
    write_frame(&mut frame, &ClientMsg::Ingest { seq: 0, batch }.encode()).expect("ingest frame");
    writer
        .write_all(&frame[..frame.len() / 2])
        .expect("half a frame");
    writer.flush().expect("flush");
    // ... and just hold the socket open, silent.

    let mut observer = Client::connect(&addr, "observer").expect("observer");
    let mut drops = 0u64;
    for _ in 0..400 {
        drops = observer.stats().expect("stats").global.deadline_drops;
        if drops > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        drops, 1,
        "the mid-frame staller must be severed exactly once"
    );
    drop((reader, writer, stream));
    drop(server.shutdown());
}

/// Idle connections (at a frame *boundary*) are reaped by the scheduler
/// once they sit past `idle_timeout`; an active observer is spared.
#[test]
fn idle_connections_are_reaped_on_scheduler_ticks() {
    let mut cfg = ServerConfig::new(template());
    cfg.tick = Duration::from_millis(10);
    cfg.idle_timeout = Duration::from_millis(80);
    let server = start(cfg);
    let addr = server.local_addr().to_string();

    let mut idler = Client::connect(&addr, "idler").expect("idler");
    let mut observer = Client::connect(&addr, "observer").expect("observer");
    let mut reaped = 0u64;
    for _ in 0..400 {
        // Observer traffic keeps *its* connection alive; the idler
        // never speaks again after HELLO.
        reaped = observer.stats().expect("stats").global.idle_reaped;
        if reaped > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(reaped, 1, "exactly the idler must be reaped");
    let dead = idler.query(1).is_err();
    assert!(dead, "the reaped connection must be unusable");
    let stats = observer.stats().expect("observer still fine");
    assert_eq!(stats.global.connections_open, 1);
    drop(server.shutdown());
}

/// Past `--max-conns` the server answers with a typed OVERLOAD error
/// (not a silent RST) and counts the rejection; capacity frees when a
/// connection leaves.
#[test]
fn connection_cap_rejects_with_typed_overload() {
    let mut cfg = ServerConfig::new(template());
    cfg.max_conns = 2;
    let server = start(cfg);
    let addr = server.local_addr().to_string();

    let a = Client::connect(&addr, "a").expect("conn a");
    let mut b = Client::connect(&addr, "b").expect("conn b");
    let err = match Client::connect(&addr, "c") {
        Ok(_) => panic!("third connection must be rejected"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("Overload"),
        "rejection must carry the typed OVERLOAD code, got: {err}"
    );
    let stats = b.stats().expect("stats");
    assert_eq!(stats.global.conns_rejected, 1);
    assert_eq!(stats.global.connections_open, 2);

    // Freeing a slot re-admits.
    a.bye().expect("bye a");
    let mut ok = None;
    for _ in 0..200 {
        match Client::connect(&addr, "c-again") {
            Ok(c) => {
                ok = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    ok.expect("a freed slot must re-admit").bye().expect("bye");
    drop(server.shutdown());
}

/// A subscriber that never drains and blows through the configured
/// drop budget is disconnected (and counted) rather than shedding
/// pushes forever.
#[test]
fn slow_consumers_are_disconnected_past_the_budget() {
    let mut cfg = ServerConfig::new(template());
    cfg.tick = Duration::from_millis(1);
    cfg.ring_capacity = 2;
    cfg.slow_consumer_budget = 50;
    let server = start(cfg);
    let addr = server.local_addr().to_string();

    let mut slowpoke = Client::connect(&addr, "slowpoke").expect("connect");
    let batch: Vec<(u64, u64, u64)> = (0..64u64).map(|i| (3, i / 64, i)).collect();
    slowpoke.ingest(0, &batch).expect("ingest");
    for _ in 0..300 {
        // At 1ms ticks the drop budget can trip while we're still
        // piling on subscriptions — the disconnect killing this very
        // loop is the behavior under test, not a failure.
        if slowpoke
            .subscribe(SubscribeKind::Aggregate, 3, 1, 0)
            .is_err()
        {
            break;
        }
    }
    // Never read a push; the ring sheds until the budget trips.
    let mut observer = Client::connect(&addr, "observer").expect("observer");
    let mut cut = 0u64;
    for _ in 0..400 {
        cut = observer.stats().expect("stats").global.slow_disconnects;
        if cut > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        cut, 1,
        "the slow consumer must be disconnected exactly once"
    );
    drop(server.shutdown());
}
