//! The keyed-batch wire codec shared by the WAL and the network server:
//! one self-describing record per ingest batch of `(key, now, value)`
//! events.
//!
//! Two encodings behind one tag byte:
//!
//! * [`BATCH_ROWS`] — generic row-major: each event's key, timestamp,
//!   and value through their [`StateCodec`] forms in turn. Works for
//!   every key/value type.
//! * [`BATCH_U64_COLUMNS`] — columnar delta-varint, selected
//!   automatically when both key and value are `u64` (the serving-fleet
//!   hot path). Keys are plain varints (zipf traffic keeps the hot
//!   ranks small); timestamps and values are zigzag varint deltas down
//!   their columns (timestamps are near-constant within a batch). A
//!   record shrinks from 24 fixed bytes per event to a few.
//!
//! Decoding is hardened the same way as every other durable codec:
//! truncation, overlong varints, type mismatches, and unknown tags are
//! [`StateError`]s, never panics (`tests/decode_robustness.rs` and the
//! server crate's protocol proptests both fuzz this path).

use swsample_core::state::{StateCodec, StateError, StateReader, StateWriter};

use crate::engine::Event;

/// Wire tag for the generic row-major batch encoding.
pub const BATCH_ROWS: u8 = 0;

/// Wire tag for the columnar delta-varint encoding used when both key
/// and value are `u64`.
pub const BATCH_U64_COLUMNS: u8 = 1;

fn as_u64<V: 'static>(v: &V) -> Option<u64> {
    (v as &dyn std::any::Any).downcast_ref::<u64>().copied()
}

fn from_u64<V: Clone + 'static>(v: u64) -> Option<V> {
    (&v as &dyn std::any::Any).downcast_ref::<V>().cloned()
}

fn u64_fleet<K: 'static, T: 'static>() -> bool {
    use std::any::TypeId;
    TypeId::of::<K>() == TypeId::of::<u64>() && TypeId::of::<T>() == TypeId::of::<u64>()
}

/// Map a wrapping `u64` column delta onto a small varint: zigzag fold
/// so deltas near zero — in either direction — encode in one byte.
fn zigzag(delta: u64) -> u64 {
    let d = delta as i64;
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> u64 {
    ((z >> 1) ^ (z & 1).wrapping_neg()) as i64 as u64
}

/// Encode one ingest batch as a self-describing record (columnar for
/// `u64`/`u64` fleets, row-major otherwise).
pub fn encode_batch<K, T>(batch: &[Event<K, T>]) -> Vec<u8>
where
    K: StateCodec + Clone + 'static,
    T: StateCodec + Clone + 'static,
{
    if u64_fleet::<K, T>() {
        // Columnar varints: capacity is a heuristic (hot batches land
        // well under 6 bytes/event-column-triple).
        let mut w = StateWriter::with_capacity(5 + batch.len() * 6);
        w.put_u8(BATCH_U64_COLUMNS);
        w.put_u32(batch.len() as u32);
        for (key, ..) in batch {
            w.put_varint_u64(as_u64(key).expect("type checked"));
        }
        let mut prev = 0u64;
        for (_, now, _) in batch {
            w.put_varint_u64(zigzag(now.wrapping_sub(prev)));
            prev = *now;
        }
        let mut prev = 0u64;
        for (_, _, value) in batch {
            let v = as_u64(value).expect("type checked");
            w.put_varint_u64(zigzag(v.wrapping_sub(prev)));
            prev = v;
        }
        return w.into_bytes();
    }
    // Exact for fixed-width key/value types; a lower bound otherwise —
    // either way the buffer never reallocates its way up from empty on
    // every batch.
    let mut w = StateWriter::with_capacity(5 + batch.len() * (K::MIN_BYTES + 8 + T::MIN_BYTES));
    w.put_u8(BATCH_ROWS);
    w.put_u32(batch.len() as u32);
    for (key, now, value) in batch {
        key.encode_state(&mut w);
        w.put_u64(*now);
        value.encode_state(&mut w);
    }
    w.into_bytes()
}

/// Decode a record produced by [`encode_batch`]. Malformed bytes —
/// truncation, trailing garbage, a columnar record aimed at a non-`u64`
/// fleet, an unknown tag — are errors, never panics.
pub fn decode_batch<K, T>(bytes: &[u8]) -> Result<Vec<Event<K, T>>, StateError>
where
    K: StateCodec + Clone + 'static,
    T: StateCodec + Clone + 'static,
{
    let mut r = StateReader::new(bytes);
    match r.get_u8()? {
        BATCH_ROWS => {
            let n = r.get_count(K::MIN_BYTES + 8 + T::MIN_BYTES)?;
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                let key = K::decode_state(&mut r)?;
                let now = r.get_u64()?;
                let value = T::decode_state(&mut r)?;
                batch.push((key, now, value));
            }
            r.finish()?;
            Ok(batch)
        }
        BATCH_U64_COLUMNS => {
            if !u64_fleet::<K, T>() {
                return Err(StateError::Corrupt(
                    "columnar u64 batch record in a non-u64 fleet".into(),
                ));
            }
            // Three varint columns, at least one byte per entry.
            let n = r.get_count(3)?;
            let mut batch: Vec<Event<K, T>> = Vec::with_capacity(n);
            for _ in 0..n {
                let key = from_u64::<K>(r.get_varint_u64()?).expect("type checked");
                batch.push((key, 0, from_u64::<T>(0).expect("type checked")));
            }
            let mut prev = 0u64;
            for event in batch.iter_mut() {
                prev = prev.wrapping_add(unzigzag(r.get_varint_u64()?));
                event.1 = prev;
            }
            let mut prev = 0u64;
            for event in batch.iter_mut() {
                prev = prev.wrapping_add(unzigzag(r.get_varint_u64()?));
                event.2 = from_u64::<T>(prev).expect("type checked");
            }
            r.finish()?;
            Ok(batch)
        }
        tag => Err(StateError::Corrupt(format!("unknown batch format {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_codec_round_trips() {
        // u64 fleets take the columnar delta-varint encoding — exercise
        // backward deltas, wraparound-class extremes, and repeats.
        let batch: Vec<Event<u64, u64>> = vec![
            (1, 10, 100),
            (2, 11, 200),
            (u64::MAX, 5, 0),
            (0, u64::MAX, u64::MAX),
            (7, 6, 3),
        ];
        let bytes = encode_batch(&batch);
        assert_eq!(bytes[0], BATCH_U64_COLUMNS);
        assert_eq!(decode_batch::<u64, u64>(&bytes).expect("decode"), batch);
        assert!(decode_batch::<u64, u64>(&bytes[..bytes.len() - 1]).is_err());
        // Non-u64 keys take the generic row-major encoding.
        let rows: Vec<Event<String, u64>> =
            vec![("alpha".into(), 10, 100), ("beta".into(), 11, 200)];
        let bytes = encode_batch(&rows);
        assert_eq!(bytes[0], BATCH_ROWS);
        assert_eq!(decode_batch::<String, u64>(&bytes).expect("decode"), rows);
        assert!(decode_batch::<String, u64>(&bytes[..bytes.len() - 1]).is_err());
        // A columnar record replayed into a non-u64 fleet is corruption,
        // not a panic; so is an unknown tag.
        let columnar = encode_batch(&batch);
        assert!(decode_batch::<String, u64>(&columnar).is_err());
        let mut unknown = columnar.clone();
        unknown[0] = 9;
        assert!(decode_batch::<u64, u64>(&unknown).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let batch: Vec<Event<u64, u64>> = vec![(1, 2, 3)];
        let mut bytes = encode_batch(&batch);
        bytes.push(0);
        assert!(decode_batch::<u64, u64>(&bytes).is_err());
    }
}
