//! The wire protocol: CRC-framed binary messages over TCP.
//!
//! Every message is one [`swsample_durable::frame`] frame
//! (`[len u32 LE][crc32 u32 LE][payload]`) whose payload starts with a
//! one-byte opcode. Bodies use the [`swsample_core::state`] codecs —
//! LEB128 varints (overlong encodings rejected), length-prefixed byte
//! strings — and `INGEST` batches ride the columnar delta-varint batch
//! record from [`swsample_durable::batch`], byte-identical to what the
//! WAL logs.
//!
//! The grammar (client → server opcodes `0x01..`, server → client
//! `0x81..`) is documented per variant on [`ClientMsg`] and
//! [`ServerMsg`]; the README "Serving" section carries the same spec.
//!
//! Decoding is total: truncation, bitflips, overlong varints, oversized
//! length prefixes, unknown opcodes, and trailing garbage all come back
//! as a typed [`ProtocolError`] carrying the byte offset of the
//! offending frame — never a panic, never a hang, never an oversized
//! allocation (frames are capped at [`MAX_MESSAGE_BYTES`] before any
//! buffer is sized).

use std::io::{self, Read};

use swsample_core::state::{StateError, StateReader, StateWriter};
use swsample_durable::batch::{decode_batch, encode_batch};
use swsample_durable::frame::{read_frame_capped, FrameRead, FRAME_HEADER_BYTES};

use crate::stats::StatsSnapshot;

/// Protocol version carried in `HELLO` / `HELLO_ACK`. A server refuses
/// mismatched clients with [`ErrorCode::Version`]. Version 2 added the
/// `HELLO` session id (retry dedup across reconnects) and the
/// [`ErrorCode::Overload`] connection-cap reject.
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on a message payload — far above any legitimate batch,
/// far below the on-disk frame cap. A length prefix beyond this is a
/// torn frame, not an allocation request.
pub const MAX_MESSAGE_BYTES: u32 = 1 << 24;

/// A keyed ingest event as the server fleet consumes it. The network
/// surface is concretely `u64` keys and values — the fleet shape the
/// columnar WAL encoding, the SoA backend, and the CLI all optimize
/// for; heterogeneous fleets stay an in-process (library) concern.
pub type WireEvent = (u64, u64, u64);

/// Typed protocol error codes (the `code` byte of an `ERROR` frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Framing failed: truncated header/payload, checksum mismatch, or
    /// a length prefix over [`MAX_MESSAGE_BYTES`].
    TornFrame = 1,
    /// The frame was intact but its payload failed to decode.
    Malformed = 2,
    /// `HELLO` carried an unsupported protocol version.
    Version = 3,
    /// The opcode byte names no known message.
    UnknownOpcode = 4,
    /// A legal message arrived in an illegal state (e.g. before
    /// `HELLO`).
    State = 5,
    /// The server failed internally while handling the request (e.g. a
    /// WAL write error); the connection stays up.
    Internal = 6,
    /// The server is at its `--max-conns` cap and refused the
    /// connection; sent as the only frame before close. Retry later.
    Overload = 7,
}

impl ErrorCode {
    /// The wire byte for this code.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decode a wire byte.
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::TornFrame),
            2 => Some(ErrorCode::Malformed),
            3 => Some(ErrorCode::Version),
            4 => Some(ErrorCode::UnknownOpcode),
            5 => Some(ErrorCode::State),
            6 => Some(ErrorCode::Internal),
            7 => Some(ErrorCode::Overload),
            _ => None,
        }
    }
}

/// A typed protocol failure: what went wrong, and the byte offset (from
/// the start of the connection's stream) of the frame it went wrong in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// The failure class.
    pub code: ErrorCode,
    /// Stream offset of the first byte of the offending frame.
    pub offset: u64,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "protocol error {:?} at frame offset {}: {}",
            self.code, self.offset, self.detail
        )
    }
}

impl std::error::Error for ProtocolError {}

/// The kind of a standing (continuous) query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscribeKind {
    /// Every `every_ticks` scheduler ticks, push the key's sampled
    /// aggregate (count and sum over the current `k`-sample).
    Aggregate,
    /// Same cadence, but push only when the sampled sum reaches the
    /// subscription's threshold — an alert, not a feed.
    Threshold,
}

/// Messages a client sends. Opcodes `0x01..=0x07`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// `0x01` — must be the first message: `version u32`, a
    /// length-prefixed client name (diagnostics only), then a varint
    /// session id. A nonzero session opts into ingest dedup: the server
    /// remembers the highest `(session, seq)` applied, so a batch
    /// resent after a reconnect (same session) is acked without being
    /// applied twice. Session 0 means no dedup (fire-and-forget
    /// clients, queries).
    Hello {
        /// Client protocol version.
        version: u32,
        /// Free-form client name.
        name: String,
        /// Retry-dedup session id (0 = none). Clients must pick ids
        /// unique across concurrent sessions (e.g. seed-derived).
        session: u64,
    },
    /// `0x02` — an ingest batch: client-chosen sequence number (echoed
    /// in the `OK`/`BUSY` reply) and a batch record from
    /// [`swsample_durable::batch`].
    Ingest {
        /// Client-side batch sequence, echoed in the reply.
        seq: u64,
        /// The events, in arrival order.
        batch: Vec<WireEvent>,
    },
    /// `0x03` — one-shot query for a key's current `k`-sample.
    Query {
        /// The key to sample.
        key: u64,
    },
    /// `0x04` — register a standing query; answered with `SUB_ACK`.
    Subscribe {
        /// Aggregate feed or threshold alert.
        kind: SubscribeKind,
        /// The key the query watches.
        key: u64,
        /// Evaluation cadence in scheduler ticks (min 1).
        every_ticks: u64,
        /// Threshold on the sampled sum (ignored for aggregates).
        threshold: u64,
    },
    /// `0x05` — request a [`StatsSnapshot`].
    Stats,
    /// `0x06` — orderly connection close; answered with `BYE`.
    Bye,
    /// `0x07` — ask the whole server to shut down gracefully (final
    /// WAL fsync + snapshot); answered with `BYE` before the server
    /// begins draining.
    Shutdown,
}

const OP_HELLO: u8 = 0x01;
const OP_INGEST: u8 = 0x02;
const OP_QUERY: u8 = 0x03;
const OP_SUBSCRIBE: u8 = 0x04;
const OP_STATS: u8 = 0x05;
const OP_BYE: u8 = 0x06;
const OP_SHUTDOWN: u8 = 0x07;

const OP_HELLO_ACK: u8 = 0x81;
const OP_OK: u8 = 0x82;
const OP_BUSY: u8 = 0x83;
const OP_SAMPLES: u8 = 0x84;
const OP_SUB_ACK: u8 = 0x85;
const OP_PUSH: u8 = 0x86;
const OP_STATS_REPLY: u8 = 0x87;
const OP_ERROR: u8 = 0x88;
const OP_BYE_ACK: u8 = 0x89;

/// One sampled element as it crosses the wire: `(value, index,
/// timestamp)` — the fields of [`swsample_core::Sample`].
pub type WireSample = (u64, u64, u64);

/// Messages a server sends. Opcodes `0x81..=0x89`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerMsg {
    /// `0x81` — reply to `HELLO`: server version, the connection's id,
    /// and the fleet's template spec string (so clients can render
    /// samples and memory notes exactly as the offline CLI does).
    HelloAck {
        /// Server protocol version.
        version: u32,
        /// This connection's id (appears in STATS).
        conn_id: u64,
        /// The fleet template, in spec-string form.
        template: String,
    },
    /// `0x82` — the ingest batch with this sequence was applied.
    IngestOk {
        /// Echo of the client's batch sequence.
        seq: u64,
        /// Events applied.
        events: u64,
    },
    /// `0x83` — backpressure: the bounded ingest queue is at its
    /// watermark, the batch was **not** enqueued; retry later.
    Busy {
        /// Echo of the client's batch sequence.
        seq: u64,
        /// Events currently queued (≥ the watermark trigger).
        queued_events: u64,
    },
    /// `0x84` — reply to `QUERY`: the key's `k`-sample, or absent if
    /// the key was never seen / its window is empty.
    Samples {
        /// Echo of the queried key.
        key: u64,
        /// The sample, present iff the key answers.
        samples: Option<Vec<WireSample>>,
    },
    /// `0x85` — subscription registered.
    SubAck {
        /// The subscription id (echoed in every `PUSH`).
        id: u64,
    },
    /// `0x86` — a continuous-query result (droppable: slow subscribers
    /// lose oldest pushes first, counted in STATS).
    Push {
        /// Subscription id.
        id: u64,
        /// Scheduler tick that produced this result.
        tick: u64,
        /// The watched key.
        key: u64,
        /// Elements in the key's current sample.
        count: u64,
        /// Sum of the sampled values.
        sum: u64,
    },
    /// `0x87` — reply to `STATS`.
    StatsReply(StatsSnapshot),
    /// `0x88` — typed protocol error; fatal to the connection for
    /// `TornFrame`/`Malformed`/`Version`/`UnknownOpcode`/`State`.
    Error {
        /// The failure class.
        code: ErrorCode,
        /// Stream offset of the offending frame.
        offset: u64,
        /// Human-readable detail.
        detail: String,
    },
    /// `0x89` — reply to `BYE`/`SHUTDOWN`; the server closes after.
    Bye,
}

impl ClientMsg {
    /// Encode to a frame payload (opcode byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        match self {
            ClientMsg::Hello {
                version,
                name,
                session,
            } => {
                w.put_u8(OP_HELLO);
                w.put_u32(*version);
                w.put_len_bytes(name.as_bytes());
                w.put_varint_u64(*session);
            }
            ClientMsg::Ingest { seq, batch } => {
                w.put_u8(OP_INGEST);
                w.put_varint_u64(*seq);
                w.put_len_bytes(&encode_batch(batch));
            }
            ClientMsg::Query { key } => {
                w.put_u8(OP_QUERY);
                w.put_varint_u64(*key);
            }
            ClientMsg::Subscribe {
                kind,
                key,
                every_ticks,
                threshold,
            } => {
                w.put_u8(OP_SUBSCRIBE);
                w.put_u8(match kind {
                    SubscribeKind::Aggregate => 0,
                    SubscribeKind::Threshold => 1,
                });
                w.put_varint_u64(*key);
                w.put_varint_u64(*every_ticks);
                w.put_varint_u64(*threshold);
            }
            ClientMsg::Stats => w.put_u8(OP_STATS),
            ClientMsg::Bye => w.put_u8(OP_BYE),
            ClientMsg::Shutdown => w.put_u8(OP_SHUTDOWN),
        }
        w.into_bytes()
    }

    /// Decode a frame payload. Errors carry no offset — the transport
    /// layer ([`read_client_msg`]) attaches it.
    pub fn decode(payload: &[u8]) -> Result<ClientMsg, DecodeFailure> {
        let mut r = StateReader::new(payload);
        let op = r.get_u8().map_err(DecodeFailure::malformed)?;
        let msg = match op {
            OP_HELLO => {
                let version = r.get_u32().map_err(DecodeFailure::malformed)?;
                let name = get_string(&mut r)?;
                let session = r.get_varint_u64().map_err(DecodeFailure::malformed)?;
                ClientMsg::Hello {
                    version,
                    name,
                    session,
                }
            }
            OP_INGEST => {
                let seq = r.get_varint_u64().map_err(DecodeFailure::malformed)?;
                let record = r.get_len_bytes().map_err(DecodeFailure::malformed)?;
                let batch = decode_batch::<u64, u64>(record).map_err(DecodeFailure::malformed)?;
                ClientMsg::Ingest { seq, batch }
            }
            OP_QUERY => ClientMsg::Query {
                key: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
            },
            OP_SUBSCRIBE => {
                let kind = match r.get_u8().map_err(DecodeFailure::malformed)? {
                    0 => SubscribeKind::Aggregate,
                    1 => SubscribeKind::Threshold,
                    k => {
                        return Err(DecodeFailure {
                            code: ErrorCode::Malformed,
                            detail: format!("unknown subscription kind {k}"),
                        })
                    }
                };
                ClientMsg::Subscribe {
                    kind,
                    key: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
                    every_ticks: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
                    threshold: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
                }
            }
            OP_STATS => ClientMsg::Stats,
            OP_BYE => ClientMsg::Bye,
            OP_SHUTDOWN => ClientMsg::Shutdown,
            op => {
                return Err(DecodeFailure {
                    code: ErrorCode::UnknownOpcode,
                    detail: format!("unknown client opcode {op:#04x}"),
                })
            }
        };
        r.finish().map_err(DecodeFailure::malformed)?;
        Ok(msg)
    }
}

impl ServerMsg {
    /// Encode to a frame payload (opcode byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        match self {
            ServerMsg::HelloAck {
                version,
                conn_id,
                template,
            } => {
                w.put_u8(OP_HELLO_ACK);
                w.put_u32(*version);
                w.put_varint_u64(*conn_id);
                w.put_len_bytes(template.as_bytes());
            }
            ServerMsg::IngestOk { seq, events } => {
                w.put_u8(OP_OK);
                w.put_varint_u64(*seq);
                w.put_varint_u64(*events);
            }
            ServerMsg::Busy { seq, queued_events } => {
                w.put_u8(OP_BUSY);
                w.put_varint_u64(*seq);
                w.put_varint_u64(*queued_events);
            }
            ServerMsg::Samples { key, samples } => {
                w.put_u8(OP_SAMPLES);
                w.put_varint_u64(*key);
                match samples {
                    None => w.put_u8(0),
                    Some(samples) => {
                        w.put_u8(1);
                        w.put_u32(samples.len() as u32);
                        for (value, index, timestamp) in samples {
                            w.put_varint_u64(*value);
                            w.put_varint_u64(*index);
                            w.put_varint_u64(*timestamp);
                        }
                    }
                }
            }
            ServerMsg::SubAck { id } => {
                w.put_u8(OP_SUB_ACK);
                w.put_varint_u64(*id);
            }
            ServerMsg::Push {
                id,
                tick,
                key,
                count,
                sum,
            } => {
                w.put_u8(OP_PUSH);
                w.put_varint_u64(*id);
                w.put_varint_u64(*tick);
                w.put_varint_u64(*key);
                w.put_varint_u64(*count);
                w.put_varint_u64(*sum);
            }
            ServerMsg::StatsReply(snapshot) => {
                w.put_u8(OP_STATS_REPLY);
                snapshot.encode(&mut w);
            }
            ServerMsg::Error {
                code,
                offset,
                detail,
            } => {
                w.put_u8(OP_ERROR);
                w.put_u8(code.as_u8());
                w.put_varint_u64(*offset);
                w.put_len_bytes(detail.as_bytes());
            }
            ServerMsg::Bye => w.put_u8(OP_BYE_ACK),
        }
        w.into_bytes()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<ServerMsg, DecodeFailure> {
        let mut r = StateReader::new(payload);
        let op = r.get_u8().map_err(DecodeFailure::malformed)?;
        let msg = match op {
            OP_HELLO_ACK => {
                let version = r.get_u32().map_err(DecodeFailure::malformed)?;
                let conn_id = r.get_varint_u64().map_err(DecodeFailure::malformed)?;
                let template = get_string(&mut r)?;
                ServerMsg::HelloAck {
                    version,
                    conn_id,
                    template,
                }
            }
            OP_OK => ServerMsg::IngestOk {
                seq: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
                events: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
            },
            OP_BUSY => ServerMsg::Busy {
                seq: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
                queued_events: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
            },
            OP_SAMPLES => {
                let key = r.get_varint_u64().map_err(DecodeFailure::malformed)?;
                let samples = match r.get_u8().map_err(DecodeFailure::malformed)? {
                    0 => None,
                    1 => {
                        let n = r.get_count(3).map_err(DecodeFailure::malformed)?;
                        let mut out = Vec::with_capacity(n);
                        for _ in 0..n {
                            out.push((
                                r.get_varint_u64().map_err(DecodeFailure::malformed)?,
                                r.get_varint_u64().map_err(DecodeFailure::malformed)?,
                                r.get_varint_u64().map_err(DecodeFailure::malformed)?,
                            ));
                        }
                        Some(out)
                    }
                    p => {
                        return Err(DecodeFailure {
                            code: ErrorCode::Malformed,
                            detail: format!("bad presence byte {p}"),
                        })
                    }
                };
                ServerMsg::Samples { key, samples }
            }
            OP_SUB_ACK => ServerMsg::SubAck {
                id: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
            },
            OP_PUSH => ServerMsg::Push {
                id: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
                tick: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
                key: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
                count: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
                sum: r.get_varint_u64().map_err(DecodeFailure::malformed)?,
            },
            OP_STATS_REPLY => ServerMsg::StatsReply(
                StatsSnapshot::decode(&mut r).map_err(DecodeFailure::malformed)?,
            ),
            OP_ERROR => {
                let code_byte = r.get_u8().map_err(DecodeFailure::malformed)?;
                let code = ErrorCode::from_u8(code_byte).ok_or_else(|| DecodeFailure {
                    code: ErrorCode::Malformed,
                    detail: format!("unknown error code {code_byte}"),
                })?;
                let offset = r.get_varint_u64().map_err(DecodeFailure::malformed)?;
                let detail = get_string(&mut r)?;
                ServerMsg::Error {
                    code,
                    offset,
                    detail,
                }
            }
            OP_BYE_ACK => ServerMsg::Bye,
            op => {
                return Err(DecodeFailure {
                    code: ErrorCode::UnknownOpcode,
                    detail: format!("unknown server opcode {op:#04x}"),
                })
            }
        };
        r.finish().map_err(DecodeFailure::malformed)?;
        Ok(msg)
    }
}

/// A payload-level decode failure: the error class plus detail, before
/// the transport layer stamps the frame offset on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeFailure {
    /// [`ErrorCode::Malformed`] or [`ErrorCode::UnknownOpcode`].
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
}

impl DecodeFailure {
    fn malformed(e: StateError) -> DecodeFailure {
        DecodeFailure {
            code: ErrorCode::Malformed,
            detail: e.to_string(),
        }
    }

    /// Attach a frame offset, producing the full typed error.
    pub fn at(self, offset: u64) -> ProtocolError {
        ProtocolError {
            code: self.code,
            offset,
            detail: self.detail,
        }
    }
}

fn get_string(r: &mut StateReader<'_>) -> Result<String, DecodeFailure> {
    let bytes = r.get_len_bytes().map_err(DecodeFailure::malformed)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| DecodeFailure {
        code: ErrorCode::Malformed,
        detail: "string field is not UTF-8".into(),
    })
}

/// One read from a message stream.
#[derive(Debug)]
pub enum ReadOutcome<M> {
    /// A complete, valid message.
    Msg(M),
    /// Clean end of stream on a frame boundary.
    Eof,
    /// Framing or decoding failed; the offset points at the bad frame.
    Bad(ProtocolError),
}

/// Read one client message. `offset` is the cumulative count of bytes
/// consumed by *valid* frames so far — i.e. the stream offset of the
/// frame about to be read — and is advanced on success.
pub fn read_client_msg(r: &mut impl Read, offset: &mut u64) -> io::Result<ReadOutcome<ClientMsg>> {
    read_msg(r, offset, ClientMsg::decode)
}

/// Read one server message (client side), same contract as
/// [`read_client_msg`].
pub fn read_server_msg(r: &mut impl Read, offset: &mut u64) -> io::Result<ReadOutcome<ServerMsg>> {
    read_msg(r, offset, ServerMsg::decode)
}

fn read_msg<M>(
    r: &mut impl Read,
    offset: &mut u64,
    decode: impl FnOnce(&[u8]) -> Result<M, DecodeFailure>,
) -> io::Result<ReadOutcome<M>> {
    match read_frame_capped(r, MAX_MESSAGE_BYTES)? {
        FrameRead::Eof => Ok(ReadOutcome::Eof),
        FrameRead::Torn(detail) => Ok(ReadOutcome::Bad(ProtocolError {
            code: ErrorCode::TornFrame,
            offset: *offset,
            detail,
        })),
        FrameRead::Frame(payload) => match decode(&payload) {
            Ok(msg) => {
                *offset += (FRAME_HEADER_BYTES + payload.len()) as u64;
                Ok(ReadOutcome::Msg(msg))
            }
            Err(fail) => Ok(ReadOutcome::Bad(fail.at(*offset))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsample_durable::frame::write_frame;

    fn round_trip_client(msg: ClientMsg) {
        let payload = msg.encode();
        assert_eq!(ClientMsg::decode(&payload).expect("decode"), msg);
    }

    fn round_trip_server(msg: ServerMsg) {
        let payload = msg.encode();
        assert_eq!(ServerMsg::decode(&payload).expect("decode"), msg);
    }

    #[test]
    fn client_messages_round_trip() {
        round_trip_client(ClientMsg::Hello {
            version: PROTOCOL_VERSION,
            name: "loadgen-3".into(),
            session: 0x1234_5678_9abc_def0,
        });
        round_trip_client(ClientMsg::Ingest {
            seq: 7,
            batch: vec![(1, 10, 100), (2, 10, 200), (u64::MAX, 11, 0)],
        });
        round_trip_client(ClientMsg::Query { key: 42 });
        round_trip_client(ClientMsg::Subscribe {
            kind: SubscribeKind::Threshold,
            key: 3,
            every_ticks: 5,
            threshold: 1000,
        });
        round_trip_client(ClientMsg::Stats);
        round_trip_client(ClientMsg::Bye);
        round_trip_client(ClientMsg::Shutdown);
    }

    #[test]
    fn server_messages_round_trip() {
        round_trip_server(ServerMsg::HelloAck {
            version: PROTOCOL_VERSION,
            conn_id: 9,
            template: "--window seq --n 32 --k 3 --seed 1".into(),
        });
        round_trip_server(ServerMsg::IngestOk {
            seq: 7,
            events: 512,
        });
        round_trip_server(ServerMsg::Busy {
            seq: 8,
            queued_events: 262144,
        });
        round_trip_server(ServerMsg::Samples {
            key: 5,
            samples: Some(vec![(100, 3, 10), (200, 7, 11)]),
        });
        round_trip_server(ServerMsg::Samples {
            key: 6,
            samples: None,
        });
        round_trip_server(ServerMsg::SubAck { id: 2 });
        round_trip_server(ServerMsg::Push {
            id: 2,
            tick: 40,
            key: 5,
            count: 3,
            sum: 999,
        });
        round_trip_server(ServerMsg::Error {
            code: ErrorCode::TornFrame,
            offset: 1234,
            detail: "checksum mismatch".into(),
        });
        round_trip_server(ServerMsg::Bye);
    }

    #[test]
    fn unknown_opcode_is_typed() {
        let err = ClientMsg::decode(&[0x7f]).expect_err("unknown");
        assert_eq!(err.code, ErrorCode::UnknownOpcode);
        let err = ServerMsg::decode(&[0x00]).expect_err("unknown");
        assert_eq!(err.code, ErrorCode::UnknownOpcode);
    }

    #[test]
    fn trailing_garbage_is_malformed() {
        let mut payload = ClientMsg::Stats.encode();
        payload.push(0);
        let err = ClientMsg::decode(&payload).expect_err("trailing");
        assert_eq!(err.code, ErrorCode::Malformed);
    }

    #[test]
    fn read_tracks_frame_offsets() {
        let mut bytes = Vec::new();
        let first = ClientMsg::Query { key: 1 }.encode();
        write_frame(&mut bytes, &first).expect("frame");
        write_frame(&mut bytes, &ClientMsg::Stats.encode()).expect("frame");
        // Truncate inside the second frame: the error's offset points at
        // the second frame's start.
        let cut = FRAME_HEADER_BYTES + first.len() + 3;
        let mut r = &bytes[..cut];
        let mut offset = 0u64;
        match read_client_msg(&mut r, &mut offset).expect("io") {
            ReadOutcome::Msg(ClientMsg::Query { key: 1 }) => {}
            other => panic!("expected first query, got {other:?}"),
        }
        match read_client_msg(&mut r, &mut offset).expect("io") {
            ReadOutcome::Bad(e) => {
                assert_eq!(e.code, ErrorCode::TornFrame);
                assert_eq!(e.offset, (FRAME_HEADER_BYTES + first.len()) as u64);
            }
            other => panic!("expected torn, got {other:?}"),
        }
    }
}
