//! Property-based tests (proptest) on the samplers' structural invariants,
//! driven by arbitrary window sizes, sample counts, and arrival schedules.
//!
//! These complement the distributional chi-square tests: whatever the
//! schedule, (1) samples lie inside the window, (2) without-replacement
//! samples are distinct and correctly sized, (3) memory never exceeds the
//! deterministic caps, and (4) emptiness is reported exactly.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample::core::reservoir::{ReservoirK, ReservoirL};
use swsample::core::seq::{SeqSamplerWor, SeqSamplerWr};
use swsample::core::ts::{TsSamplerWor, TsSamplerWr};
use swsample::core::{MemoryWords, WindowSampler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn seq_wr_sample_always_in_window(
        n in 1u64..200,
        k in 1usize..8,
        len in 1u64..400,
        seed in any::<u64>(),
    ) {
        let mut s = SeqSamplerWr::new(n, k, SmallRng::seed_from_u64(seed));
        for i in 0..len {
            s.insert(i);
        }
        let lo = len.saturating_sub(n);
        let out = s.sample_k().expect("nonempty stream");
        prop_assert_eq!(out.len(), k);
        for smp in out {
            prop_assert!(smp.index() >= lo && smp.index() < len);
            prop_assert_eq!(*smp.value(), smp.index());
        }
    }

    #[test]
    fn seq_wor_distinct_and_sized(
        n in 1u64..100,
        k in 1usize..12,
        len in 1u64..300,
        seed in any::<u64>(),
    ) {
        let mut s = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(seed));
        for i in 0..len {
            s.insert(i);
        }
        let window_len = len.min(n);
        let out = s.sample_k().expect("nonempty stream");
        prop_assert_eq!(out.len() as u64, window_len.min(k as u64));
        let mut idx: Vec<u64> = out.iter().map(|x| x.index()).collect();
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(idx.len(), out.len(), "duplicates in WOR sample");
    }

    #[test]
    fn seq_memory_caps_hold_for_any_schedule(
        n in 1u64..5000,
        k in 1usize..10,
        len in 0u64..1000,
        seed in any::<u64>(),
    ) {
        let mut wr = SeqSamplerWr::new(n, k, SmallRng::seed_from_u64(seed));
        let mut wor = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(seed ^ 1));
        for i in 0..len {
            wr.insert(i);
            wor.insert(i);
            // WR: two 3-word samples + 1 skip index per instance + 3
            // globals; WOR: two k-reservoirs + Algorithm L state.
            prop_assert!(wr.memory_words() <= 7 * k + 3);
            prop_assert!(wor.memory_words() <= 6 * k + 16);
        }
    }

    #[test]
    fn ts_wr_samples_active_under_arbitrary_schedules(
        t0 in 1u64..40,
        bursts in vec((0u64..5, 0u64..6), 1..60),
        seed in any::<u64>(),
    ) {
        // bursts: (tick gap, arrivals at that tick).
        let mut s = TsSamplerWr::new(t0, 2, SmallRng::seed_from_u64(seed));
        let mut now = 0u64;
        let mut idx = 0u64;
        let mut ts_of = Vec::new();
        for (gap, burst) in bursts {
            now += gap;
            s.advance_time(now);
            for _ in 0..burst {
                s.insert(idx);
                ts_of.push(now);
                idx += 1;
            }
            match s.sample_k() {
                Some(out) => {
                    for smp in out {
                        let age = now - ts_of[smp.index() as usize];
                        prop_assert!(age < t0, "expired sample: age {age} >= {t0}");
                    }
                }
                None => {
                    // Verify emptiness is genuine.
                    let active = ts_of.iter().filter(|&&ts| now - ts < t0).count();
                    prop_assert_eq!(active, 0, "sampler claims empty but {} active", active);
                }
            }
        }
    }

    #[test]
    fn ts_wor_distinct_under_arbitrary_schedules(
        t0 in 1u64..30,
        k in 1usize..7,
        bursts in vec((0u64..4, 0u64..5), 1..50),
        seed in any::<u64>(),
    ) {
        let mut s = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(seed));
        let mut now = 0u64;
        let mut idx = 0u64;
        let mut ts_of = Vec::new();
        for (gap, burst) in bursts {
            now += gap;
            s.advance_time(now);
            for _ in 0..burst {
                s.insert(idx);
                ts_of.push(now);
                idx += 1;
            }
            if let Some(out) = s.sample_k() {
                let active = ts_of.iter().filter(|&&ts| now - ts < t0).count();
                prop_assert_eq!(out.len(), active.min(k), "wrong sample size");
                let mut seen: Vec<u64> = out.iter().map(|x| x.index()).collect();
                seen.sort_unstable();
                let len = seen.len();
                seen.dedup();
                prop_assert_eq!(seen.len(), len, "duplicate in TS-WOR sample");
                for smp in &out {
                    prop_assert!(now - smp.timestamp() < t0);
                }
            }
        }
    }

    #[test]
    fn reservoirs_k_and_l_share_invariants(
        k in 1usize..16,
        len in 0u64..500,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut r = ReservoirK::new(k);
        let mut l = ReservoirL::new(k);
        for i in 0..len {
            r.insert(&mut rng, i, i, i);
            l.insert(&mut rng, i, i, i);
        }
        let expect = (len as usize).min(k);
        prop_assert_eq!(r.entries().len(), expect);
        prop_assert_eq!(l.entries().len(), expect);
        for res in [r.entries(), l.entries()] {
            let mut idx: Vec<u64> = res.iter().map(|e| e.index()).collect();
            idx.sort_unstable();
            idx.dedup();
            prop_assert_eq!(idx.len(), res.len(), "reservoir held duplicates");
        }
    }

    #[test]
    fn ts_memory_never_exceeds_log_cap(
        t0 in 1u64..64,
        bursts in vec(0u64..20, 1..80),
        seed in any::<u64>(),
    ) {
        let mut s = TsSamplerWr::new(t0, 1, SmallRng::seed_from_u64(seed));
        let mut idx = 0u64;
        let mut total = 0u64;
        for (tick, burst) in bursts.into_iter().enumerate() {
            s.advance_time(tick as u64);
            for _ in 0..burst {
                s.insert(idx);
                idx += 1;
            }
            total += burst;
            if total > 0 {
                let log_n = 64 - total.leading_zeros() as usize;
                let cap = 9 * (2 * log_n + 3) + 4;
                prop_assert!(
                    s.memory_words() <= cap,
                    "memory {} over cap {cap} at n<= {total}", s.memory_words()
                );
            }
        }
    }
}
