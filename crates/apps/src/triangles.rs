//! Triangle counting over sliding edge-stream windows (Corollary 5.3).
//!
//! The Buriol–Frahling–Leonardi–Marchetti-Spaccamela–Sohler one-pass
//! estimator: sample an edge `e = (a, b)` uniformly from the stream, pick a
//! third vertex `v` uniformly from `V ∖ {a, b}`, and watch whether both
//! `(a, v)` and `(b, v)` appear *after* `e`. For each triangle exactly one
//! (edge, vertex) choice succeeds — its first-appearing edge with the
//! opposite vertex — so
//!
//! ```text
//! E[β] = T₃ / (|E| · (V − 2))      ⇒      T̂₃ = β̄ · |E| · (V − 2)
//! ```
//!
//! Windowed via Theorem 5.1: the uniform edge comes from [`SeqSamplerWr`]
//! over the last `n` edges, and the watch-list rides along in a
//! [`SampleTracker`]. Every post-sample arrival is inside the window (the
//! window is a suffix), so `β` refers precisely to the window's triangles:
//! a triangle whose three edges are active is counted via its first active
//! edge.
//!
//! As in the original estimator, `|E|` counts stream (window) edges with
//! multiplicity; heavy duplication inflates the estimate. The experiments
//! use workloads with low duplication, like the original paper's.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swsample_core::seq::SeqSamplerWr;
use swsample_core::track::SampleTracker;
use swsample_core::MemoryWords;
use swsample_stream::Edge;

/// Watch statistic: the sampled edge's endpoints, the chosen third vertex,
/// and whether each completing edge has been seen.
#[derive(Debug, Clone, Copy)]
pub struct TriangleWatch {
    a: u32,
    b: u32,
    v: u32,
    seen_av: bool,
    seen_bv: bool,
}

impl TriangleWatch {
    /// `true` once both completing edges have appeared.
    pub fn complete(&self) -> bool {
        self.seen_av && self.seen_bv
    }
}

/// Tracker choosing the third vertex and watching for the completing edges.
#[derive(Debug)]
pub struct TriangleTracker {
    nodes: u32,
    rng: SmallRng,
}

impl TriangleTracker {
    /// Tracker over a graph with `nodes ≥ 3` vertices.
    pub fn new(nodes: u32, seed: u64) -> Self {
        assert!(nodes >= 3, "TriangleTracker: need at least 3 nodes");
        Self {
            nodes,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl SampleTracker<Edge> for TriangleTracker {
    type Stat = TriangleWatch;

    fn fresh(&mut self, edge: &Edge, _index: u64) -> TriangleWatch {
        // Uniform v from V \ {a, b}.
        let v = loop {
            let v = self.rng.gen_range(0..self.nodes);
            if v != edge.u && v != edge.v {
                break v;
            }
        };
        TriangleWatch {
            a: edge.u,
            b: edge.v,
            v,
            seen_av: false,
            seen_bv: false,
        }
    }

    fn observe(&mut self, stat: &mut TriangleWatch, incoming: &Edge) {
        if *incoming == Edge::new(stat.a, stat.v) {
            stat.seen_av = true;
        }
        if *incoming == Edge::new(stat.b, stat.v) {
            stat.seen_bv = true;
        }
    }
}

/// Buriol-style triangle-count estimator over the last `n` edges.
#[derive(Debug)]
pub struct TriangleEstimator<R> {
    nodes: u32,
    sampler: SeqSamplerWr<Edge, R, TriangleTracker>,
    estimators: usize,
}

impl<R: Rng> TriangleEstimator<R> {
    /// Estimator over windows of the last `n` edges of a graph on `nodes`
    /// vertices, using `estimators` parallel basic estimators.
    pub fn new(n: u64, nodes: u32, estimators: usize, rng: R, tracker_seed: u64) -> Self {
        assert!(estimators >= 1);
        Self {
            nodes,
            estimators,
            sampler: SeqSamplerWr::with_tracker(
                n,
                estimators,
                rng,
                TriangleTracker::new(nodes, tracker_seed),
            ),
        }
    }

    /// Feed the next edge.
    pub fn insert(&mut self, edge: Edge) {
        self.sampler.push(edge);
    }

    /// Current estimate of the window triangle count; `None` before any
    /// edge arrives.
    pub fn estimate(&mut self) -> Option<f64> {
        let m = self.sampler.active_len();
        if m == 0 {
            return None;
        }
        let picks = self.sampler.sample_k_with_stats()?;
        let hits = picks.iter().filter(|(_, w)| w.complete()).count();
        let beta = hits as f64 / picks.len() as f64;
        Some(beta * m as f64 * (self.nodes as f64 - 2.0))
    }

    /// Number of active edges in the window.
    pub fn active_len(&self) -> u64 {
        self.sampler.active_len()
    }
}

impl<R> MemoryWords for TriangleEstimator<R> {
    fn memory_words(&self) -> usize {
        // Sampler + 5-word watch stat per estimator.
        self.sampler.memory_words() + self.estimators * 5 + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use swsample_stream::{count_triangles, EdgeStreamGen};

    #[test]
    fn empty_returns_none() {
        let mut est = TriangleEstimator::new(10, 5, 4, SmallRng::seed_from_u64(0), 1);
        assert!(est.estimate().is_none());
    }

    #[test]
    fn triangle_free_window_estimates_zero() {
        // A long path has no triangles.
        let mut est = TriangleEstimator::new(50, 100, 32, SmallRng::seed_from_u64(1), 2);
        for i in 0..60u32 {
            est.insert(Edge::new(i, i + 1));
        }
        assert_eq!(est.estimate().expect("nonempty"), 0.0);
    }

    #[test]
    fn dense_triangle_stream_estimates_nonzero_and_sane() {
        let mut gen = EdgeStreamGen::new(20, 0.6);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 200u64;
        // Average over independent estimator instances and window replays.
        let mut mean_est = 0.0;
        let reps = 30;
        let mut window: Vec<Edge> = Vec::new();
        for rep in 0..reps {
            let mut est =
                TriangleEstimator::new(n, 20, 64, SmallRng::seed_from_u64(100 + rep), rep);
            window.clear();
            for _ in 0..n {
                let e = gen.next_edge(&mut rng);
                window.push(e);
                est.insert(e);
            }
            mean_est += est.estimate().expect("nonempty");
        }
        mean_est /= reps as f64;
        let exact = count_triangles(&window) as f64;
        // Rough agreement: same order of magnitude (the estimator's variance
        // at 64 samples is substantial; E10 sweeps this properly).
        assert!(mean_est > 0.0, "estimated zero triangles in dense stream");
        assert!(
            mean_est < 40.0 * exact.max(1.0),
            "estimate {mean_est} wildly above exact {exact}"
        );
    }

    #[test]
    fn watch_completes_on_both_edges() {
        let mut tr = TriangleTracker::new(10, 7);
        let mut w = tr.fresh(&Edge::new(0, 1), 0);
        assert!(!w.complete());
        let v = w.v;
        tr.observe(&mut w, &Edge::new(0, v));
        assert!(!w.complete());
        tr.observe(&mut w, &Edge::new(1, v));
        assert!(w.complete());
    }

    #[test]
    fn tracker_never_picks_endpoint() {
        let mut tr = TriangleTracker::new(3, 9);
        for _ in 0..100 {
            let w = tr.fresh(&Edge::new(0, 2), 0);
            assert_eq!(w.v, 1);
        }
    }
}
