//! The load generator: N concurrent connections driving zipf-keyed
//! batches, end-to-end throughput and reply-latency percentiles, and
//! the across-the-wire determinism check.
//!
//! The workload is byte-for-byte the CLI `multi` workload (same
//! [`ZipfGen`] + [`SmallRng`] draw order, same `(key, i/64, i)`
//! shape), routed to connections by `key % connections` so each key's
//! event subsequence rides one connection in order. Per-key sampler
//! state depends only on that key's own batched subsequence, so the
//! server's interleaving of connections is immaterial: an offline
//! engine fed each connection's batches in connection-major order must
//! answer **byte-identically** — [`run`] asserts exactly that when
//! [`LoadgenConfig::verify`] is set. With one connection the server
//! applies precisely `multi`'s batch sequence, which is what the CI
//! smoke diffs ([`LoadgenConfig::render_multi`] reproduces `multi`'s
//! stdout from query replies alone).

use std::io::{self, Write};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample_core::fault::mix64;
use swsample_core::spec::{Algorithm, SamplerSpec, WindowKind};
use swsample_stream::{MultiStreamEngine, ValueGen, ZipfGen};

use crate::client::{Backoff, Client};
use crate::protocol::{WireEvent, WireSample};

/// What to drive and how hard.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Zipf key domain (the `multi --keys` flag).
    pub keys: u64,
    /// Total events (the `multi --count` flag).
    pub count: u64,
    /// Zipf skew.
    pub theta: f64,
    /// Workload RNG seed.
    pub workload_seed: u64,
    /// Events per `INGEST` batch.
    pub batch: usize,
    /// After driving, replay the same batches into an offline engine
    /// and assert every touched key's server answer is byte-identical.
    pub verify: bool,
    /// Reproduce the CLI `multi` stdout (top keys, `# keys`, `# memory`
    /// lines) from query replies — only meaningful with 1 connection,
    /// where the server's batch sequence equals `multi`'s.
    pub render_multi: bool,
    /// Hot keys to print in `render_multi` mode.
    pub show: usize,
    /// Send `SHUTDOWN` when done (after queries), asking the server to
    /// drain, fsync, and snapshot.
    pub shutdown_server: bool,
    /// First retry delay for `BUSY` storms and reconnects.
    pub retry_base: Duration,
    /// Retry delay ceiling (bounded exponential backoff).
    pub retry_cap: Duration,
    /// Overall per-operation deadline across `BUSY` retries and
    /// reconnect attempts; `Duration::ZERO` retries forever.
    pub retry_deadline: Duration,
    /// Socket read timeout, so a stalled or byte-flipped server reply
    /// surfaces as an error (and a reconnect) instead of hanging a
    /// connection thread forever. `Duration::ZERO` means blocking
    /// reads.
    pub io_timeout: Duration,
}

impl LoadgenConfig {
    /// Defaults mirroring `multi`'s: 1 connection, 1000 keys, 100k
    /// events, theta 1.1, seed 1, 512-event batches, no verification.
    pub fn new(addr: impl Into<String>) -> LoadgenConfig {
        LoadgenConfig {
            addr: addr.into(),
            connections: 1,
            keys: 1000,
            count: 100_000,
            theta: 1.1,
            workload_seed: 1,
            batch: 512,
            verify: false,
            render_multi: false,
            show: 3,
            shutdown_server: false,
            retry_base: Duration::from_micros(200),
            retry_cap: Duration::from_millis(50),
            retry_deadline: Duration::from_secs(30),
            io_timeout: Duration::from_secs(10),
        }
    }

    /// The retry policy for connection `c`, with a seed derived from
    /// the workload seed and the connection index so concurrent
    /// backoffs don't synchronize (and a given seed replays the same
    /// pacing).
    fn backoff(&self, c: u64) -> Backoff {
        Backoff {
            base: self.retry_base,
            cap: self.retry_cap,
            deadline: (!self.retry_deadline.is_zero()).then_some(self.retry_deadline),
            seed: mix64(self.workload_seed, 0x0042_4143_4b4f_4646, c),
        }
    }
}

/// Connection `c`'s ingest-dedup session id: nonzero, stable for the
/// whole run (so a reconnect resumes the same session) but unique
/// *across* runs — the nonce keeps a second loadgen run against the
/// same server from colliding with the first run's watermarks and
/// silently deduping everything. Session values never influence
/// sampled bytes, so per-run entropy here doesn't cost determinism.
fn session(run_nonce: u64, c: u64) -> u64 {
    mix64(run_nonce, 0x0053_4553_5349_4f4e, c) | 1
}

/// Per-run session entropy: wall clock + pid, mixed.
fn run_nonce() -> u64 {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    mix64(now, u64::from(std::process::id()), 0)
}

/// What the run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Events driven end-to-end.
    pub events_sent: u64,
    /// `INGEST` batches driven (excluding busy retries).
    pub batches_sent: u64,
    /// Wall-clock seconds from first byte to last ack.
    pub seconds: f64,
    /// `events_sent / seconds`.
    pub elems_per_sec: f64,
    /// Median ingest reply latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile ingest reply latency, microseconds.
    pub p99_us: u64,
    /// `BUSY` rejections absorbed by retry (0 = no backpressure hit).
    pub busy_retries: u64,
    /// Connections re-established after a mid-run drop (0 = no faults
    /// or dead peers encountered). Retried batches are deduped
    /// server-side by session, so reconnects never double-apply.
    pub reconnects: u64,
    /// Keys compared against the offline engine (0 unless `verify`).
    pub verified_keys: u64,
}

/// The workload, pre-partitioned: per-connection batch lists plus the
/// per-key traffic counts (for `render_multi`'s hot-key report).
struct Workload {
    per_conn: Vec<Vec<Vec<WireEvent>>>,
    traffic: Vec<(u64, u64)>,
}

fn generate(cfg: &LoadgenConfig) -> Workload {
    let mut rng = SmallRng::seed_from_u64(cfg.workload_seed);
    let mut zipf = ZipfGen::new(cfg.keys, cfg.theta);
    let mut traffic: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let conns = cfg.connections.max(1);
    let mut per_conn: Vec<Vec<Vec<WireEvent>>> = vec![Vec::new(); conns];
    let mut open: Vec<Vec<WireEvent>> = vec![Vec::with_capacity(cfg.batch); conns];
    for i in 0..cfg.count {
        let key = zipf.next_value(&mut rng);
        *traffic.entry(key).or_insert(0) += 1;
        let c = (key % conns as u64) as usize;
        open[c].push((key, i / 64, i));
        if open[c].len() >= cfg.batch {
            per_conn[c].push(std::mem::replace(
                &mut open[c],
                Vec::with_capacity(cfg.batch),
            ));
        }
    }
    for (c, chunk) in open.into_iter().enumerate() {
        if !chunk.is_empty() {
            per_conn[c].push(chunk);
        }
    }
    let mut traffic: Vec<(u64, u64)> = traffic.into_iter().collect();
    // `multi`'s deterministic hot-key order: traffic descending, key
    // ascending as the tiebreak.
    traffic.sort_unstable_by_key(|&(key, cnt)| (std::cmp::Reverse(cnt), key));
    Workload { per_conn, traffic }
}

/// `multi`'s memory-line qualifier, reproduced client-side from the
/// template the server handed back in `HELLO_ACK`.
fn memory_note(spec: &SamplerSpec) -> &'static str {
    match (spec.algorithm, spec.window) {
        (Algorithm::Paper, WindowKind::Timestamp(_)) => "deterministic O(k log n)",
        (Algorithm::Paper, _) | (Algorithm::ReservoirL, _) => "deterministic",
        (Algorithm::WindowBuffer, _) => "exact O(n) buffer",
        (Algorithm::Chain, _) | (Algorithm::Priority, _) => "randomized bound",
    }
}

fn render_samples(samples: &Option<Vec<WireSample>>, timestamped: bool) -> String {
    match samples {
        Some(samples) => samples
            .iter()
            .map(|(value, index, timestamp)| {
                if timestamped {
                    format!("{value}@t{timestamp}")
                } else {
                    format!("{value}@{index}")
                }
            })
            .collect::<Vec<_>>()
            .join(" "),
        None => "(window empty)".into(),
    }
}

/// The query/verify phase's fault-tolerant client: every operation it
/// runs is idempotent (queries, stats, template fetch), so on any error
/// it reconnects and simply retries under the backoff's deadline.
struct QuerySide {
    addr: String,
    io_timeout: Duration,
    backoff: Backoff,
    client: Option<Client>,
    reconnects: u64,
}

impl QuerySide {
    fn with<T>(&mut self, mut op: impl FnMut(&mut Client) -> io::Result<T>) -> io::Result<T> {
        let started = Instant::now();
        let mut attempt = 0u64;
        let mut last: Option<io::Error> = None;
        loop {
            if self.client.is_none() {
                match Client::connect(&self.addr, "loadgen-query") {
                    Ok(mut c) => {
                        if !self.io_timeout.is_zero() {
                            c.set_read_timeout(Some(self.io_timeout))?;
                        }
                        self.client = Some(c);
                    }
                    Err(e) => last = Some(e),
                }
            }
            if let Some(c) = self.client.as_mut() {
                match op(c) {
                    Ok(v) => return Ok(v),
                    Err(e) => {
                        self.client = None;
                        self.reconnects += 1;
                        last = Some(e);
                    }
                }
            }
            if self
                .backoff
                .deadline
                .is_some_and(|d| started.elapsed() >= d)
            {
                let detail = last.map(|e| e.to_string()).unwrap_or_default();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("query-side retry deadline exceeded: {detail}"),
                ));
            }
            std::thread::sleep(self.backoff.delay(attempt));
            attempt += 1;
        }
    }
}

/// Per-connection driver: ingest every batch exactly-once, reconnecting
/// (same session, so the server dedupes resent batches whose acks were
/// lost) whenever the connection dies under it. Returns the per-batch
/// latencies, `BUSY` retries absorbed, and reconnect count.
fn drive_conn(
    addr: &str,
    c: usize,
    session: u64,
    batches: &[Vec<WireEvent>],
    backoff: &Backoff,
    io_timeout: Duration,
) -> io::Result<(Vec<u64>, u64, u64)> {
    let name = format!("loadgen-{c}");
    let mut client: Option<Client> = None;
    let mut latencies = Vec::with_capacity(batches.len());
    let mut busy = 0u64;
    let mut reconnects = 0u64;
    let mut seq = 0usize;
    // Per-batch clock: BUSY retries *and* reconnect attempts for one
    // batch share the deadline, so a wedged server can't stall a
    // connection thread forever.
    let mut op_started = Instant::now();
    let mut attempt = 0u64;
    while seq < batches.len() {
        if client.is_none() {
            match Client::connect_with_session(addr, &name, session) {
                Ok(mut fresh) => {
                    if !io_timeout.is_zero() {
                        fresh.set_read_timeout(Some(io_timeout))?;
                    }
                    client = Some(fresh);
                }
                Err(e) => {
                    if backoff.deadline.is_some_and(|d| op_started.elapsed() >= d) {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("conn {c}: reconnect for seq {seq} failed: {e}"),
                        ));
                    }
                    std::thread::sleep(backoff.delay(attempt));
                    attempt += 1;
                    continue;
                }
            }
        }
        let active = client.as_mut().expect("just connected");
        let t0 = Instant::now();
        match active.ingest_retry_with(seq as u64, &batches[seq], backoff) {
            Ok(b) => {
                busy += b;
                latencies.push(t0.elapsed().as_micros() as u64);
                seq += 1;
                op_started = Instant::now();
                attempt = 0;
            }
            Err(e) => {
                // Connection is suspect (dropped, stalled past the io
                // timeout, or a corrupted frame): rebuild it and resend
                // this seq — dedup makes the resend exactly-once.
                client = None;
                reconnects += 1;
                if backoff.deadline.is_some_and(|d| op_started.elapsed() >= d) {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("conn {c}: seq {seq} undeliverable: {e}"),
                    ));
                }
                std::thread::sleep(backoff.delay(attempt));
                attempt += 1;
            }
        }
    }
    if let Some(active) = client.take() {
        // Best-effort: under injected faults the goodbye itself can
        // die, and that's fine — every batch is already acked.
        let _ = active.bye();
    }
    Ok((latencies, busy, reconnects))
}

/// Drive the configured load, then (optionally) verify determinism
/// across the wire and render `multi`-format output to `out`.
pub fn run(cfg: &LoadgenConfig, out: &mut dyn Write) -> io::Result<LoadgenReport> {
    let workload = generate(cfg);
    let nonce = run_nonce();
    let started = Instant::now();
    let mut handles = Vec::new();
    for (c, batches) in workload.per_conn.iter().enumerate() {
        let addr = cfg.addr.clone();
        let batches = batches.clone();
        let backoff = cfg.backoff(c as u64);
        let session = session(nonce, c as u64);
        let io_timeout = cfg.io_timeout;
        handles.push(
            std::thread::Builder::new()
                .name(format!("swsample-loadgen-{c}"))
                .spawn(move || -> io::Result<(Vec<u64>, u64, u64)> {
                    drive_conn(&addr, c, session, &batches, &backoff, io_timeout)
                })?,
        );
    }
    let mut latencies: Vec<u64> = Vec::new();
    let mut busy_retries = 0u64;
    let mut reconnects = 0u64;
    for handle in handles {
        let (lat, busy, re) = handle
            .join()
            .map_err(|_| io::Error::other("loadgen connection thread panicked"))??;
        latencies.extend(lat);
        busy_retries += busy;
        reconnects += re;
    }
    let seconds = started.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let at = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[at]
    };
    let batches_sent = latencies.len() as u64;
    let mut report = LoadgenReport {
        events_sent: cfg.count,
        batches_sent,
        seconds,
        elems_per_sec: cfg.count as f64 / seconds,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        busy_retries,
        reconnects,
        verified_keys: 0,
    };

    // Every ack is in hand, so the server has applied everything;
    // queries from here are stable (and idempotent, so the query side
    // reconnects and retries freely under injected faults).
    let mut query_side = QuerySide {
        addr: cfg.addr.clone(),
        io_timeout: cfg.io_timeout,
        backoff: cfg.backoff(u64::MAX),
        client: None,
        reconnects: 0,
    };
    let template: SamplerSpec = query_side
        .with(|c| Ok(c.template().to_string()))?
        .parse()
        .map_err(|e| io::Error::other(format!("server template unparseable: {e}")))?;
    let timestamped = matches!(template.window, WindowKind::Timestamp(_));

    if cfg.verify {
        // The offline reference: same batches, connection-major order.
        // Per-key state folds over that key's own subsequence alone, so
        // any server-side interleaving of connections must agree.
        let mut offline: MultiStreamEngine<u64, u64> = MultiStreamEngine::new(template.clone())
            .map_err(|e| io::Error::other(e.to_string()))?;
        for batches in &workload.per_conn {
            for batch in batches {
                offline.ingest(batch);
            }
        }
        for &(key, _) in &workload.traffic {
            let expect: Option<Vec<WireSample>> = offline.sample_k(&key).map(|samples| {
                samples
                    .iter()
                    .map(|s| (*s.value(), s.index(), s.timestamp()))
                    .collect()
            });
            let got = query_side.with(|c| c.query(key))?;
            if got != expect {
                return Err(io::Error::other(format!(
                    "determinism violation at key {key}: server {got:?}, offline {expect:?}"
                )));
            }
            report.verified_keys += 1;
        }
    }

    if cfg.render_multi {
        let stats = query_side.with(|c| c.stats())?;
        for &(key, cnt) in workload.traffic.iter().take(cfg.show) {
            let rendered = render_samples(&query_side.with(|c| c.query(key))?, timestamped);
            writeln!(out, "key {key}\t{cnt} arrivals\t{rendered}")?;
        }
        writeln!(
            out,
            "# keys: {}/{} materialized across {} shards",
            stats.engine.keys, cfg.keys, stats.engine.shards
        )?;
        writeln!(
            out,
            "# memory: fleet {} words, max per key {} words ({})",
            stats.engine.memory_words,
            stats.engine.max_key_words,
            memory_note(&template)
        )?;
    }

    if cfg.shutdown_server {
        // The SHUTDOWN's BYE ack can itself be lost to an injected
        // fault; a refused reconnect after at least one attempt means
        // the server took the order and closed its listener — success.
        let started = Instant::now();
        let mut attempt = 0u64;
        loop {
            let res = match query_side.client.as_mut() {
                Some(c) => c.shutdown_server(),
                None => match Client::connect(&cfg.addr, "loadgen-shutdown") {
                    Ok(mut c) => {
                        if !cfg.io_timeout.is_zero() {
                            c.set_read_timeout(Some(cfg.io_timeout))?;
                        }
                        let res = c.shutdown_server();
                        query_side.client = Some(c);
                        res
                    }
                    Err(e) if e.kind() == io::ErrorKind::ConnectionRefused && attempt > 0 => {
                        break;
                    }
                    Err(e) => Err(e),
                },
            };
            match res {
                Ok(()) => break,
                Err(e) => {
                    query_side.client = None;
                    let deadline = query_side.backoff.deadline;
                    if deadline.is_some_and(|d| started.elapsed() >= d) {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("SHUTDOWN undeliverable: {e}"),
                        ));
                    }
                    std::thread::sleep(query_side.backoff.delay(attempt));
                    attempt += 1;
                }
            }
        }
    } else if let Some(c) = query_side.client.take() {
        // Best-effort goodbye; under faults the server may already have
        // severed us.
        let _ = c.bye();
    }
    report.reconnects += query_side.reconnects;
    Ok(report)
}
