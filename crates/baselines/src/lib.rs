//! Prior sliding-window sampling methods — the paper's comparison set.
//!
//! The paper's contribution is best understood against what came before; to
//! reproduce its claims we implement every baseline it discusses:
//!
//! * [`chain`] — **chain sampling** (Babcock–Datar–Motwani, SODA'02) for
//!   sequence-based windows: expected `O(k)` memory but only a *randomized*
//!   bound — the successor chain length is a random variable.
//! * [`priority`] — **priority sampling** (Babcock–Datar–Motwani) for
//!   timestamp-based windows: expected `O(k log n)` memory, again
//!   randomized.
//! * [`priority_topk`] — the Gemulla–Lehner (SIGMOD'08) extension keeping
//!   the `k` highest-priority active elements: sampling *without*
//!   replacement with expected `O(k log n)` memory.
//! * [`oversample`] — the naive **over-sampling** strategy the paper's
//!   introduction criticizes: maintain `k' > k` position samples per bucket
//!   and hope at least `k` survive; exhibits both disadvantages (a) extra
//!   cost and (b) a failure probability that never vanishes.
//! * [`window_buffer`] — the trivial exact method (Zhang et al.): buffer the
//!   whole window, `O(n)` memory; ground truth in tests.
//! * [`vitter`] — plain reservoir sampling over the entire stream (no
//!   window); the reference point for Question 1.2 ("is sampling from
//!   sliding windows harder than from streams?").
//!
//! Every baseline implements the same [`swsample_core::WindowSampler`] and
//! [`swsample_core::MemoryWords`] traits as the paper's samplers, so the
//! experiment harness can sweep them interchangeably — and all of them are
//! constructible declaratively through [`spec::build`], the full
//! [`swsample_core::spec::SamplerSpec`] factory covering baseline and
//! paper algorithms alike. The point the
//! experiments make (E6): for the baselines, `memory_words()` is a random
//! variable whose maximum grows with the stream; for the paper's samplers it
//! has a hard deterministic ceiling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod oversample;
pub mod priority;
pub mod priority_topk;
pub mod spec;
pub mod vitter;
pub mod window_buffer;

pub use chain::ChainSampler;
pub use oversample::OverSampler;
pub use priority::PrioritySampler;
pub use priority_topk::PriorityTopK;
pub use vitter::{NaiveStreamReservoir, StreamReservoir};
pub use window_buffer::WindowBuffer;
