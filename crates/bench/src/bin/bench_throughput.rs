//! `bench_throughput` — regenerate `BENCH_throughput.json`, the repo's
//! machine-readable ingestion-throughput baseline.
//!
//! ```text
//! bench_throughput                        # full suite -> BENCH_throughput.json
//! bench_throughput --quick --out /tmp/t.json   # CI smoke shape
//! ```
//!
//! The suite is seeded and the sampler/config matrix is fixed, so the only
//! run-to-run variance is wall-clock noise; `rng_draws` columns are exact
//! and fully reproducible. The binary validates the JSON it wrote (with
//! the bench crate's own parser) and exits non-zero if it does not parse —
//! the CI smoke step relies on that plus an external `json.tool` pass.
//!
//! Run it from the repo root with `cargo run --release -p swsample-bench
//! --bin bench_throughput`; always use `--release`, a debug-profile
//! baseline would be meaningless.

use swsample_bench::throughput::{params, run_multi, run_with, speedup, to_json};
use swsample_bench::{json, table_header, table_row};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: bench_throughput [--quick] [--out PATH]");
        return;
    }

    let p = params(quick);
    eprintln!(
        "running throughput suite ({}; {} configurations)...",
        if quick { "quick" } else { "full" },
        p.ks.len() * (p.ns.len() * 12 + 2)
    );
    let rows = run_with(&p);

    table_header(
        "ingestion throughput (batched API, seeded streams)",
        &["sampler", "win", "k", "n", "elems/s", "draws/elem"],
    );
    for r in &rows {
        table_row(&[
            r.sampler.into(),
            r.discipline.into(),
            r.k.to_string(),
            r.n.to_string(),
            format!("{:.0}", r.elems_per_sec),
            format!("{:.4}", r.rng_draws as f64 / r.elements as f64),
        ]);
    }
    if let Some(s) = speedup(&rows, "seq_wr_skip", "seq_wr_naive", 64, 100_000) {
        println!("\nseq-WR skip vs naive at k=64, n=1e5: {s:.1}x elems/sec");
        if s < 5.0 {
            // Hard gate: never write a baseline artifact that violates the
            // acceptance bar (tests/skip_equivalence.rs re-checks the
            // committed file, so a regression cannot slip through either).
            eprintln!("bench_throughput: skip-path speedup {s:.1}x below the 5x acceptance bar");
            std::process::exit(1);
        }
    }
    for (fused, indep, label) in [
        ("ts_wr", "ts_wr_indep", "ts-WR"),
        ("ts_wor", "ts_wor_indep", "ts-WOR"),
    ] {
        if let Some(s) = speedup(&rows, fused, indep, 64, 100_000) {
            println!("{label} fused bank vs independent engines at k=64, n=1e5: {s:.1}x elems/sec");
            if s < 5.0 {
                eprintln!(
                    "bench_throughput: {label} bank speedup {s:.1}x below the 5x acceptance bar"
                );
                std::process::exit(1);
            }
        }
    }
    // The fused ts rows are draw-gated: ingestion must cost at most
    // k/32 + 1 RNG words per element (packed merge-coin bits), in quick
    // and full shapes alike. CI re-asserts this on the emitted JSON.
    for r in rows
        .iter()
        .filter(|r| r.sampler == "ts_wr" || r.sampler == "ts_wor")
    {
        let dpe = r.rng_draws as f64 / r.elements as f64;
        let bound = r.k as f64 / 32.0 + 1.0;
        if dpe > bound {
            eprintln!(
                "bench_throughput: {} k={} draws/element {dpe:.4} above the k/32+1 bound {bound}",
                r.sampler, r.k
            );
            std::process::exit(1);
        }
    }

    let multi = run_multi(&p);
    table_header(
        "multi-stream engine (zipf-keyed fleet, seq-WR template, batched keyed ingest)",
        &[
            "keys",
            "k",
            "shards",
            "fleet elems/s",
            "keys touched",
            "fleet words",
            "max key words",
        ],
    );
    for r in &multi {
        table_row(&[
            r.keys.to_string(),
            r.k.to_string(),
            r.shards.to_string(),
            format!("{:.0}", r.elems_per_sec),
            r.keys_touched.to_string(),
            r.memory_words.to_string(),
            r.max_key_words.to_string(),
        ]);
    }

    let doc = to_json(&rows, &multi, quick);
    if let Err(e) = json::validate(&doc) {
        eprintln!("bench_throughput: emitted invalid JSON ({e}) — refusing to write");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("bench_throughput: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    // Re-read and re-validate: the committed artifact itself must parse.
    match std::fs::read_to_string(&out_path) {
        Ok(back) => {
            if let Err(e) = json::validate(&back) {
                eprintln!("bench_throughput: {out_path} does not re-parse ({e})");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("bench_throughput: cannot re-read {out_path}: {e}");
            std::process::exit(1);
        }
    }
    println!("\nwrote {out_path} ({} rows, validated)", rows.len());
}
