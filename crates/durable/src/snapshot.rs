//! `O(k)`-per-key fleet snapshots: `snap-<wal_seq>.snap` files holding a
//! config header plus every key's compact sampler state.
//!
//! A snapshot is written to a temp file, fsynced, and renamed into
//! place, so a crash mid-write can never damage an existing snapshot.
//! Reading validates every frame's CRC, the header version, the key
//! count, and each embedded sampler record's own checksum; any failure
//! makes the whole snapshot invalid, and recovery falls back to the next
//! older one.

use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use swsample_core::state::{SamplerState, StateCodec, StateReader, StateWriter};

use crate::frame::{self, FrameRead};
use crate::DurableError;

/// Version tag leading every snapshot header.
pub const SNAPSHOT_VERSION: u32 = 1;

/// What a snapshot file decodes to: its recorded fleet configuration
/// plus every key's sampler state.
pub type SnapshotContents<K, T> = (SnapshotMeta, Vec<(K, SamplerState<T>)>);

/// The fleet configuration a snapshot records alongside its states —
/// everything needed to rebuild the engine before restoring keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// The template spec, in its canonical `Display` form.
    pub template: String,
    /// Fleet backend token (`soa` / `erased`).
    pub backend: String,
    /// Shard count at snapshot time.
    pub shards: u64,
    /// Worker-thread count at snapshot time.
    pub threads: u64,
    /// The first WAL sequence number **not** reflected in these states:
    /// recovery replays records with `seq >= wal_seq`.
    pub wal_seq: u64,
    /// Number of per-key state frames that follow the header.
    pub keys: u64,
}

/// Name of the snapshot covering everything before `wal_seq`. Fixed
/// width so lexicographic order is numeric order.
pub fn snapshot_name(wal_seq: u64) -> String {
    format!("snap-{wal_seq:016x}.snap")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    u64::from_str_radix(hex, 16).ok()
}

/// All snapshot paths in `dir`, ascending by covered WAL position.
pub fn list_snapshots(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(out)
}

fn corrupt(path: &Path, detail: impl Into<String>) -> DurableError {
    DurableError::Corrupt {
        file: path.to_path_buf(),
        detail: detail.into(),
    }
}

/// Write a snapshot of `states` to `dir`, atomically. Returns the final
/// path. Overwrites an existing snapshot at the same `wal_seq` (the
/// newer states cover at least as much of the log).
pub fn write_snapshot<K: StateCodec, T: StateCodec + Clone>(
    dir: &Path,
    meta: &SnapshotMeta,
    states: &[(K, SamplerState<T>)],
) -> Result<PathBuf, DurableError> {
    assert_eq!(meta.keys as usize, states.len(), "meta.keys mismatch");
    let tmp_path = dir.join("snap.tmp");
    let final_path = dir.join(snapshot_name(meta.wal_seq));
    {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp_path)?;
        let mut w = BufWriter::new(file);
        let mut header = StateWriter::new();
        header.put_u32(SNAPSHOT_VERSION);
        header.put_len_bytes(meta.template.as_bytes());
        header.put_len_bytes(meta.backend.as_bytes());
        header.put_u64(meta.shards);
        header.put_u64(meta.threads);
        header.put_u64(meta.wal_seq);
        header.put_u64(meta.keys);
        frame::write_frame(&mut w, &header.into_bytes())?;
        for (key, state) in states {
            let mut body = StateWriter::new();
            key.encode_state(&mut body);
            body.put_len_bytes(&state.encode_record());
            frame::write_frame(&mut w, &body.into_bytes())?;
        }
        w.flush()?;
        w.get_ref().sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Persist the rename itself.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Read and fully validate one snapshot file.
pub fn read_snapshot<K: StateCodec, T: StateCodec + Clone>(
    path: &Path,
) -> Result<SnapshotContents<K, T>, DurableError> {
    let mut r = BufReader::new(File::open(path)?);
    let header = match frame::read_frame(&mut r)? {
        FrameRead::Frame(p) => p,
        FrameRead::Eof => return Err(corrupt(path, "empty snapshot")),
        FrameRead::Torn(detail) => return Err(corrupt(path, format!("header: {detail}"))),
    };
    let mut hr = StateReader::new(&header);
    let meta = (|| -> Result<SnapshotMeta, swsample_core::state::StateError> {
        let version = hr.get_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(swsample_core::state::StateError::Version(version));
        }
        let template = String::from_utf8(hr.get_len_bytes()?.to_vec())
            .map_err(|_| swsample_core::state::StateError::Corrupt("non-utf8 template".into()))?;
        let backend = String::from_utf8(hr.get_len_bytes()?.to_vec())
            .map_err(|_| swsample_core::state::StateError::Corrupt("non-utf8 backend".into()))?;
        let shards = hr.get_u64()?;
        let threads = hr.get_u64()?;
        let wal_seq = hr.get_u64()?;
        let keys = hr.get_u64()?;
        hr.finish()?;
        Ok(SnapshotMeta {
            template,
            backend,
            shards,
            threads,
            wal_seq,
            keys,
        })
    })()
    .map_err(|e| corrupt(path, format!("header: {e}")))?;
    if let Some(expect) =
        parse_snapshot_name(path.file_name().and_then(|n| n.to_str()).unwrap_or(""))
    {
        if expect != meta.wal_seq {
            return Err(corrupt(
                path,
                format!(
                    "file name says wal_seq {expect}, header says {}",
                    meta.wal_seq
                ),
            ));
        }
    }
    let mut states = Vec::with_capacity(meta.keys.min(1 << 20) as usize);
    for i in 0..meta.keys {
        let body = match frame::read_frame(&mut r)? {
            FrameRead::Frame(p) => p,
            FrameRead::Eof => {
                return Err(corrupt(
                    path,
                    format!("truncated: {i} of {} key frames", meta.keys),
                ))
            }
            FrameRead::Torn(detail) => {
                return Err(corrupt(path, format!("key frame {i}: {detail}")))
            }
        };
        let mut br = StateReader::new(&body);
        let entry = (|| -> Result<(K, SamplerState<T>), swsample_core::state::StateError> {
            let key = K::decode_state(&mut br)?;
            let record = br.get_len_bytes()?;
            let state = SamplerState::<T>::decode_record(record)?;
            br.finish()?;
            Ok((key, state))
        })()
        .map_err(|e| corrupt(path, format!("key frame {i}: {e}")))?;
        states.push(entry);
    }
    match frame::read_frame(&mut r)? {
        FrameRead::Eof => Ok((meta, states)),
        _ => Err(corrupt(path, "trailing data after final key frame")),
    }
}

/// The newest snapshot in `dir` that validates end to end, or `None` if
/// the directory holds no snapshot at all. Invalid snapshots are skipped
/// with a warning — that is the corrupt-snapshot recovery path.
#[allow(clippy::type_complexity)]
pub fn latest_valid<K: StateCodec, T: StateCodec + Clone>(
    dir: &Path,
) -> Result<Option<(PathBuf, SnapshotMeta, Vec<(K, SamplerState<T>)>)>, DurableError> {
    let mut snapshots = list_snapshots(dir)?;
    snapshots.reverse();
    let any = !snapshots.is_empty();
    for (_, path) in snapshots {
        match read_snapshot::<K, T>(&path) {
            Ok((meta, states)) => return Ok(Some((path, meta, states))),
            Err(e) => {
                eprintln!("swsample-durable: skipping invalid snapshot: {e}");
            }
        }
    }
    if any {
        // Snapshots existed but none validated — recovery would have to
        // replay a log whose base configuration is unknown.
        return Err(DurableError::Corrupt {
            file: dir.to_path_buf(),
            detail: "every snapshot in the directory is corrupt".into(),
        });
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swsample-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn demo_states(n: u64) -> Vec<(u64, SamplerState<u64>)> {
        // WindowBuffer is the simplest family to fabricate states for:
        // its payload is just a clock, an index, an rng, and a buffer.
        (0..n)
            .map(|key| {
                (
                    key,
                    SamplerState::WindowBuffer {
                        now: key,
                        next_index: key + 1,
                        rng: swsample_core::state::RngState([key, 1, 2, 3]),
                        buf: vec![swsample_core::Sample::new(key * 3, key, key)],
                    },
                )
            })
            .collect()
    }

    fn demo_meta(n: u64, wal_seq: u64) -> SnapshotMeta {
        SnapshotMeta {
            template: "--window seq --n 8 --mode wr --algo buffer --k 2 --seed 7".into(),
            backend: "erased".into(),
            shards: 4,
            threads: 2,
            wal_seq,
            keys: n,
        }
    }

    #[test]
    fn round_trips_meta_and_states() {
        let dir = tmp_dir("roundtrip");
        let states = demo_states(5);
        let meta = demo_meta(5, 42);
        let path = write_snapshot(&dir, &meta, &states).expect("write");
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            snapshot_name(42)
        );
        let (got_meta, got_states) = read_snapshot::<u64, u64>(&path).expect("read");
        assert_eq!(got_meta, meta);
        assert_eq!(got_states, states);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_valid_skips_corrupt_newest() {
        let dir = tmp_dir("fallback");
        write_snapshot(&dir, &demo_meta(3, 10), &demo_states(3)).expect("older");
        let newer = write_snapshot(&dir, &demo_meta(4, 20), &demo_states(4)).expect("newer");
        // Corrupt one byte in the middle of the newest snapshot.
        let mut bytes = fs::read(&newer).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newer, bytes).expect("write");
        let (path, meta, states) = latest_valid::<u64, u64>(&dir)
            .expect("scan")
            .expect("found");
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            snapshot_name(10)
        );
        assert_eq!(meta.wal_seq, 10);
        assert_eq!(states.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_corrupt_is_an_error_and_no_snapshots_is_none() {
        let dir = tmp_dir("allcorrupt");
        assert!(latest_valid::<u64, u64>(&dir).expect("scan").is_none());
        let path = write_snapshot(&dir, &demo_meta(2, 5), &demo_states(2)).expect("write");
        let mut bytes = fs::read(&path).expect("read");
        bytes[4] ^= 0x01;
        fs::write(&path, bytes).expect("write");
        assert!(matches!(
            latest_valid::<u64, u64>(&dir),
            Err(DurableError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_of_a_snapshot_is_an_error() {
        let dir = tmp_dir("trunc");
        let path = write_snapshot(&dir, &demo_meta(3, 9), &demo_states(3)).expect("write");
        let bytes = fs::read(&path).expect("read");
        for cut in 0..bytes.len() {
            fs::write(&path, &bytes[..cut]).expect("write");
            assert!(
                read_snapshot::<u64, u64>(&path).is_err(),
                "truncation to {cut} bytes was accepted"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
