//! Sample-based heavy-hitter detection over sliding windows.
//!
//! A value with window frequency `≥ φ·n` appears in a uniform `k`-sample
//! `≥ φ·k` times in expectation; thresholding the sample at `(φ − ε)·k`
//! yields the classic sampling guarantee: every true `φ`-heavy hitter is
//! reported with probability `≥ 1 − δ` once `k = Ω(ε⁻² log(1/(δφ)))`, and
//! nothing lighter than `φ − 2ε` sneaks in (w.h.p.). The point, per the
//! paper's Theorem 5.1: the *same* estimator runs over sliding windows by
//! swapping in the window sampler — with deterministic memory.

use rand::Rng;
use std::collections::HashMap;
use swsample_core::seq::SeqSamplerWor;
use swsample_core::{MemoryWords, WindowSampler};

/// A reported heavy hitter.
#[derive(Debug, Clone, PartialEq)]
pub struct Hitter {
    /// The value.
    pub value: u64,
    /// Its estimated share of the window (fraction of the sample).
    pub share: f64,
}

/// Heavy-hitter detector over the last `n` arrivals, built on a
/// without-replacement `k`-sample.
///
/// ```
/// use swsample_query::HeavyHitters;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut hh = HeavyHitters::new(600, 64, 0.3, SmallRng::seed_from_u64(6));
/// for i in 0..3_000u64 {
///     // Value 7 is half the stream; the rest are all distinct.
///     hh.insert(if i % 2 == 0 { 7 } else { 1_000 + i });
/// }
/// let hits = hh.hitters();
/// assert_eq!(hits[0].value, 7);
/// assert!((hits[0].share - 0.5).abs() < 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct HeavyHitters<R> {
    sampler: SeqSamplerWor<u64, R>,
    threshold: f64,
}

impl<R: Rng + 'static> HeavyHitters<R> {
    /// Detector over the last `n` arrivals reporting values whose sampled
    /// share is at least `threshold ∈ (0, 1]`, using a `k`-sample.
    pub fn new(n: u64, k: usize, threshold: f64, rng: R) -> Self {
        assert!(threshold > 0.0 && threshold <= 1.0, "threshold in (0, 1]");
        Self {
            sampler: SeqSamplerWor::new(n, k, rng),
            threshold,
        }
    }

    /// Feed the next arrival.
    pub fn insert(&mut self, value: u64) {
        self.sampler.insert(value);
    }

    /// Values whose sampled share meets the threshold, heaviest first;
    /// empty before any arrival.
    pub fn hitters(&mut self) -> Vec<Hitter> {
        let sample = match self.sampler.sample_k() {
            Some(s) => s,
            None => return Vec::new(),
        };
        let total = sample.len() as f64;
        let mut freq: HashMap<u64, u64> = HashMap::new();
        for s in &sample {
            *freq.entry(*s.value()).or_insert(0) += 1;
        }
        let mut out: Vec<Hitter> = freq
            .into_iter()
            .filter_map(|(value, count)| {
                let share = count as f64 / total;
                (share >= self.threshold).then_some(Hitter { value, share })
            })
            .collect();
        out.sort_by(|a, b| b.share.partial_cmp(&a.share).expect("finite"));
        out
    }

    /// The report threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl<R> MemoryWords for HeavyHitters<R> {
    fn memory_words(&self) -> usize {
        self.sampler.memory_words() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_reports_nothing() {
        let mut h = HeavyHitters::new(10, 4, 0.2, SmallRng::seed_from_u64(0));
        assert!(h.hitters().is_empty());
    }

    #[test]
    fn detects_a_planted_majority_value() {
        // Value 7 is 60% of the window; everything else is spread thin.
        let mut detected = 0;
        let trials = 50;
        for seed in 0..trials {
            let mut h = HeavyHitters::new(500, 64, 0.4, SmallRng::seed_from_u64(seed));
            let mut rng = SmallRng::seed_from_u64(1000 + seed);
            for _ in 0..2000 {
                let v = if rng.gen_bool(0.6) {
                    7
                } else {
                    rng.gen_range(100..10_000u64)
                };
                h.insert(v);
            }
            let hits = h.hitters();
            if hits.iter().any(|x| x.value == 7) {
                detected += 1;
                // The majority value must be ranked first.
                assert_eq!(hits[0].value, 7);
            }
        }
        assert!(detected >= trials * 9 / 10, "detected {detected}/{trials}");
    }

    #[test]
    fn light_values_rarely_reported() {
        // All values distinct: nothing can recur in the sample beyond
        // chance, so a 30% threshold reports nothing.
        let mut h = HeavyHitters::new(1000, 32, 0.3, SmallRng::seed_from_u64(3));
        for i in 0..5000u64 {
            h.insert(i);
        }
        assert!(h.hitters().is_empty());
    }

    #[test]
    fn tracks_window_change() {
        // Heavy value switches from 1 to 2; after a full window the report
        // must follow.
        let mut h = HeavyHitters::new(200, 48, 0.5, SmallRng::seed_from_u64(4));
        for _ in 0..400 {
            h.insert(1);
        }
        assert_eq!(h.hitters()[0].value, 1);
        for _ in 0..400 {
            h.insert(2);
        }
        let hits = h.hitters();
        assert_eq!(hits[0].value, 2);
        assert!(
            hits.iter().all(|x| x.value != 1),
            "stale hitter survived the window"
        );
    }

    #[test]
    fn share_estimates_are_calibrated() {
        // 70/30 mix: estimated shares across seeds must average near truth.
        let (mut s1, mut s2) = (0.0, 0.0);
        let trials = 60;
        for seed in 0..trials {
            let mut h = HeavyHitters::new(400, 64, 0.1, SmallRng::seed_from_u64(seed));
            let mut rng = SmallRng::seed_from_u64(500 + seed);
            for _ in 0..1200 {
                h.insert(if rng.gen_bool(0.7) { 10 } else { 20 });
            }
            for hit in h.hitters() {
                if hit.value == 10 {
                    s1 += hit.share;
                } else if hit.value == 20 {
                    s2 += hit.share;
                }
            }
        }
        let (m1, m2) = (s1 / trials as f64, s2 / trials as f64);
        assert!((m1 - 0.7).abs() < 0.05, "heavy share {m1}");
        assert!((m2 - 0.3).abs() < 0.05, "light share {m2}");
    }

    #[test]
    fn memory_is_o_of_k_not_n() {
        let mut h = HeavyHitters::new(1 << 20, 32, 0.1, SmallRng::seed_from_u64(5));
        for i in 0..10_000u64 {
            h.insert(i % 97);
        }
        assert!(
            h.memory_words() <= 6 * 32 + 32,
            "memory {}",
            h.memory_words()
        );
    }

    #[test]
    #[should_panic]
    fn rejects_zero_threshold() {
        let _ = HeavyHitters::new(10, 4, 0.0, SmallRng::seed_from_u64(0));
    }
}
