//! Skip-ahead ingestion equivalence: the fast paths (precomputed
//! next-acceptance indices, Algorithm L buckets, batched insert) must be
//! indistinguishable from the naive per-arrival reference paths — same
//! sampling distribution at the same chi-square thresholds as the seed
//! tests, identical `MemoryWords` trajectories, and `O(log n)` RNG draws
//! per window instead of `Θ(n)`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample::baselines::WindowBuffer;
use swsample::core::rng::CountingRng;
use swsample::core::seq::{SeqSamplerWor, SeqSamplerWr};
use swsample::core::ts::{TsSamplerWor, TsSamplerWr};
use swsample::core::{MemoryWords, WindowSampler};
use swsample::stats::chi_square_uniform_test;
use swsample::stream::WindowSpec;

/// Skip-path and naive-path WR samplers report identical MemoryWords at
/// every step: which samples are retained is a deterministic function of
/// the arrival count, and the skip state is accounted on both paths.
#[test]
fn wr_memory_words_lockstep_with_naive() {
    for &(n, k) in &[(7u64, 1usize), (16, 4), (100, 9)] {
        let mut skip = SeqSamplerWr::new(n, k, SmallRng::seed_from_u64(1));
        let mut naive = SeqSamplerWr::naive(n, k, SmallRng::seed_from_u64(999));
        for i in 0..(4 * n + 3) {
            skip.insert(i);
            naive.insert(i);
            assert_eq!(
                skip.memory_words(),
                naive.memory_words(),
                "n={n}, k={k}, step {i}"
            );
        }
    }
}

/// Same for WOR, up to the two extra Algorithm-L scalars (next-accept
/// index and W) — a constant, never a function of the stream.
#[test]
fn wor_memory_words_lockstep_with_naive() {
    for &(n, k) in &[(9u64, 2usize), (32, 5)] {
        let mut skip = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(2));
        let mut naive = SeqSamplerWor::naive(n, k, SmallRng::seed_from_u64(998));
        for i in 0..(4 * n + 3) {
            skip.insert(i);
            naive.insert(i);
            assert_eq!(
                skip.memory_words(),
                naive.memory_words() + 2,
                "n={n}, k={k}, step {i}"
            );
        }
    }
}

/// Batched ingestion on sequence windows: sample_k() window positions stay
/// uniform (same 1e-4 threshold as the seed tests), with ragged chunk
/// sizes that straddle bucket boundaries.
#[test]
fn seq_batched_sample_k_positions_uniform() {
    let (n, k, stop) = (16u64, 2usize, 41u64);
    let trials = 20_000u64;
    let mut counts = vec![0u64; (n * k as u64) as usize];
    for t in 0..trials {
        let mut s = SeqSamplerWr::new(n, k, SmallRng::seed_from_u64(800_000 + t));
        let values: Vec<u64> = (0..stop).collect();
        for chunk in values.chunks(11) {
            s.insert_batch(chunk);
        }
        for (j, smp) in s.sample_k().expect("nonempty").iter().enumerate() {
            counts[j * n as usize + (smp.index() - (stop - n)) as usize] += 1;
        }
    }
    // Each instance's marginal occupies its own block of n cells; joint
    // uniformity over the blocks == per-instance uniformity.
    let out = chi_square_uniform_test(&counts);
    assert!(
        out.p_value > 1e-4,
        "seq batched positions not uniform: p = {}",
        out.p_value
    );
}

/// Batched ingestion on timestamp windows, WR: advance_and_insert bursts,
/// then check uniformity over the active set.
#[test]
fn ts_wr_batched_sample_positions_uniform() {
    let t0 = 4u64;
    // Deterministic bursty schedule (mirrors the engine test): active at
    // t=9 are ticks 6..=9 -> bursts 5,1,4,2 = 12 elements.
    let schedule: &[(u64, u64)] = &[
        (0, 3),
        (1, 7),
        (2, 2),
        (3, 1),
        (4, 6),
        (5, 2),
        (6, 5),
        (7, 1),
        (8, 4),
        (9, 2),
    ];
    let first_active: u64 = 3 + 7 + 2 + 1 + 6 + 2;
    let active = 5 + 1 + 4 + 2;
    let trials = 25_000u64;
    let mut counts = vec![0u64; active as usize];
    for t in 0..trials {
        let mut s = TsSamplerWr::new(t0, 1, SmallRng::seed_from_u64(900_000 + t));
        let mut idx = 0u64;
        for &(tick, burst) in schedule {
            let batch: Vec<u64> = (idx..idx + burst).collect();
            s.advance_and_insert(tick, &batch);
            idx += burst;
        }
        let smp = s.sample().expect("nonempty");
        assert!(smp.index() >= first_active, "expired sample");
        counts[(smp.index() - first_active) as usize] += 1;
    }
    let out = chi_square_uniform_test(&counts);
    assert!(
        out.p_value > 1e-4,
        "ts batched WR not uniform: p = {}",
        out.p_value
    );
}

/// Batched ingestion on timestamp windows, WOR: marginal inclusion stays
/// uniform and samples stay distinct.
#[test]
fn ts_wor_batched_marginals_uniform_and_distinct() {
    let (t0, k, ticks) = (8u64, 3usize, 30u64);
    let trials = 25_000u64;
    let mut counts = vec![0u64; t0 as usize];
    for t in 0..trials {
        let mut s = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(700_000 + t));
        // One element per tick, delivered through the batch API in pairs
        // of ticks (each tick is its own advance_and_insert call).
        for tick in 0..ticks {
            s.advance_and_insert(tick, &[tick]);
        }
        let out = s.sample_k().expect("nonempty");
        let mut idx: Vec<u64> = out.iter().map(|s| s.index()).collect();
        idx.sort_unstable();
        for w in idx.windows(2) {
            assert_ne!(w[0], w[1], "duplicate in WOR batch sample");
        }
        for s in out {
            counts[(s.index() - (ticks - t0)) as usize] += 1;
        }
    }
    let out = chi_square_uniform_test(&counts);
    assert!(
        out.p_value > 1e-4,
        "ts batched WOR marginals not uniform: p = {}",
        out.p_value
    );
}

/// Larger multi-arrival-per-tick batches keep the WOR distinctness
/// invariant through the delayed-engine plumbing.
#[test]
fn ts_wor_large_batches_stay_distinct_and_active() {
    let mut s = TsSamplerWor::new(6, 4, SmallRng::seed_from_u64(77));
    let mut idx = 0u64;
    for tick in 0..200u64 {
        let burst = (tick % 7) as usize; // 0..=6 arrivals, incl. empty ticks
        let batch: Vec<u64> = (idx..idx + burst as u64).collect();
        s.advance_and_insert(tick, &batch);
        idx += burst as u64;
        if let Some(out) = s.sample_k() {
            let mut seen: Vec<u64> = out.iter().map(|x| x.index()).collect();
            seen.sort_unstable();
            let len = seen.len();
            seen.dedup();
            assert_eq!(seen.len(), len, "duplicates at tick {tick}");
            for smp in &out {
                assert!(tick - smp.timestamp() < 6, "expired at tick {tick}");
            }
        }
    }
}

/// Exact (non-statistical) equivalence: WindowBuffer is deterministic in
/// content, so batch and per-element ingestion must match exactly for any
/// chunking.
#[test]
fn window_buffer_batch_equals_single_exactly() {
    for chunk in [1usize, 3, 10, 64] {
        let mut single = WindowBuffer::new(WindowSpec::Sequence(20), 4, SmallRng::seed_from_u64(5));
        let mut batched =
            WindowBuffer::new(WindowSpec::Sequence(20), 4, SmallRng::seed_from_u64(5));
        let values: Vec<u64> = (0..137).collect();
        for &v in &values {
            single.insert(v);
        }
        for c in values.chunks(chunk) {
            batched.insert_batch(c);
        }
        let a: Vec<u64> = single.window_contents().map(|s| s.index()).collect();
        let b: Vec<u64> = batched.window_contents().map(|s| s.index()).collect();
        assert_eq!(a, b, "chunk={chunk}");
        assert_eq!(single.memory_words(), batched.memory_words());
    }
}

/// The committed perf baseline must parse and hold the ≥5× acceptance bar
/// (seq-WR skip vs naive elems/sec at k = 64, n = 10⁵). Deterministic:
/// this reads the checked-in artifact rather than re-timing anything —
/// `bench_throughput` refuses to write a sub-5× file, and this test
/// refuses to let one that was hand-edited (or gone stale through a
/// schema change) slip past CI.
#[test]
fn committed_throughput_baseline_holds_acceptance_bar() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_throughput.json");
    let body = std::fs::read_to_string(path).expect("BENCH_throughput.json is committed");
    swsample_bench::json::validate(&body).expect("committed artifact parses");
    let key = "\"seq_wr_speedup_k64_n100000\":";
    let at = body.find(key).expect("speedup field present");
    let rest = &body[at + key.len()..];
    let end = rest.find([',', '\n', '}']).expect("number terminated");
    let speedup: f64 = rest[..end].trim().parse().expect("numeric speedup");
    assert!(
        speedup >= 5.0,
        "committed seq-WR skip speedup {speedup}x below the 5x acceptance bar"
    );
}

/// The headline draw bound: over many windows, the skip path consumes
/// O(k log n) RNG words per window while the naive path consumes k·n.
#[test]
fn skip_path_rng_draws_are_logarithmic_per_window() {
    let (n, k, windows) = (4096u64, 4usize, 50u64);
    let elements = n * windows;

    let skip_rng = CountingRng::new(SmallRng::seed_from_u64(11));
    let skip_counter = skip_rng.counter();
    let mut s = SeqSamplerWr::new(n, k, skip_rng);
    let values: Vec<u64> = (0..elements).collect();
    for chunk in values.chunks(1024) {
        s.insert_batch(chunk);
    }
    let accepts = s.acceptances();
    drop(s);
    let skip_draws = skip_counter.words();

    let naive_rng = CountingRng::new(SmallRng::seed_from_u64(11));
    let naive_counter = naive_rng.counter();
    let mut s = SeqSamplerWr::naive(n, k, naive_rng);
    for chunk in values.chunks(1024) {
        s.insert_batch(chunk);
    }
    drop(s);
    let naive_draws = naive_counter.words();

    // Naive: ≥ 1 draw per instance per element.
    assert!(
        naive_draws >= k as u64 * elements,
        "naive draws {naive_draws}"
    );
    // Skip: acceptances are ≈ k·H(n) per window; each costs O(1) draws.
    // Generous w.h.p. ceiling: 16·k·ln(n) draws per window.
    let ln_n = (n as f64).ln();
    let cap = (16.0 * k as f64 * ln_n * windows as f64) as u64;
    assert!(
        skip_draws <= cap,
        "skip draws {skip_draws} > O(k log n) cap {cap}"
    );
    // And the acceptance count itself is Θ(k log n) per window.
    let expected = k as f64 * (ln_n + 0.5772) * windows as f64;
    assert!(
        (accepts as f64) < 2.0 * expected && (accepts as f64) > 0.5 * expected,
        "acceptances {accepts} far from k·H(n)·windows = {expected}"
    );
    // The end-to-end draw reduction the throughput suite banks on.
    assert!(
        skip_draws * 20 < naive_draws,
        "skip {skip_draws} vs naive {naive_draws}: expected ≥20× fewer draws"
    );
}
