//! Exact randomness primitives shared by the samplers.
//!
//! The implicit-event probabilities of §3.3 (`α/β`,
//! `αβ/((β+i)(β+i−1))`) are ratios of 64-bit integers. Generating them
//! through `f64` would introduce platform-dependent rounding into the very
//! distribution the paper proves exact, so we generate them with exact
//! 128-bit integer comparisons instead.

use rand::Rng;

/// Bernoulli event with probability exactly `num / den`.
///
/// # Panics
/// Panics (debug) if `num > den` or `den == 0`.
pub(crate) fn bernoulli_ratio<R: Rng>(rng: &mut R, num: u128, den: u128) -> bool {
    debug_assert!(den > 0, "bernoulli_ratio: zero denominator");
    debug_assert!(num <= den, "bernoulli_ratio: p = {num}/{den} > 1");
    if num == den {
        return true;
    }
    if num == 0 {
        return false;
    }
    rng.gen_range(0..den) < num
}

/// `⌊log₂ x⌋` for `x ≥ 1`.
pub(crate) fn floor_log2(x: u64) -> u32 {
    debug_assert!(x >= 1, "floor_log2: x must be >= 1");
    63 - x.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn floor_log2_values() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(7), 2);
        assert_eq!(floor_log2(8), 3);
        assert_eq!(floor_log2(u64::MAX), 63);
    }

    #[test]
    fn bernoulli_degenerate() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(bernoulli_ratio(&mut rng, 5, 5));
        assert!(!bernoulli_ratio(&mut rng, 0, 5));
    }

    #[test]
    fn bernoulli_empirical_rate() {
        let mut rng = SmallRng::seed_from_u64(42);
        let trials = 200_000;
        let hits = (0..trials)
            .filter(|_| bernoulli_ratio(&mut rng, 3, 7))
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 3.0 / 7.0).abs() < 0.005, "rate = {rate}");
    }

    #[test]
    fn bernoulli_huge_operands() {
        let mut rng = SmallRng::seed_from_u64(1);
        // Must not overflow for operands near u64::MAX squared.
        let den = (u64::MAX as u128) * (u64::MAX as u128);
        let num = den / 2;
        let hits = (0..4000)
            .filter(|_| bernoulli_ratio(&mut rng, num, den))
            .count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.5).abs() < 0.05, "rate = {rate}");
    }
}
