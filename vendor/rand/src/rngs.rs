//! Concrete RNGs. Only [`SmallRng`] is provided (and only with the
//! `small_rng` feature, matching the upstream crate's feature gate).

#[cfg(feature = "small_rng")]
pub use small::SmallRng;

#[cfg(feature = "small_rng")]
mod small {
    use crate::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++ 1.0
    /// (Blackman & Vigna, 2019) — the algorithm upstream `rand` 0.8 uses
    /// for `SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The four xoshiro256++ state words, for checkpointing. Feeding
        /// the result to [`SmallRng::from_state`] reproduces the exact
        /// output stream from this point on.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from captured state words.
        ///
        /// An all-zero state is a xoshiro fixed point and cannot be
        /// produced by any seeding path of this crate, so it is rejected
        /// the same way `from_seed` handles it: by reseeding from 0.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as crate::SeedableRng>::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; upstream
            // (rand_xoshiro) reseeds from zero the same way.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        /// Matches upstream `rand` 0.8 (`rand_xoshiro`'s override) bit for
        /// bit: the four state words are four successive full 64-bit
        /// SplitMix64 outputs starting from `state`. Raw `next_u64`
        /// streams therefore survive a swap back to the crates.io
        /// dependency unchanged; values drawn *through* `gen_range` /
        /// `Standard` do not (see the crate docs), though their
        /// distributions are identical.
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = crate::splitmix64(&mut state);
            }
            Self { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::SmallRng;
        use crate::{RngCore, SeedableRng};

        /// Golden values pinning stream compatibility with upstream
        /// `rand` 0.8 `SmallRng` (xoshiro256++ seeded via SplitMix64).
        /// The seed-0 state expansion is the published SplitMix64 test
        /// vector (0xE220A8397B1DCDAF, ...); the outputs follow the
        /// xoshiro256++ 1.0 reference step. If these ever change, every
        /// seeded test in the workspace shifts — don't touch the
        /// algorithm without re-deriving these from the references.
        #[test]
        fn seed_from_u64_matches_upstream_smallrng() {
            let mut r0 = SmallRng::seed_from_u64(0);
            assert_eq!(r0.next_u64(), 0x53175d61490b23df);
            assert_eq!(r0.next_u64(), 0x61da6f3dc380d507);
            assert_eq!(r0.next_u64(), 0x5c0fdf91ec9a7bfc);

            let mut r7 = SmallRng::seed_from_u64(7);
            assert_eq!(r7.next_u64(), 0x0e2c1a002aae913d);
            assert_eq!(r7.next_u64(), 0x2c0fc8ddfa4e9e14);
            assert_eq!(r7.next_u64(), 0xb7b311b3b0d45872);
        }

        #[test]
        fn zero_seed_bytes_reseed_instead_of_sticking() {
            // All-zero state is a xoshiro fixed point; from_seed must not
            // produce it.
            let mut r = SmallRng::from_seed([0u8; 32]);
            let mut z = SmallRng::seed_from_u64(0);
            assert_eq!(r.next_u64(), z.next_u64());
        }
    }
}
