//! # swsample-core — optimal sampling from sliding windows
//!
//! From-scratch implementation of
//!
//! > Braverman, Ostrovsky, Zaniolo. *Optimal sampling from sliding windows.*
//! > PODS 2009 / J. Comput. Syst. Sci. 78(1):260–272 (2012).
//!
//! The paper gives the first algorithms for maintaining uniform random
//! samples over sliding windows whose memory bounds are **deterministic**
//! (worst-case), not merely expected or with-high-probability — closing the
//! gap left open by Babcock–Datar–Motwani (SODA'02) for all four problem
//! variants:
//!
//! | sampler | window | replacement | bound | paper |
//! |---|---|---|---|---|
//! | [`seq::SeqSamplerWr`]  | last `n` arrivals | with    | `O(k)`       | Thm 2.1 |
//! | [`seq::SeqSamplerWor`] | last `n` arrivals | without | `O(k)`       | Thm 2.2 |
//! | [`ts::TsSamplerWr`]    | last `t₀` ticks   | with    | `O(k log n)` | Thm 3.9 |
//! | [`ts::TsSamplerWor`]   | last `t₀` ticks   | without | `O(k log n)` | Thm 4.4 |
//!
//! All samplers implement [`WindowSampler`] and word-exact
//! [`MemoryWords`] accounting (§1.4's cost model), so the deterministic
//! bounds are directly assertable — and asserted, in this crate's tests.
//!
//! For embedding, the concrete types need not be named at all: a
//! [`spec::SamplerSpec`] is a plain-data description of any sampler in
//! the workspace, and [`SamplerSpec::build`](spec::SamplerSpec::build)
//! returns it as a boxed [`ErasedWindowSampler`] — the object-safe,
//! batch-first companion of [`WindowSampler`] that heterogeneous fleets
//! (the multi-stream engine in `swsample-stream`, the CLI) are written
//! against.
//!
//! The building blocks are public as well: reservoir sampling over
//! insertion-only streams ([`reservoir`], Vitter's Algorithm R and Li's
//! Algorithm L), the covering decomposition and implicit-event machinery of
//! §3 ([`ts`]), and the [`track::SampleTracker`] hook that realizes the
//! Theorem 5.1 transfer of sampling-based algorithms onto sliding windows
//! (used by `swsample-apps` for frequency moments, entropy, and triangle
//! counting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod erased;
pub mod fault;
mod memory;
pub mod reservoir;
pub mod rng;
pub mod rngutil;
mod sample;
pub mod seq;
pub mod skip;
pub mod soa;
pub mod spec;
pub mod state;
pub mod track;
mod traits;
pub mod ts;

pub use erased::ErasedWindowSampler;
pub use fault::{FaultInjector, FaultSchedule, FaultSite};
pub use memory::MemoryWords;
pub use sample::Sample;
pub use spec::{FleetBackend, SamplerSpec, SpecError};
pub use state::{SamplerState, StateCodec, StateError};
pub use traits::WindowSampler;
