//! The experiment suite regenerating the paper's evaluation.
//!
//! One function per experiment; each prints a table (see `EXPERIMENTS.md`
//! for the experiment ↔ claim mapping and the expected-vs-measured record).
//! All experiments are deterministic given their internal seeds.

pub mod e_apps;
pub mod e_ext;
pub mod e_memory;
pub mod e_misc;
pub mod e_seq;
pub mod e_ts;

/// Run an experiment by id (`"e1"`…`"e14"`); `"all"` runs the full suite.
/// Returns `false` for unknown ids.
pub fn run(id: &str) -> bool {
    match id {
        "e1" => e_seq::e1_seq_wr(),
        "e2" => e_seq::e2_seq_wor(),
        "e3" => e_ts::e3_ts_wr(),
        "e4" => e_ts::e4_lower_bound(),
        "e5" => e_ts::e5_ts_wor(),
        "e6" => e_memory::e6_deterministic_vs_randomized(),
        "e7" => e_memory::e7_throughput(),
        "e8" => e_memory::e8_oversampling_failure(),
        "e9" => e_apps::e9_frequency_moments(),
        "e10" => e_apps::e10_triangles(),
        "e11" => e_apps::e11_entropy(),
        "e12" => e_misc::e12_independence(),
        "e14" => e_misc::e14_step_biased(),
        "e15" => e_ext::e15_dgim_counter(),
        "e16" => e_ext::e16_query_layer(),
        "e17" => e_ext::e17_ts_applications(),
        "all" => {
            for id in [
                "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e14",
                "e15", "e16", "e17",
            ] {
                run(id);
            }
            return true;
        }
        _ => return false,
    }
    true
}
