//! Graceful-shutdown durability, driven through the real binary: a
//! `multi --wal` run stopped mid-stream by the `shutdown-after-appends`
//! failpoint (exit 43, after drain + final snapshot) must `--resume` to
//! stdout byte-identical with an uninterrupted run — and a `serve`
//! process asked to shut down over the wire must exit 0 with its WAL
//! in a reopenable state.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

const BIN: &str = env!("CARGO_BIN_EXE_swsample");

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "swsample-cli-shutdown-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn multi_args(wal: &std::path::Path) -> Vec<String> {
    let mut args: Vec<String> = "multi --keys 40 --count 3000 --window seq --n 16 --k 3 --seed 9"
        .split_whitespace()
        .map(String::from)
        .collect();
    args.push("--wal".into());
    args.push(wal.to_string_lossy().into_owned());
    args
}

#[test]
fn failpoint_shutdown_resumes_byte_identical() {
    // Uninterrupted reference run.
    let ref_dir = temp_dir("reference");
    let reference = Command::new(BIN)
        .args(multi_args(&ref_dir))
        .env_remove("SWSAMPLE_FAILPOINT")
        .output()
        .expect("reference run");
    assert!(reference.status.success(), "reference run failed");

    // Interrupted run: graceful shutdown after 3 applied batches.
    let dir = temp_dir("interrupted");
    let interrupted = Command::new(BIN)
        .args(multi_args(&dir))
        .env("SWSAMPLE_FAILPOINT", "shutdown-after-appends=3")
        .output()
        .expect("interrupted run");
    assert_eq!(
        interrupted.status.code(),
        Some(43),
        "shutdown failpoint must exit 43, stderr: {}",
        String::from_utf8_lossy(&interrupted.stderr)
    );
    // Graceful: a snapshot covering everything applied exists.
    let snaps = std::fs::read_dir(&dir)
        .expect("wal dir")
        .filter(|e| {
            e.as_ref()
                .expect("dir entry")
                .path()
                .extension()
                .is_some_and(|x| x == "snap")
        })
        .count();
    assert!(snaps > 0, "graceful shutdown must leave a snapshot");

    // Resume without the failpoint: byte-identical stdout.
    let mut args = multi_args(&dir);
    args.push("--resume".into());
    let resumed = Command::new(BIN)
        .args(args)
        .env_remove("SWSAMPLE_FAILPOINT")
        .output()
        .expect("resumed run");
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&reference.stdout),
        "resumed stdout diverged from the uninterrupted run"
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("# resume:"),
        "resume must report recovered batches, stderr: {stderr}"
    );

    let _ = std::fs::remove_dir_all(ref_dir);
    let _ = std::fs::remove_dir_all(dir);
}

/// The CI smoke, in-repo: `serve` on an ephemeral port, `loadgen`
/// verifying across the wire and rendering `multi`'s stdout, the
/// server exiting 0 on the wire-level SHUTDOWN.
#[test]
fn serve_loadgen_round_trip_matches_multi() {
    let workload = "--keys 50 --count 5000";
    let spec = "--window seq --n 20 --k 2 --seed 3";

    let multi = Command::new(BIN)
        .args(
            format!("multi {workload} {spec}")
                .split_whitespace()
                .collect::<Vec<_>>(),
        )
        .output()
        .expect("multi run");
    assert!(multi.status.success(), "multi failed");

    let wal = temp_dir("serve");
    let mut serve = Command::new(BIN)
        .args(
            format!("serve --addr 127.0.0.1:0 {spec} --wal {}", wal.display())
                .split_whitespace()
                .collect::<Vec<_>>(),
        )
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawn");
    let mut serve_err = BufReader::new(serve.stderr.take().expect("serve stderr"));
    let mut line = String::new();
    serve_err.read_line(&mut line).expect("listening line");
    let addr = line
        .trim()
        .strip_prefix("# listening on ")
        .unwrap_or_else(|| panic!("unexpected first stderr line: {line:?}"))
        .to_string();

    let loadgen = Command::new(BIN)
        .args(
            format!("loadgen --addr {addr} {workload} --verify --render-multi --shutdown-server")
                .split_whitespace()
                .collect::<Vec<_>>(),
        )
        .output()
        .expect("loadgen run");
    assert!(
        loadgen.status.success(),
        "loadgen failed: {}",
        String::from_utf8_lossy(&loadgen.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&loadgen.stdout),
        String::from_utf8_lossy(&multi.stdout),
        "server answers diverged from the offline `multi` run"
    );

    let status = serve.wait().expect("serve exit");
    assert!(status.success(), "serve must exit 0 after SHUTDOWN");
    assert!(
        std::fs::read_dir(&wal).expect("wal dir").any(|e| e
            .expect("entry")
            .path()
            .extension()
            .is_some_and(|x| x == "snap")),
        "serve shutdown must leave a snapshot"
    );
    let _ = std::fs::remove_dir_all(wal);
}
