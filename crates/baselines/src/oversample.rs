//! The over-sampling strategy for sampling without replacement — the method
//! the paper's introduction criticizes.
//!
//! To produce a `k`-sample without replacement, maintain `k' > k`
//! independent with-replacement samplers (here: chain samplers) and hope
//! that at query time their outputs contain at least `k` *distinct*
//! elements. Both disadvantages from the paper's abstract are visible:
//!
//! (a) extra cost — `k'/k` times the work and memory of the optimal method;
//! (b) non-deterministic guarantees — with positive probability fewer than
//!     `k` distinct elements are available (a birthday collision), and that
//!     probability never reaches 0 for any finite `k'`.
//!
//! Experiment E8 sweeps the over-sampling factor and tabulates the measured
//! failure probability against the analytic occupancy model.

use crate::chain::ChainSampler;
use rand::Rng;
use swsample_core::{MemoryWords, Sample, WindowSampler};

/// Over-sampling without-replacement sampler for sequence-based windows:
/// `k'` independent chain samplers, queried for `k` distinct elements.
#[derive(Debug, Clone)]
pub struct OverSampler<T, R> {
    k: usize,
    inner: ChainSampler<T, R>,
}

impl<T: Clone, R: Rng + 'static> OverSampler<T, R> {
    /// Maintain `k_prime ≥ k` with-replacement samples over the last `n`
    /// arrivals, targeting `k` distinct ones.
    pub fn new(n: u64, k: usize, k_prime: usize, rng: R) -> Self {
        assert!(k >= 1 && k_prime >= k, "OverSampler: need k' >= k >= 1");
        Self {
            k,
            inner: ChainSampler::new(n, k_prime, rng),
        }
    }

    /// The over-sampling factor `k'`.
    pub fn k_prime(&self) -> usize {
        self.inner.k()
    }

    /// Query attempt: `Ok` with `k` distinct samples, or `Err(d)` reporting
    /// how many distinct elements were actually available (`d < k` — the
    /// failure event the paper's disadvantage (b) is about).
    pub fn try_sample_k(&mut self) -> Result<Vec<Sample<T>>, usize> {
        let all = match self.inner.sample_k() {
            Some(v) => v,
            None => return Err(0),
        };
        let mut distinct: Vec<Sample<T>> = Vec::with_capacity(self.k);
        for s in all {
            if !distinct.iter().any(|d| d.index() == s.index()) {
                distinct.push(s);
            }
            if distinct.len() == self.k {
                return Ok(distinct);
            }
        }
        Err(distinct.len())
    }
}

impl<T, R> MemoryWords for OverSampler<T, R> {
    fn memory_words(&self) -> usize {
        self.inner.memory_words() + 1
    }
}

impl<T: Clone, R: Rng + 'static> WindowSampler<T> for OverSampler<T, R> {
    fn insert(&mut self, value: T) {
        self.inner.insert(value);
    }

    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        // Inherit the chain sampler's skip-based batch path.
        self.inner.insert_batch(values);
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        self.inner.sample()
    }

    /// `Some` only when `k` distinct elements were available — callers that
    /// need the failure signal use [`OverSampler::try_sample_k`].
    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        self.try_sample_k().ok()
    }

    fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn success_yields_k_distinct() {
        let mut s = OverSampler::new(64, 3, 12, SmallRng::seed_from_u64(1));
        for i in 0..500u64 {
            s.insert(i);
        }
        let out = s
            .try_sample_k()
            .expect("k'=12 over window 64 almost surely succeeds");
        assert_eq!(out.len(), 3);
        let mut idx: Vec<u64> = out.iter().map(|s| s.index()).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn failure_happens_with_tight_oversampling() {
        // k' = k over a tiny window: collisions are frequent.
        let mut failures = 0;
        let trials = 400;
        for seed in 0..trials {
            let mut s = OverSampler::new(4, 3, 3, SmallRng::seed_from_u64(seed));
            for i in 0..40u64 {
                s.insert(i);
            }
            if s.try_sample_k().is_err() {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "no failures over {trials} trials — implausible for k'=k"
        );
    }

    #[test]
    fn failure_rate_decreases_with_k_prime() {
        let rate = |k_prime: usize| {
            let trials = 300;
            let mut failures = 0;
            for seed in 0..trials {
                let mut s = OverSampler::new(8, 4, k_prime, SmallRng::seed_from_u64(7_000 + seed));
                for i in 0..80u64 {
                    s.insert(i);
                }
                if s.try_sample_k().is_err() {
                    failures += 1;
                }
            }
            failures as f64 / trials as f64
        };
        let tight = rate(4);
        let loose = rate(16);
        assert!(
            loose < tight,
            "oversampling did not help: tight={tight}, loose={loose}"
        );
    }

    #[test]
    fn memory_scales_with_k_prime_not_k() {
        let mut narrow = OverSampler::new(32, 2, 2, SmallRng::seed_from_u64(2));
        let mut wide = OverSampler::new(32, 2, 20, SmallRng::seed_from_u64(2));
        for i in 0..1000u64 {
            narrow.insert(i);
            wide.insert(i);
        }
        assert!(wide.memory_words() > narrow.memory_words());
    }
}
