//! Offline vendored subset of the `criterion` 0.5 benchmarking API.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides a source-compatible miniature of the criterion surface the
//! `swsample-bench` targets use: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Throughput`], `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — warm up, run timed batches for the
//! configured measurement time, report mean/min ns per iteration — but the
//! measurement loop is real, so `cargo bench` produces usable relative
//! numbers. Swapping back to upstream criterion is a one-line manifest
//! change; no bench source needs to change.
//!
//! Groups with a [`Throughput`] configured additionally report elements-
//! or bytes-per-second, and when the `CRITERION_JSON` environment variable
//! names a file, every measurement is appended to it as one JSON object
//! per line (`{"label", "mean_ns", "min_ns", "throughput_per_sec"?}`) —
//! the machine-readable trail the repo's `BENCH_*.json` perf trajectory
//! builds on (run `CRITERION_JSON=out.jsonl cargo bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver: holds the measurement configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Set the warm-up duration before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// No-op for CLI compatibility with upstream.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            config: self.clone(),
            name,
            throughput: None,
        }
    }

    /// Run a standalone benchmark (upstream convenience).
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let cfg = self.clone();
        run_one(&cfg, &label, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup {
    // Group-local copy of the parent configuration: overrides like
    // `sample_size` must scope to this group, as upstream, and not bleed
    // into the parent `Criterion`.
    config: Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Record the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.config.sample_size = n;
        self
    }

    /// Override the measurement duration for this group only.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.config, &label, self.throughput, f);
        self
    }

    /// Benchmark a closure that receives `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.config, &label, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (upstream writes reports here; we print nothing).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter display.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Per-iteration work declared for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    /// (iterations, elapsed) per timed sample.
    samples: Vec<(u64, Duration)>,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, called in batches, until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also calibrates the batch size so one sample is neither
        // a single call (timer noise) nor the whole budget.
        let warm_start = Instant::now();
        let mut calls: u64 = 0;
        loop {
            std::hint::black_box(f());
            calls += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_call.max(1e-9)) as u64).clamp(1, u64::MAX);

        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push((batch, start.elapsed()));
        }
        if self.samples.is_empty() {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push((1, start.elapsed()));
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    cfg: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        warm_up_time: cfg.warm_up_time,
        measurement_time: cfg.measurement_time,
        sample_size: cfg.sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label:<40} (no measurement: closure never called iter)");
        return;
    }
    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|(n, d)| d.as_secs_f64() * 1e9 / *n as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let rate = match throughput {
        Some(Throughput::Elements(e)) => {
            format!("  {:>12.0} elem/s", e as f64 * 1e9 / mean)
        }
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 * 1e9 / mean),
        None => String::new(),
    };
    println!("  {label:<40} mean {mean:>10.1} ns/iter  (min {min:>10.1}){rate}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            append_json_line(&path, label, mean, min, throughput);
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Append one measurement as a JSON line to `path` (best-effort: bench
/// reporting must never fail the bench).
fn append_json_line(path: &str, label: &str, mean: f64, min: f64, throughput: Option<Throughput>) {
    use std::io::Write as _;
    let rate = match throughput {
        Some(Throughput::Elements(e)) | Some(Throughput::Bytes(e)) => {
            format!(",\"throughput_per_sec\":{:.1}", e as f64 * 1e9 / mean)
        }
        None => String::new(),
    };
    let line = format!(
        "{{\"label\":\"{}\",\"mean_ns\":{mean:.1},\"min_ns\":{min:.1}{rate}}}\n",
        json_escape(label)
    );
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Define a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, as in upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("with", 3), &3u64, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn json_lines_are_appended() {
        let path = std::env::temp_dir().join(format!("criterion_json_test_{}", std::process::id()));
        let path_str = path.to_str().expect("utf8 temp path");
        let _ = std::fs::remove_file(&path);
        append_json_line(
            path_str,
            "g/one",
            123.45,
            100.0,
            Some(Throughput::Elements(2)),
        );
        append_json_line(path_str, "g/two", 50.0, 40.0, None);
        let body = std::fs::read_to_string(&path).expect("file written");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"label\":\"g/one\""));
        assert!(lines[0].contains("\"throughput_per_sec\""));
        assert!(lines[1].contains("\"label\":\"g/two\""));
        assert!(!lines[1].contains("throughput_per_sec"));
        let _ = std::fs::remove_file(&path);
    }
}
