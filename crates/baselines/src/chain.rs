//! Chain sampling (Babcock, Datar, Motwani — SODA'02) for sequence-based
//! windows.
//!
//! Each of the `k` independent instances maintains the current sample plus a
//! *chain of successors*: when element `i` is adopted as the sample, a
//! successor index is drawn uniformly from the `n` positions after `i`; when
//! that element arrives it is stored and given its own successor, and so on.
//! When the sample expires, the next chain element takes over — so a sample
//! is always available.
//!
//! The catch — the paper's central criticism — is that the chain length is a
//! random variable: `O(1)` expected, `O(log n)` with high probability, but
//! with **no deterministic bound**. Experiment E6 exhibits exactly this:
//! `memory_words()` here has a growing maximum over the stream's life, while
//! the paper's `SeqSamplerWr` has a hard ceiling.
//!
//! Ingestion is skip-based, so throughput comparisons against the paper's
//! samplers pit optimized implementations against each other: adoption
//! events are independent Bernoulli(1/min(count, n+1)), so each instance
//! precomputes its next-adoption count (exact record-process skip during
//! warm-up, geometric skip in the constant-probability tail) and
//! non-adopted arrivals cost zero RNG draws. The warm-up skips draw their
//! octave-search coins from one sampler-wide [`BitSource`] — 64 coins
//! per RNG word across all `k` chains (`draws_pack_warmup_coins` below
//! pins the saving). Batched ingestion is **event-driven**: a min-heap
//! over the lanes' next-event counts (scheduled adoption or awaited
//! successor arrival) jumps from event to event, so a batch costs
//! O(events · log k) instead of O(batch · k) lane scans — and, because
//! events process in (count, lane) order, is bit-identical to
//! per-element ingestion (`batch_is_bit_identical_to_per_element`).

use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use swsample_core::rngutil::BitSource;
use swsample_core::skip::{geometric_skip, record_skip_with_bits};
use swsample_core::state::{self, BitsState, ChainLaneState, SamplerState, StateError};
use swsample_core::{MemoryWords, Sample, WindowSampler};

/// One chain: the current sample at the front, successors behind it, plus
/// a precomputed **next-adoption count** so non-adopted arrivals cost no
/// RNG draws (the same skip-ahead idea as the paper's samplers; see
/// `swsample_core::skip`).
#[derive(Debug, Clone)]
struct ChainInstance<T> {
    /// `(element, successor index)` pairs in arrival order.
    links: VecDeque<(Sample<T>, u64)>,
    /// 1-based arrival count of the next adoption (the skip counter).
    next_adopt: u64,
}

impl<T: Clone> ChainInstance<T> {
    fn new() -> Self {
        Self {
            links: VecDeque::new(),
            // Count 1 adopts with probability 1/min(1, n+1) = 1.
            next_adopt: 1,
        }
    }

    /// Draw the next adoption count after an adoption at count `m`.
    ///
    /// The adoption probability at count `c` is 1/min(c, n+1): a record
    /// process while `c ≤ n+1` (exact integer skip) and a constant
    /// Bernoulli(1/(n+1)) afterwards (geometric skip). During warm-up
    /// this is plain reservoir sampling. After warm-up the correct
    /// adoption probability is 1/(n+1), not 1/n: expiry promotion already
    /// feeds probability 1/n² to every window position (the expiring
    /// sample's successor is uniform over the new window), and solving
    ///   p + (1−p)/n² = (1−p)(1/n + 1/n²)
    /// for uniformity gives p = 1/(n+1). (With 1/n the newest elements
    /// are over-sampled by ≈1/n — the bias is measurable, and the test
    /// `uniform_over_window` below catches it.)
    fn schedule_next_adopt<R: Rng>(&mut self, rng: &mut R, bits: &mut BitSource, m: u64, n: u64) {
        let den = n + 1;
        let base = if m < den {
            match record_skip_with_bits(rng, bits, m, den) {
                Some(c) => {
                    self.next_adopt = c;
                    return;
                }
                None => den, // no adoption through count n+1
            }
        } else {
            m
        };
        // Constant-probability tail: counts beyond n+1 adopt with
        // probability exactly 1/(n+1) each.
        self.next_adopt = base + 1 + geometric_skip(rng, den);
    }

    fn insert<R: Rng>(&mut self, rng: &mut R, bits: &mut BitSource, value: &T, idx: u64, n: u64) {
        let count = idx + 1;
        if count == self.next_adopt {
            self.links.clear();
            let succ = idx + 1 + rng.gen_range(0..n);
            self.links
                .push_back((Sample::new(value.clone(), idx, idx), succ));
            self.schedule_next_adopt(rng, bits, count, n);
        } else if self.links.back().is_some_and(|(_, succ)| *succ == idx) {
            // The awaited successor arrived: extend the chain.
            let succ = idx + 1 + rng.gen_range(0..n);
            self.links
                .push_back((Sample::new(value.clone(), idx, idx), succ));
        }
        // Expire from the front; the next link becomes the sample.
        let oldest_active = count.saturating_sub(n);
        while self
            .links
            .front()
            .is_some_and(|(s, _)| s.index() < oldest_active)
        {
            self.links.pop_front();
        }
    }

    fn sample(&self) -> Option<&Sample<T>> {
        self.links.front().map(|(s, _)| s)
    }

    /// 1-based arrival count of this chain's next *event* — the earlier
    /// of its scheduled adoption and its awaited successor's arrival
    /// (`u64::MAX` when no successor is pending). Arrivals before this
    /// count leave the chain untouched apart from front expiry, which
    /// commutes with everything and can be applied at batch end.
    fn next_event(&self) -> u64 {
        let succ = self
            .links
            .back()
            .map_or(u64::MAX, |&(_, succ)| succ.saturating_add(1));
        self.next_adopt.min(succ)
    }
}

impl<T> ChainInstance<T> {
    fn words(&self) -> usize {
        // Each link: value + index + ts + successor index; plus the skip
        // counter.
        self.links.len() * 4 + 1
    }
}

/// `k` independent chain samplers over the last `n` arrivals — sampling with
/// replacement, expected `O(k)` but randomized memory.
#[derive(Debug, Clone)]
pub struct ChainSampler<T, R> {
    n: u64,
    count: u64,
    rng: R,
    /// Shared coin buffer for every instance's record-process octave
    /// search — one RNG word serves 64 coins across all k chains (RNG
    /// state, excluded from the word accounting).
    bits: BitSource,
    chains: Vec<ChainInstance<T>>,
}

impl<T: Clone, R: Rng> ChainSampler<T, R> {
    /// Chain sampler for windows of the last `n ≥ 1` arrivals with `k ≥ 1`
    /// independent samples.
    pub fn new(n: u64, k: usize, rng: R) -> Self {
        assert!(n >= 1 && k >= 1);
        assert!(n < 1 << 62, "ChainSampler: window size too large");
        Self {
            n,
            count: 0,
            rng,
            bits: BitSource::new(),
            chains: (0..k).map(|_| ChainInstance::new()).collect(),
        }
    }

    /// Length of the longest successor chain (the randomized-memory culprit).
    pub fn max_chain_len(&self) -> usize {
        self.chains.iter().map(|c| c.links.len()).max().unwrap_or(0)
    }
}

impl<T, R> MemoryWords for ChainSampler<T, R> {
    fn memory_words(&self) -> usize {
        self.chains.iter().map(ChainInstance::words).sum::<usize>() + 2
    }
}

impl<T: Clone, R: Rng + 'static> WindowSampler<T> for ChainSampler<T, R> {
    fn insert(&mut self, value: T) {
        let idx = self.count;
        for c in &mut self.chains {
            c.insert(&mut self.rng, &mut self.bits, &value, idx, self.n);
        }
        self.count += 1;
    }

    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        // Event-driven: a chain only does work at its *events* —
        // scheduled adoptions and awaited successor arrivals, both known
        // in advance — so instead of scanning every lane for every
        // element (O(batch·k)), a min-heap over the lanes' next-event
        // counts jumps straight from event to event:
        // O(events · log k + k) per batch, with adoptions arriving at
        // rate 1/min(count, n+1) per lane and successor arrivals at a
        // comparable rate. Front expiry is deferred to batch end — it
        // only pops links that the final count expires anyway, and the
        // awaited *back* link can never be expiry-popped before its
        // successor arrives (succ ≤ idx + n, so the successor lands at
        // count ≤ idx + n + 1, exactly when per-element code would trim
        // idx — and it trims *after* extending).
        if values.is_empty() {
            return;
        }
        let first = self.count;
        let n = self.n;
        let end_count = first + values.len() as u64;
        // Lanes with an event inside this batch, keyed (count, lane) so
        // same-count events process in lane order — the per-element
        // path's lane iteration order, keeping RNG consumption aligned.
        let mut events: BinaryHeap<Reverse<(u64, u32)>> =
            BinaryHeap::with_capacity(self.chains.len());
        for (ci, c) in self.chains.iter().enumerate() {
            let ev = c.next_event();
            if ev <= end_count {
                events.push(Reverse((ev, ci as u32)));
            }
        }
        while let Some(Reverse((count, ci))) = events.pop() {
            let c = &mut self.chains[ci as usize];
            debug_assert_eq!(c.next_event(), count, "stale heap entry");
            let idx = count - 1;
            let value = &values[(idx - first) as usize];
            let succ = idx + 1 + self.rng.gen_range(0..n);
            if count == c.next_adopt {
                c.links.clear();
                c.links
                    .push_back((Sample::new(value.clone(), idx, idx), succ));
                c.schedule_next_adopt(&mut self.rng, &mut self.bits, count, n);
            } else {
                // The awaited successor arrived: extend the chain.
                c.links
                    .push_back((Sample::new(value.clone(), idx, idx), succ));
            }
            let next = c.next_event();
            if next <= end_count {
                events.push(Reverse((next, ci)));
            }
        }
        self.count = end_count;
        // Deferred front expiry: identical final state to per-element
        // trimming (trim sets only grow with the count).
        let oldest_active = end_count.saturating_sub(n);
        for c in &mut self.chains {
            while c
                .links
                .front()
                .is_some_and(|(s, _)| s.index() < oldest_active)
            {
                c.links.pop_front();
            }
        }
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        self.chains[0].sample().cloned()
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        self.chains.iter().map(|c| c.sample().cloned()).collect()
    }

    fn k(&self) -> usize {
        self.chains.len()
    }

    fn save_state(&self) -> Option<SamplerState<T>> {
        let (buf, left) = self.bits.state();
        Some(SamplerState::Chain {
            count: self.count,
            rng: state::capture_rng(&self.rng)?,
            bits: BitsState { buf, left },
            chains: self
                .chains
                .iter()
                .map(|c| ChainLaneState {
                    links: c.links.iter().cloned().collect(),
                    next_adopt: c.next_adopt,
                })
                .collect(),
        })
    }

    fn restore_state(&mut self, state: SamplerState<T>) -> Result<(), StateError> {
        let (count, rng, bits, chains) = match state {
            SamplerState::Chain {
                count,
                rng,
                bits,
                chains,
            } => (count, rng, bits, chains),
            other => {
                return Err(StateError::Mismatch {
                    expected: "chain",
                    found: other.family(),
                })
            }
        };
        if chains.len() != self.chains.len() {
            return Err(StateError::Corrupt(format!(
                "chain state has {} lanes for k = {}",
                chains.len(),
                self.chains.len()
            )));
        }
        if !state::restore_rng(&mut self.rng, &rng) {
            return Err(StateError::Unsupported);
        }
        self.bits = BitSource::from_state(bits.buf, bits.left);
        for (c, st) in self.chains.iter_mut().zip(chains) {
            c.links = st.links.into();
            c.next_adopt = st.next_adopt;
        }
        self.count = count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    #[test]
    fn empty_returns_none() {
        let mut s: ChainSampler<u64, _> = ChainSampler::new(10, 2, SmallRng::seed_from_u64(0));
        assert!(s.sample().is_none());
    }

    #[test]
    fn sample_always_in_window() {
        let mut s = ChainSampler::new(9, 3, SmallRng::seed_from_u64(1));
        for i in 0..400u64 {
            s.insert(i);
            for smp in s.sample_k().expect("nonempty") {
                assert!(smp.index() + 9 > i, "expired sample {} at {i}", smp.index());
            }
        }
    }

    #[test]
    fn uniform_over_window() {
        let n = 12u64;
        let stop = 40u64;
        let trials = 25_000u64;
        let mut counts = vec![0u64; n as usize];
        for t in 0..trials {
            let mut s = ChainSampler::new(n, 1, SmallRng::seed_from_u64(10_000 + t));
            for i in 0..stop {
                s.insert(i);
            }
            counts[(s.sample().expect("nonempty").index() - (stop - n)) as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "chain sampling not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn draws_pack_warmup_coins() {
        use swsample_core::rng::CountingRng;
        // Warm-up regime (count ≤ n+1): every adoption schedules the next
        // one through a record skip whose octave coins now come from the
        // shared BitSource. Per chain the warm-up costs ~H(n) ≈ 11.7
        // adoptions and a similar number of chain extensions; each pays
        // ~1 successor draw plus ~2.6 rejection-phase words, while the
        // ~2 octave coins per skip cost 1/64 word each instead of a full
        // word. With n = 2¹⁶, k = 8 the packed total must stay under
        // k·(5·H(n) + 16) ≈ 595 words; unpacked octave coins alone add
        // back ≈ 2·H(n)·k ≈ 190 words and push past it.
        let n = 1u64 << 16;
        let k = 8usize;
        let rng = CountingRng::new(SmallRng::seed_from_u64(7));
        let mut s = ChainSampler::new(n, k, rng);
        for i in 0..n {
            s.insert(i);
        }
        let words = s.rng.words();
        let h_n = (n as f64).ln() + 0.5772;
        let cap = (k as f64 * (5.0 * h_n + 16.0)) as u64;
        assert!(
            words <= cap,
            "warm-up drew {words} words > packed cap {cap}"
        );
    }

    /// The event-driven batch path consumes RNG in exactly the
    /// per-element order ((count, lane) ascending — the same order the
    /// per-element loop visits lanes), so batch and per-element
    /// ingestion are bit-identical for any chunking — a stronger
    /// property than the pre-event-driven chain-major batch path had.
    #[test]
    fn batch_is_bit_identical_to_per_element() {
        for chunk in [1usize, 7, 64, 1000] {
            let (n, k) = (50u64, 5usize);
            let mut single = ChainSampler::new(n, k, SmallRng::seed_from_u64(21));
            let mut batched = ChainSampler::new(n, k, SmallRng::seed_from_u64(21));
            let values: Vec<u64> = (0..3_000).collect();
            for &v in &values {
                single.insert(v);
            }
            for c in values.chunks(chunk) {
                batched.insert_batch(c);
            }
            assert_eq!(
                single.sample_k(),
                batched.sample_k(),
                "chunk={chunk}: batch diverges from per-element"
            );
            assert_eq!(single.memory_words(), batched.memory_words());
            assert_eq!(single.max_chain_len(), batched.max_chain_len());
        }
    }

    /// Event-driven batches do O(events) work, and events cost O(1)
    /// draws — so the draw count must stay tiny relative to batch·k.
    #[test]
    fn batch_draw_count_tracks_events_not_elements() {
        use swsample_core::rng::CountingRng;
        let (n, k, total) = (10_000u64, 16usize, 100_000u64);
        let rng = CountingRng::new(SmallRng::seed_from_u64(4));
        let mut s = ChainSampler::new(n, k, rng);
        let values: Vec<u64> = (0..total).collect();
        for c in values.chunks(1024) {
            s.insert_batch(c);
        }
        let words = s.rng.words();
        // Steady state: ~1/(n+1) adoptions per lane per element, each
        // O(1) draws, plus comparable successor extensions and warm-up.
        // 8·k·(total/n + H(n)) is a generous ceiling; the per-element
        // path consumed the same (the paths are bit-identical) but the
        // *time* no longer scales with batch·k.
        let h_n = (n as f64).ln() + 0.58;
        let cap = (8.0 * k as f64 * (total as f64 / n as f64 + h_n)) as u64;
        assert!(words <= cap, "batch ingestion drew {words} words > {cap}");
    }

    #[test]
    fn chain_length_fluctuates() {
        // The chain is a random variable: over a long stream it must exceed
        // 2 at some point (randomized bound) for window 64.
        let mut s = ChainSampler::new(64, 1, SmallRng::seed_from_u64(5));
        let mut max_len = 0;
        for i in 0..20_000u64 {
            s.insert(i);
            max_len = max_len.max(s.max_chain_len());
        }
        assert!(max_len > 2, "chain never grew: {max_len}");
    }
}
