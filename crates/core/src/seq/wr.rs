//! Sampling **with replacement** from sequence-based windows (Theorem 2.1).

use crate::memory::MemoryWords;
use crate::sample::Sample;
use crate::skip::record_skip;
use crate::state::{self, SamplerState, SeqWrLaneState, StateError};
use crate::track::{NullTracker, SampleTracker};
use crate::traits::WindowSampler;
use rand::Rng;

/// One independent single-sample instance: the reservoir candidate of the
/// partial bucket plus the retained sample of the last complete bucket.
#[derive(Debug, Clone)]
struct Instance<T, S> {
    /// Sample of the most recent complete bucket (the paper's `X_U`).
    prev: Option<(Sample<T>, S)>,
    /// Reservoir candidate of the partial bucket (the paper's `X_V`).
    cur: Option<(Sample<T>, S)>,
}

impl<T, S> Instance<T, S> {
    fn new() -> Self {
        Self {
            prev: None,
            cur: None,
        }
    }
}

/// `k` independent uniform samples, *with replacement*, over the last `n`
/// arrivals — Theorem 2.1, `O(k)` memory words, deterministic.
///
/// The sampler is generic over a [`SampleTracker`] so sampling-based
/// algorithms (Theorem 5.1) can carry a suffix statistic with each
/// candidate; the default [`NullTracker`] costs nothing.
///
/// # Ingestion cost
///
/// Each instance is a k=1 reservoir over the partial bucket, whose
/// acceptance events are independent Bernoulli(1/(pos+1)) — so instead of
/// one RNG draw per instance per arrival, every instance precomputes its
/// **next-acceptance index** from the exact gap law (see
/// [`crate::skip::record_skip`]). Arrivals below the cached minimum of
/// those indices cost two comparisons and *zero* RNG draws; only the
/// `H(n) = Θ(log n)` accepted arrivals per instance per bucket do real
/// work, for amortized `O(k log(n)/n)` draws per element. The skip path is
/// distribution-identical to the per-arrival path, which remains available
/// via [`SeqSamplerWr::naive`] (benchmark baseline + equivalence tests)
/// and is used automatically whenever the tracker must observe every
/// arrival (`K::TRACKS`).
///
/// ```
/// use swsample_core::seq::SeqSamplerWr;
/// use swsample_core::WindowSampler;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut s = SeqSamplerWr::new(100, 3, SmallRng::seed_from_u64(1));
/// for i in 0..1_000u64 {
///     s.insert(i);
/// }
/// for sample in s.sample_k().unwrap() {
///     assert!(sample.index() >= 900); // inside the window
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SeqSamplerWr<T, R, K: SampleTracker<T> = NullTracker> {
    // Declaration order groups the skip fast path's fields
    // (`n`/`count`/`min_next`/`next_rotate`/`naive`) ahead of the cold
    // ones so the common non-accept insert in a 10⁵-key fleet *tends* to
    // stay within the box's first cache line. `repr(Rust)` does not
    // guarantee layout follows declaration — this is a nudge the
    // compiler is free to ignore, not a pinned layout.
    n: u64,
    /// Total arrivals so far (`N` in the paper).
    count: u64,
    /// Cached minimum of `next_accept` — the skip path's only per-arrival
    /// comparison.
    min_next: u64,
    /// The count at which the next bucket rotation happens — the cached
    /// next multiple of `n`, so the per-arrival boundary check is a
    /// compare instead of a `u64` division. Pure arithmetic function of
    /// `count` (which is counted), so excluded from the §1.4 word
    /// accounting like the RNG state.
    next_rotate: u64,
    /// `true` forces the per-arrival reference path (required when the
    /// tracker observes every arrival).
    naive: bool,
    rng: R,
    tracker: K,
    instances: Vec<Instance<T, K::Stat>>,
    /// Absolute stream index at which each instance next accepts
    /// (`u64::MAX` = no further acceptance in the current bucket).
    next_accept: Vec<u64>,
    /// Total acceptance events so far (diagnostic; not counted as memory).
    accepts: u64,
}

impl<T: Clone, R: Rng> SeqSamplerWr<T, R, NullTracker> {
    /// Sampler for windows of the last `n ≥ 1` arrivals maintaining `k ≥ 1`
    /// independent samples, using the skip-ahead ingestion path.
    pub fn new(n: u64, k: usize, rng: R) -> Self {
        Self::with_tracker(n, k, rng, NullTracker)
    }

    /// Like [`SeqSamplerWr::new`] but forcing the naive per-arrival RNG
    /// path. Distribution-identical to the skip path; kept as the
    /// reference implementation for equivalence tests and as the
    /// benchmark baseline (`bench_throughput` measures both).
    pub fn naive(n: u64, k: usize, rng: R) -> Self {
        let mut s = Self::with_tracker(n, k, rng, NullTracker);
        s.naive = true;
        s
    }
}

impl<T: Clone, R: Rng, K: SampleTracker<T>> SeqSamplerWr<T, R, K> {
    /// Like [`SeqSamplerWr::new`], with a custom per-candidate tracker.
    /// Trackers with `TRACKS = true` need to observe every arrival, so
    /// they ingest through the per-arrival path; non-observing trackers
    /// (like [`NullTracker`]) get the skip path.
    pub fn with_tracker(n: u64, k: usize, rng: R, tracker: K) -> Self {
        assert!(n >= 1, "SeqSamplerWr: window size must be at least 1");
        assert!(n <= 1 << 62, "SeqSamplerWr: window size too large");
        assert!(k >= 1, "SeqSamplerWr: k must be at least 1");
        Self {
            n,
            count: 0,
            rng,
            tracker,
            instances: (0..k).map(|_| Instance::new()).collect(),
            // Index 0 opens the first bucket: every instance accepts it
            // with probability 1.
            next_accept: vec![0; k],
            min_next: 0,
            next_rotate: n,
            naive: K::TRACKS,
            accepts: 0,
        }
    }

    /// Window size `n`.
    pub fn window(&self) -> u64 {
        self.n
    }

    /// Total number of arrivals observed.
    pub fn len_seen(&self) -> u64 {
        self.count
    }

    /// Current number of active (windowed) elements.
    pub fn active_len(&self) -> u64 {
        self.count.min(self.n)
    }

    /// Total acceptance events across all instances — the quantity the
    /// skip path bounds by `O(k log n)` per bucket w.h.p. (diagnostic).
    pub fn acceptances(&self) -> u64 {
        self.accepts
    }

    /// `true` when ingestion uses the skip-ahead path.
    pub fn is_skip_path(&self) -> bool {
        !self.naive
    }

    /// Insert the next arrival.
    pub fn push(&mut self, value: T) {
        if self.naive {
            self.push_naive(value);
        } else {
            let idx = self.count;
            if idx >= self.min_next {
                self.accept_at(idx, value);
            }
            self.count += 1;
            if self.count == self.next_rotate {
                self.rotate_buckets();
                self.next_rotate += self.n;
            }
        }
    }

    /// The reference per-arrival path: one RNG draw per instance per
    /// arrival, plus tracker observation hooks.
    fn push_naive(&mut self, value: T) {
        let idx = self.count;
        // Position inside the partial bucket; the arriving element is the
        // (pos+1)-th element of that bucket.
        let pos = idx % self.n;
        for inst in &mut self.instances {
            // Reservoir step: adopt with probability 1/(pos+1).
            if self.rng.gen_range(0..=pos) == 0 {
                self.accepts += 1;
                let stat = self.tracker.fresh(&value, idx);
                inst.cur = Some((Sample::new(value.clone(), idx, idx), stat));
            } else if let Some((_, stat)) = inst.cur.as_mut() {
                self.tracker.observe(stat, &value);
            }
            // The complete bucket's retained sample keeps observing the
            // suffix (its suffix statistic spans into the partial bucket).
            if let Some((_, stat)) = inst.prev.as_mut() {
                self.tracker.observe(stat, &value);
            }
        }
        self.count += 1;
        if self.count == self.next_rotate {
            self.rotate_buckets();
            self.next_rotate += self.n;
        }
    }

    /// The partial bucket just completed; it becomes bucket U and the old
    /// U is now fully expired. Re-arms the skip state: the next bucket's
    /// first arrival is accepted by every instance with probability 1.
    fn rotate_buckets(&mut self) {
        for inst in &mut self.instances {
            inst.prev = inst.cur.take();
        }
        if !self.naive {
            for na in &mut self.next_accept {
                *na = self.count;
            }
            self.min_next = self.count;
        }
    }

    /// Skip-path acceptance: adopt `value` into every instance whose
    /// next-acceptance index is `idx`, then redraw their gaps. The value
    /// is moved into the final acceptor, so an arrival accepted by `j`
    /// instances costs `j − 1` clones (zero in the common `j = 1` case).
    fn accept_at(&mut self, idx: u64, value: T) {
        let pos = idx % self.n;
        let bucket_start = idx - pos;
        let accepting = self.next_accept.iter().filter(|&&na| na == idx).count();
        debug_assert!(accepting >= 1, "accept_at called with no acceptor");
        self.accepts += accepting as u64;
        let mut value = Some(value);
        let mut remaining = accepting;
        for i in 0..self.instances.len() {
            if self.next_accept[i] != idx {
                continue;
            }
            remaining -= 1;
            let v = if remaining == 0 {
                value.take().expect("value present for the final acceptor")
            } else {
                value.as_ref().expect("value present").clone()
            };
            let stat = self.tracker.fresh(&v, idx);
            self.instances[i].cur = Some((Sample::new(v, idx, idx), stat));
            self.next_accept[i] = match record_skip(&mut self.rng, pos + 1, self.n) {
                Some(c) => bucket_start + c - 1,
                None => u64::MAX, // instance is done until the next bucket
            };
        }
        self.min_next = self
            .next_accept
            .iter()
            .copied()
            .min()
            .expect("at least one instance");
    }

    /// Draw the `k` samples together with their tracker statistics.
    pub fn sample_k_with_stats(&mut self) -> Option<Vec<(Sample<T>, K::Stat)>> {
        if self.count == 0 {
            return None;
        }
        let oldest_active = self.count.saturating_sub(self.n);
        let within_first_bucket = self.count < self.n;
        let aligned = self.count.is_multiple_of(self.n);
        let picks = self
            .instances
            .iter()
            .map(|inst| {
                if within_first_bucket {
                    // Window = everything so far = the partial bucket.
                    inst.cur.as_ref().expect("partial bucket nonempty")
                } else if aligned {
                    // Window coincides with the complete bucket U.
                    inst.prev.as_ref().expect("complete bucket exists")
                } else {
                    // Window straddles U and V: take X_U unless expired.
                    let prev = inst.prev.as_ref().expect("complete bucket exists");
                    if prev.0.index() >= oldest_active {
                        prev
                    } else {
                        inst.cur.as_ref().expect("partial bucket nonempty")
                    }
                }
            })
            .map(|(s, stat)| (s.clone(), stat.clone()))
            .collect();
        Some(picks)
    }
}

impl<T, R, K: SampleTracker<T>> MemoryWords for SeqSamplerWr<T, R, K> {
    fn memory_words(&self) -> usize {
        // Per instance: up to two retained samples plus its next-acceptance
        // index; plus (n, count, min_next) globals. Identical on the skip
        // and naive paths (the lockstep equivalence tests rely on that).
        let per: usize = self
            .instances
            .iter()
            .map(|i| {
                i.prev.as_ref().map_or(0, |_| Sample::<T>::WORDS)
                    + i.cur.as_ref().map_or(0, |_| Sample::<T>::WORDS)
            })
            .sum();
        per + self.next_accept.len() + 3
    }
}

impl<T: Clone, R: Rng + 'static, K: SampleTracker<T>> WindowSampler<T> for SeqSamplerWr<T, R, K> {
    fn insert(&mut self, value: T) {
        self.push(value);
    }

    fn save_state(&self) -> Option<SamplerState<T>> {
        // Tracking trackers carry suffix statistics that cannot be
        // reconstructed from the retained samples alone.
        if K::TRACKS {
            return None;
        }
        let rng = state::capture_rng(&self.rng)?;
        let lanes = self
            .instances
            .iter()
            .zip(&self.next_accept)
            .map(|(inst, &next_accept)| SeqWrLaneState {
                prev: inst.prev.as_ref().map(|(s, _)| s.clone()),
                cur: inst.cur.as_ref().map(|(s, _)| s.clone()),
                next_accept,
            })
            .collect();
        Some(SamplerState::SeqWr {
            count: self.count,
            accepts: self.accepts,
            rng,
            lanes,
        })
    }

    fn restore_state(&mut self, state: SamplerState<T>) -> Result<(), StateError> {
        if K::TRACKS {
            return Err(StateError::Unsupported);
        }
        let (count, accepts, rng, lanes) = match state {
            SamplerState::SeqWr {
                count,
                accepts,
                rng,
                lanes,
            } => (count, accepts, rng, lanes),
            other => {
                return Err(StateError::Mismatch {
                    expected: "seq-wr",
                    found: other.family(),
                })
            }
        };
        if lanes.len() != self.instances.len() {
            return Err(StateError::Corrupt(format!(
                "seq-wr: {} lanes for k = {}",
                lanes.len(),
                self.instances.len()
            )));
        }
        if !state::restore_rng(&mut self.rng, &rng) {
            return Err(StateError::Unsupported);
        }
        let mut instances = Vec::with_capacity(lanes.len());
        let mut next_accept = Vec::with_capacity(lanes.len());
        for lane in lanes {
            // Non-tracking trackers' statistics are position-independent,
            // so `fresh` reproduces them exactly (for `NullTracker`: `()`).
            let prev = lane.prev.map(|s| {
                let stat = self.tracker.fresh(s.value(), s.index());
                (s, stat)
            });
            let cur = lane.cur.map(|s| {
                let stat = self.tracker.fresh(s.value(), s.index());
                (s, stat)
            });
            instances.push(Instance { prev, cur });
            next_accept.push(lane.next_accept);
        }
        self.instances = instances;
        self.next_accept = next_accept;
        self.count = count;
        self.accepts = accepts;
        // Derived fields: the skip gate is the minimum pending acceptance,
        // and the next rotation is the next multiple of `n` after `count`.
        self.min_next = self
            .next_accept
            .iter()
            .copied()
            .min()
            .expect("at least one instance");
        self.next_rotate = (self.count / self.n + 1) * self.n;
        Ok(())
    }

    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        if self.naive {
            for v in values {
                self.push_naive(v.clone());
            }
            return;
        }
        let mut i = 0usize;
        while i < values.len() {
            let idx = self.count;
            if idx >= self.min_next {
                self.accept_at(idx, values[i].clone());
                self.count += 1;
                i += 1;
            } else {
                // Hop wholesale over arrivals no instance will accept —
                // stop at the next acceptance, the bucket boundary, or the
                // end of the batch, whichever comes first.
                let pos = idx % self.n;
                let hop = (self.n - pos)
                    .min(self.min_next - idx)
                    .min((values.len() - i) as u64);
                self.count += hop;
                i += hop as usize;
            }
            if self.count == self.next_rotate {
                self.rotate_buckets();
                self.next_rotate += self.n;
            }
        }
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        self.sample_k_with_stats().map(|mut v| v.swap_remove(0).0)
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        self.sample_k_with_stats()
            .map(|v| v.into_iter().map(|(s, _)| s).collect())
    }

    fn k(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    #[test]
    fn empty_sampler_returns_none() {
        let mut s: SeqSamplerWr<u64, _> = SeqSamplerWr::new(10, 2, SmallRng::seed_from_u64(0));
        assert!(s.sample().is_none());
        assert!(s.sample_k().is_none());
    }

    #[test]
    fn sample_always_in_window() {
        let mut s = SeqSamplerWr::new(13, 3, SmallRng::seed_from_u64(1));
        for i in 0..500u64 {
            s.insert(i);
            let lo = (i + 1).saturating_sub(13);
            for smp in s.sample_k().expect("nonempty") {
                assert!(
                    smp.index() >= lo && smp.index() <= i,
                    "sample {} outside [{lo}, {i}]",
                    smp.index()
                );
                assert_eq!(*smp.value(), smp.index());
            }
        }
    }

    /// Drive both ingestion paths at several awkward stream positions and
    /// hold them to the same chi-square threshold.
    #[test]
    fn uniform_at_awkward_offsets() {
        // Check uniformity at several stream positions, including exactly on
        // a bucket boundary and just after one.
        let n = 16u64;
        for naive in [false, true] {
            for &stop in &[16u64, 17, 24, 32, 33, 47] {
                let trials = 20_000;
                let mut counts = vec![0u64; n as usize];
                for t in 0..trials {
                    let mut s = if naive {
                        SeqSamplerWr::naive(n, 1, SmallRng::seed_from_u64(1000 + t))
                    } else {
                        SeqSamplerWr::new(n, 1, SmallRng::seed_from_u64(1000 + t))
                    };
                    for i in 0..stop {
                        s.insert(i);
                    }
                    let smp = s.sample().expect("nonempty");
                    counts[(smp.index() - (stop - n)) as usize] += 1;
                }
                let out = chi_square_uniform_test(&counts);
                assert!(
                    out.p_value > 1e-4,
                    "not uniform at stop={stop} (naive={naive}): p = {}",
                    out.p_value
                );
            }
        }
    }

    #[test]
    fn uniform_during_warmup() {
        // Fewer than n arrivals: window is everything seen so far.
        let trials = 20_000;
        let mut counts = vec![0u64; 7];
        for t in 0..trials {
            let mut s = SeqSamplerWr::new(100, 1, SmallRng::seed_from_u64(t));
            for i in 0..7u64 {
                s.insert(i);
            }
            counts[s.sample().expect("nonempty").index() as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "warm-up not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn k_samples_are_independent_pairs() {
        // With k = 2 the joint distribution over (pos1, pos2) must be the
        // product of uniforms: chi-square over the n×n grid.
        let n = 4u64;
        let trials = 40_000u64;
        let mut counts = vec![0u64; (n * n) as usize];
        for t in 0..trials {
            let mut s = SeqSamplerWr::new(n, 2, SmallRng::seed_from_u64(90_000 + t));
            for i in 0..10u64 {
                s.insert(i);
            }
            let ss = s.sample_k().expect("nonempty");
            let a = ss[0].index() - 6;
            let b = ss[1].index() - 6;
            counts[(a * n + b) as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "k=2 joint not product-uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn batched_insert_is_uniform() {
        // The wholesale-hop batch path must produce the same distribution
        // as per-element ingestion, at the same threshold.
        let n = 16u64;
        let stop = 47usize;
        let trials = 20_000;
        let mut counts = vec![0u64; n as usize];
        for t in 0..trials {
            let mut s = SeqSamplerWr::new(n, 1, SmallRng::seed_from_u64(400_000 + t));
            let values: Vec<u64> = (0..stop as u64).collect();
            // Uneven chunk sizes exercise hop clipping at batch ends.
            for chunk in values.chunks(7) {
                s.insert_batch(chunk);
            }
            let smp = s.sample().expect("nonempty");
            counts[(smp.index() - (stop as u64 - n)) as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "batched ingestion not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn batch_and_single_agree_given_same_rng_stream() {
        // The skip path consumes RNG only on acceptances, so batch and
        // per-element ingestion of the same stream are *identical*, not
        // just equidistributed.
        let mut a = SeqSamplerWr::new(32, 4, SmallRng::seed_from_u64(9));
        let mut b = SeqSamplerWr::new(32, 4, SmallRng::seed_from_u64(9));
        let values: Vec<u64> = (0..1000).collect();
        for &v in &values {
            a.insert(v);
        }
        for chunk in values.chunks(13) {
            b.insert_batch(chunk);
        }
        assert_eq!(a.acceptances(), b.acceptances());
        assert_eq!(a.sample_k(), b.sample_k());
    }

    #[test]
    fn lockstep_memory_naive_vs_skip() {
        // Identical MemoryWords trajectories: which samples are held at
        // each step is deterministic (bucket position only), and the skip
        // state is accounted on both paths.
        let mut skip = SeqSamplerWr::new(13, 5, SmallRng::seed_from_u64(1));
        let mut naive = SeqSamplerWr::naive(13, 5, SmallRng::seed_from_u64(2));
        for i in 0..300u64 {
            skip.insert(i);
            naive.insert(i);
            assert_eq!(skip.memory_words(), naive.memory_words(), "at step {i}");
        }
    }

    #[test]
    fn skip_path_accepts_logarithmically() {
        // Acceptances per bucket must be O(log n) w.h.p. — here: mean
        // within 10% of k·H(n), max under 4·k·H(n), over 200 buckets.
        let n = 1024u64;
        let k = 4usize;
        let mut s = SeqSamplerWr::new(n, k, SmallRng::seed_from_u64(3));
        let mut per_bucket = Vec::new();
        let mut last = 0u64;
        for b in 0..200u64 {
            for i in 0..n {
                s.insert(b * n + i);
            }
            per_bucket.push(s.acceptances() - last);
            last = s.acceptances();
        }
        let h_n = (n as f64).ln() + 0.5772;
        let mean = per_bucket.iter().sum::<u64>() as f64 / per_bucket.len() as f64;
        let max = *per_bucket.iter().max().expect("nonempty") as f64;
        assert!(
            (mean - k as f64 * h_n).abs() < 0.1 * k as f64 * h_n,
            "mean acceptances/bucket {mean} vs k·H(n) = {}",
            k as f64 * h_n
        );
        assert!(
            max < 4.0 * k as f64 * h_n,
            "max acceptances/bucket {max} not O(log n)"
        );
    }

    #[test]
    fn memory_is_constant_in_stream_length_and_window() {
        for &n in &[4u64, 64, 4096] {
            let k = 5;
            let mut s = SeqSamplerWr::new(n, k, SmallRng::seed_from_u64(2));
            // Two samples of 3 words + 1 skip index per instance + globals.
            let cap = k * 2 * 3 + k + 3;
            for i in 0..3000u64 {
                s.insert(i);
                assert!(
                    s.memory_words() <= cap,
                    "memory {} > {cap}",
                    s.memory_words()
                );
            }
        }
    }

    #[test]
    fn tracker_counts_suffix_occurrences() {
        use crate::track::OccurrenceTracker;
        // Constant stream: the suffix count of the candidate must equal
        // (count - candidate index). Observing trackers force the naive
        // ingestion path.
        let mut s = SeqSamplerWr::with_tracker(8, 1, SmallRng::seed_from_u64(3), OccurrenceTracker);
        assert!(!s.is_skip_path());
        for _ in 0..20 {
            s.insert(7u64);
        }
        let (smp, (val, cnt)) = s
            .sample_k_with_stats()
            .expect("nonempty")
            .pop()
            .expect("k=1");
        assert_eq!(val, 7);
        assert_eq!(cnt, 20 - smp.index());
    }

    #[test]
    fn len_accessors() {
        let mut s: SeqSamplerWr<u64, _> = SeqSamplerWr::new(10, 1, SmallRng::seed_from_u64(4));
        assert_eq!(s.active_len(), 0);
        assert!(s.is_skip_path());
        for i in 0..25u64 {
            s.insert(i);
        }
        assert_eq!(s.len_seen(), 25);
        assert_eq!(s.active_len(), 10);
        assert_eq!(s.window(), 10);
        assert_eq!(s.k(), 1);
    }
}
