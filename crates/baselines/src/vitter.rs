//! Plain reservoir sampling over the *entire* stream (Vitter 1985) — no
//! window, no expiry.
//!
//! This is the insertion-only method the paper's Question 1.2 measures
//! against ("is sampling from sliding windows algorithmically harder than
//! sampling from the entire stream?"); the throughput benchmark (E7) uses it
//! as the per-element cost floor.

use rand::Rng;
use swsample_core::reservoir::ReservoirK;
use swsample_core::{MemoryWords, Sample, WindowSampler};

/// Whole-stream `k`-sample without replacement (the sliding window is the
/// entire stream).
#[derive(Debug, Clone)]
pub struct StreamReservoir<T, R> {
    inner: ReservoirK<T>,
    rng: R,
    next_index: u64,
}

impl<T: Clone, R: Rng> StreamReservoir<T, R> {
    /// Reservoir of capacity `k ≥ 1`.
    pub fn new(k: usize, rng: R) -> Self {
        Self {
            inner: ReservoirK::new(k),
            rng,
            next_index: 0,
        }
    }
}

impl<T, R> MemoryWords for StreamReservoir<T, R> {
    fn memory_words(&self) -> usize {
        self.inner.memory_words() + 1
    }
}

impl<T: Clone, R: Rng> WindowSampler<T> for StreamReservoir<T, R> {
    fn insert(&mut self, value: T) {
        let idx = self.next_index;
        self.next_index += 1;
        self.inner.insert(&mut self.rng, value, idx, idx);
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        let entries = self.inner.entries();
        if entries.is_empty() {
            return None;
        }
        let j = self.rng.gen_range(0..entries.len());
        Some(entries[j].clone())
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        if self.inner.entries().is_empty() {
            None
        } else {
            Some(self.inner.entries().to_vec())
        }
    }

    fn k(&self) -> usize {
        self.inner.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn holds_k_samples_from_whole_stream() {
        let mut s = StreamReservoir::new(5, SmallRng::seed_from_u64(0));
        for i in 0..1000u64 {
            s.insert(i);
        }
        let out = s.sample_k().expect("nonempty");
        assert_eq!(out.len(), 5);
        // Samples may be arbitrarily old — that is the point of contrast
        // with windowed samplers.
        assert!(out.iter().all(|x| x.index() < 1000));
    }

    #[test]
    fn memory_constant() {
        let mut s = StreamReservoir::new(3, SmallRng::seed_from_u64(1));
        for i in 0..10_000u64 {
            s.insert(i);
        }
        assert!(s.memory_words() <= 3 * 3 + 3);
    }

    #[test]
    fn empty_returns_none() {
        let mut s: StreamReservoir<u64, _> = StreamReservoir::new(2, SmallRng::seed_from_u64(2));
        assert!(s.sample().is_none());
    }
}
