//! E9 / E10 / E11 — the §5 applications: frequency moments, triangle
//! counting, entropy, all over sliding windows via Theorem 5.1.

use crate::{f3, pct, table_header, table_row};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample_apps::{EntropyEstimator, ExactWindow, MomentEstimator, TriangleEstimator};
use swsample_stream::{count_triangles, EdgeStreamGen, UniformGen, ValueGen, ZipfGen};

/// Relative error |est − exact| / exact.
fn rel_err(est: f64, exact: f64) -> f64 {
    (est - exact).abs() / exact.max(1e-12)
}

/// E9: AMS frequency moments F₂ and F₃ over sliding windows
/// (Corollary 5.2). Error should shrink roughly as 1/√s₁.
pub fn e9_frequency_moments() {
    let n = 4096u64;
    let stream_len = 3 * n;
    table_header(
        "E9 — Corollary 5.2: F_k over sliding windows, Zipf(1.1) stream, n = 4096 (20 seeds)",
        &["moment", "s1×s2", "median rel-err", "p90 rel-err"],
    );
    for &moment in &[2u32, 3] {
        for &(s1, s2) in &[(16usize, 3usize), (64, 3), (256, 3)] {
            let mut errs = Vec::new();
            for seed in 0..20u64 {
                let mut vg = ZipfGen::new(200, 1.1);
                let mut rng = SmallRng::seed_from_u64(500 + seed);
                let mut est =
                    MomentEstimator::new(n, moment, s1, s2, SmallRng::seed_from_u64(seed));
                let mut exact = ExactWindow::new(n as usize);
                for _ in 0..stream_len {
                    let v = vg.next_value(&mut rng);
                    est.insert(v);
                    exact.insert(v);
                }
                errs.push(rel_err(
                    est.estimate().expect("nonempty"),
                    exact.moment(moment),
                ));
            }
            errs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = errs[errs.len() / 2];
            let p90 = errs[(errs.len() * 9) / 10];
            table_row(&[
                format!("F{moment}"),
                format!("{s1}×{s2}"),
                pct(median),
                pct(p90),
            ]);
        }
    }
}

/// E10: triangle counting over sliding edge windows (Corollary 5.3).
///
/// The Buriol estimator assumes (near-)distinct stream edges; the first row
/// deliberately uses a dense graph where the window duplicates many edges,
/// exhibiting the documented upward bias, while the sparse rows show the
/// estimator converging on its intended workload.
pub fn e10_triangles() {
    table_header(
        "E10 — Corollary 5.3: window triangle counts, planted-triangle streams (10 seeds)",
        &[
            "nodes",
            "window",
            "estimators",
            "dup rate",
            "exact (mean)",
            "estimate (mean)",
            "est/exact",
        ],
    );
    for &(nodes, window, estimators) in &[
        (30u32, 400u64, 4096usize), // dense: duplication-bias demo
        (100, 400, 4096),
        (100, 400, 8192),
        (200, 800, 8192),
    ] {
        let mut exact_mean = 0.0;
        let mut est_mean = 0.0;
        let mut dup_mean = 0.0;
        let seeds = 10u64;
        for seed in 0..seeds {
            let mut gen = EdgeStreamGen::new(nodes, 0.35);
            let mut rng = SmallRng::seed_from_u64(900 + seed);
            let mut est = TriangleEstimator::new(
                window,
                nodes,
                estimators,
                SmallRng::seed_from_u64(seed),
                seed,
            );
            let mut buf = std::collections::VecDeque::new();
            for _ in 0..2 * window {
                let e = gen.next_edge(&mut rng);
                est.insert(e);
                buf.push_back(e);
                if buf.len() > window as usize {
                    buf.pop_front();
                }
            }
            let window_edges = buf.make_contiguous();
            let distinct: std::collections::HashSet<_> = window_edges.iter().collect();
            dup_mean += 1.0 - distinct.len() as f64 / window_edges.len() as f64;
            exact_mean += count_triangles(window_edges) as f64;
            est_mean += est.estimate().expect("nonempty");
        }
        exact_mean /= seeds as f64;
        est_mean /= seeds as f64;
        dup_mean /= seeds as f64;
        table_row(&[
            nodes.to_string(),
            window.to_string(),
            estimators.to_string(),
            pct(dup_mean),
            f3(exact_mean),
            f3(est_mean),
            f3(est_mean / exact_mean),
        ]);
    }
    println!("(estimate/exact ≈ 1 on low-duplication streams; dense first row shows the");
    println!(" multiplicity bias inherited from the original estimator's distinct-edge model)");
}

/// E11: entropy estimation over sliding windows (Corollary 5.4).
pub fn e11_entropy() {
    let n = 4096u64;
    table_header(
        "E11 — Corollary 5.4: window entropy, n = 4096 (20 seeds)",
        &[
            "stream",
            "s1×s2",
            "exact H (bits)",
            "estimate (mean)",
            "mean |err| (bits)",
        ],
    );
    enum Kind {
        Uniform,
        Zipf,
    }
    for (name, kind) in [
        ("uniform(64)", Kind::Uniform),
        ("zipf(1.2, 64)", Kind::Zipf),
    ] {
        for &(s1, s2) in &[(32usize, 3usize), (128, 3)] {
            let mut exact_h = 0.0;
            let mut est_mean = 0.0;
            let mut abs_err = 0.0;
            let seeds = 20u64;
            for seed in 0..seeds {
                let mut rng = SmallRng::seed_from_u64(1_300 + seed);
                let mut est = EntropyEstimator::new(n, s1, s2, SmallRng::seed_from_u64(seed));
                let mut exact = ExactWindow::new(n as usize);
                let mut uni = UniformGen::new(64);
                let mut zipf = ZipfGen::new(64, 1.2);
                for _ in 0..2 * n {
                    let v = match kind {
                        Kind::Uniform => uni.next_value(&mut rng),
                        Kind::Zipf => zipf.next_value(&mut rng),
                    };
                    est.insert(v);
                    exact.insert(v);
                }
                let h = exact.entropy();
                let e = est.estimate().expect("nonempty");
                exact_h += h;
                est_mean += e;
                abs_err += (e - h).abs();
            }
            table_row(&[
                name.into(),
                format!("{s1}×{s2}"),
                f3(exact_h / seeds as f64),
                f3(est_mean / seeds as f64),
                f3(abs_err / seeds as f64),
            ]);
        }
    }
}
