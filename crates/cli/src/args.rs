//! Minimal dependency-free argument parsing for the `swsample` CLI.
//!
//! Hand-rolled on purpose: the workspace's dependency policy (DESIGN.md §6)
//! keeps the runtime surface to `rand`, and a flag parser is forty lines.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--flag value` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    flags: HashMap<String, String>,
}

/// Parsing failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse `argv` (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ArgError> {
        let mut it = argv.into_iter();
        let command = match it.next() {
            Some(c) if !c.starts_with('-') => c,
            Some(c) => return Err(ArgError(format!("expected a subcommand, got flag `{c}`"))),
            None => return Err(ArgError("missing subcommand".into())),
        };
        let mut flags = HashMap::new();
        // One token of lookahead: a `--flag` that turns out to be the
        // next flag (not a value) is pushed back and parsed in full on
        // the next turn, so any run of bare boolean flags parses.
        let mut pending = it.next();
        while let Some(tok) = pending.take() {
            let name = tok
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("expected `--flag`, got `{tok}`")))?;
            if name.is_empty() {
                return Err(ArgError("empty flag name".into()));
            }
            // `--flag=value` or `--flag value`; bare flags get "true".
            if let Some((k, v)) = name.split_once('=') {
                flags.insert(k.to_string(), v.to_string());
                pending = it.next();
            } else {
                match it.next() {
                    Some(v) if !v.starts_with("--") => {
                        flags.insert(name.to_string(), v);
                        pending = it.next();
                    }
                    lookahead => {
                        flags.insert(name.to_string(), "true".into());
                        pending = lookahead;
                    }
                }
            }
        }
        Ok(Self { command, flags })
    }

    /// Uniform parse-failure message: every typed accessor reports the
    /// flag, the expected type, and the offending raw text the same way.
    fn parsed<T: std::str::FromStr>(name: &str, what: &str, raw: &str) -> Result<T, ArgError> {
        raw.parse()
            .map_err(|_| ArgError(format!("--{name}: expected {what}, got `{raw}`")))
    }

    /// Required flag as a parsed value.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let raw = self
            .flags
            .get(name)
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))?;
        Self::parsed(name, "a value", raw)
    }

    /// Optional non-negative count (`--k`, `--batch-size`, `--shards`, …).
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => Self::parsed(name, "a non-negative integer", raw),
        }
    }

    /// Optional 64-bit count (`--seed`, `--count`, `--report-every`, …).
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => Self::parsed(name, "a non-negative integer", raw),
        }
    }

    /// Optional float (`--epsilon`, `--theta`, …).
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => Self::parsed(name, "a number", raw),
        }
    }

    /// Boolean flag (present, `=true`, or `=1`).
    pub fn get_flag(&self, name: &str) -> bool {
        matches!(
            self.flags.get(name).map(String::as_str),
            Some("true") | Some("1")
        )
    }

    /// Raw string value of a flag, if present.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = Args::parse(argv("seq --window 100 --k 5")).expect("parse");
        assert_eq!(a.command, "seq");
        assert_eq!(a.require::<u64>("window").expect("window"), 100);
        assert_eq!(a.require::<usize>("k").expect("k"), 5);
    }

    #[test]
    fn equals_syntax() {
        let a = Args::parse(argv("ts --window=60 --epsilon=0.05")).expect("parse");
        assert_eq!(a.require::<u64>("window").expect("window"), 60);
        assert!((a.require::<f64>("epsilon").expect("eps") - 0.05).abs() < 1e-12);
    }

    #[test]
    fn bare_boolean_flags() {
        let a = Args::parse(argv("seq --wor --window 10")).expect("parse");
        assert!(a.get_flag("wor"));
        assert_eq!(a.require::<u64>("window").expect("window"), 10);
        assert!(!a.get_flag("missing"));
    }

    #[test]
    fn trailing_bare_flag() {
        let a = Args::parse(argv("seq --window 10 --wor")).expect("parse");
        assert!(a.get_flag("wor"));
    }

    #[test]
    fn consecutive_bare_flags() {
        // Regression: the old lookahead re-processing consumed the flag
        // after the *second* bare flag as its value, so any run of three
        // or more bare flags silently dropped the tail.
        let a = Args::parse(argv(
            "loadgen --verify --render-multi --shutdown-server --addr x:1",
        ))
        .expect("parse");
        assert!(a.get_flag("verify"));
        assert!(a.get_flag("render-multi"));
        assert!(a.get_flag("shutdown-server"));
        assert_eq!(a.get_str("addr"), Some("x:1"));

        let a = Args::parse(argv("seq --wor --resume --window=9 --verify")).expect("parse");
        assert!(a.get_flag("wor"));
        assert!(a.get_flag("resume"));
        assert!(a.get_flag("verify"));
        assert_eq!(a.require::<u64>("window").expect("window"), 9);
    }

    #[test]
    fn defaults() {
        let a = Args::parse(argv("seq")).expect("parse");
        assert_eq!(a.get_usize("k", 7).expect("default"), 7);
    }

    #[test]
    fn missing_subcommand_is_error() {
        assert!(Args::parse(argv("")).is_err());
        assert!(Args::parse(argv("--window 5")).is_err());
    }

    #[test]
    fn unparseable_value_is_error() {
        let a = Args::parse(argv("seq --window ten")).expect("parse");
        assert!(a.require::<u64>("window").is_err());
    }

    #[test]
    fn typed_accessors_parse_and_default() {
        let a = Args::parse(argv("run --k 5 --seed 9 --theta 1.25 --wor")).expect("parse");
        assert_eq!(a.get_usize("k", 1).expect("k"), 5);
        assert_eq!(a.get_usize("batch-size", 512).expect("default"), 512);
        assert_eq!(a.get_u64("seed", 42).expect("seed"), 9);
        assert_eq!(a.get_u64("count", 10).expect("default"), 10);
        assert!((a.get_f64("theta", 1.1).expect("theta") - 1.25).abs() < 1e-12);
        assert!(a.get_flag("wor"));
        assert!(!a.get_flag("absent"));
        assert_eq!(a.get_str("seed"), Some("9"));
        assert_eq!(a.get_str("absent"), None);
    }

    #[test]
    fn typed_accessor_errors_are_uniform() {
        let a = Args::parse(argv("run --k five --seed -3 --theta much")).expect("parse");
        let k = a.get_usize("k", 1).expect_err("bad usize");
        assert_eq!(
            k.to_string(),
            "--k: expected a non-negative integer, got `five`"
        );
        let seed = a.get_u64("seed", 0).expect_err("bad u64");
        assert_eq!(
            seed.to_string(),
            "--seed: expected a non-negative integer, got `-3`"
        );
        let theta = a.get_f64("theta", 1.0).expect_err("bad f64");
        assert_eq!(theta.to_string(), "--theta: expected a number, got `much`");
    }
}
