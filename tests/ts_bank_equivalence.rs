//! Equivalence audit for the fused k-lane timestamp bank (`TsEngineBank`):
//! the fused `TsSamplerWr`/`TsSamplerWor` against the retained
//! `independent` per-engine construction.
//!
//! Three layers of evidence, mirroring `tests/skip_equivalence.rs`:
//!
//! 1. **Structural lockstep** — the bank's shared bucket-boundary skeleton
//!    must equal an independent engine's at *every* tick (boundaries are a
//!    deterministic function of the stream; randomness only picks sample
//!    slots).
//! 2. **Distributional equality** — per-lane marginals and cross-lane
//!    joints at the same seed chi-square thresholds on both backends.
//! 3. **Draw complexity** — `CountingRng` bounds: fused ingestion costs
//!    amortized `O(k/32)` RNG words per element (packed merge-coin bits),
//!    against the `Θ(k)` words the PR-3 engines paid before coin packing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swsample::core::rng::CountingRng;
use swsample::core::ts::{TsSamplerWor, TsSamplerWr};
use swsample::core::WindowSampler;
use swsample::stats::chi_square_uniform_test;

/// Layer 1 (WR): fused bank vs independent engine, byte-identical bucket
/// boundaries and straddle state at every tick of a bursty schedule, even
/// though the two consume entirely different randomness.
#[test]
fn wr_boundaries_lockstep_at_every_tick() {
    let mut fused = TsSamplerWr::new(13, 6, SmallRng::seed_from_u64(1));
    let mut indep = TsSamplerWr::independent(13, 6, SmallRng::seed_from_u64(777));
    let mut sched = SmallRng::seed_from_u64(2);
    let mut checked_straddle = 0u32;
    for tick in 0..600u64 {
        fused.advance_time(tick);
        indep.advance_time(tick);
        let burst: Vec<u64> = (0..sched.gen_range(0..5u64))
            .map(|j| tick * 8 + j)
            .collect();
        fused.insert_batch(&burst);
        indep.insert_batch(&burst);
        assert_eq!(fused.boundaries(), indep.boundaries(), "tick {tick}");
        assert_eq!(fused.is_straddling(), indep.is_straddling(), "tick {tick}");
        if fused.is_straddling() {
            checked_straddle += 1;
        }
    }
    assert!(checked_straddle > 100, "schedule never exercised case 2");
}

/// Layer 1 (WOR): the fused bank runs every lane at delay k−1, so its
/// skeleton must track the independent construction's engine k−1 tick for
/// tick.
#[test]
fn wor_boundaries_lockstep_at_every_tick() {
    let k = 5usize;
    let mut fused = TsSamplerWor::new(17, k, SmallRng::seed_from_u64(3));
    let mut indep = TsSamplerWor::independent(17, k, SmallRng::seed_from_u64(999));
    let mut sched = SmallRng::seed_from_u64(4);
    let mut idx = 0u64;
    for tick in 0..600u64 {
        fused.advance_time(tick);
        indep.advance_time(tick);
        for _ in 0..sched.gen_range(0..4u64) {
            fused.insert(idx);
            indep.insert(idx);
            idx += 1;
        }
        assert_eq!(fused.boundaries(), indep.boundaries(), "tick {tick}");
    }
}

/// Layer 2 (WR): every fused lane's marginal is uniform over the active
/// window, at the same chi-square threshold as the independent engines.
#[test]
fn wr_per_lane_marginals_uniform_on_both_backends() {
    let t0 = 12u64;
    let ticks = 30u64;
    let k = 3usize;
    let trials = 20_000u64;
    for fused in [true, false] {
        let mut counts = vec![vec![0u64; t0 as usize]; k];
        for t in 0..trials {
            let mut s = if fused {
                TsSamplerWr::new(t0, k, SmallRng::seed_from_u64(500_000 + t))
            } else {
                TsSamplerWr::independent(t0, k, SmallRng::seed_from_u64(500_000 + t))
            };
            for tick in 0..ticks {
                s.advance_time(tick);
                s.insert(tick);
            }
            let got = s.sample_k().expect("nonempty");
            for (lane, smp) in got.iter().enumerate() {
                counts[lane][(smp.index() - (ticks - t0)) as usize] += 1;
            }
        }
        for (lane, lane_counts) in counts.iter().enumerate() {
            let out = chi_square_uniform_test(lane_counts);
            assert!(
                out.p_value > 1e-4,
                "lane {lane} (fused={fused}) not uniform: p = {}",
                out.p_value
            );
        }
    }
}

/// Layer 2 (WR): cross-lane joint uniformity — the packed coin bits must
/// leave lanes mutually independent: the (lane 0, lane 1) pair over a
/// 4-element window is product-uniform on both backends.
#[test]
fn wr_cross_lane_joint_uniform_on_both_backends() {
    let t0 = 4u64;
    let ticks = 14u64;
    let trials = 40_000u64;
    for fused in [true, false] {
        let mut counts = vec![0u64; (t0 * t0) as usize];
        for t in 0..trials {
            let mut s = if fused {
                TsSamplerWr::new(t0, 2, SmallRng::seed_from_u64(800_000 + t))
            } else {
                TsSamplerWr::independent(t0, 2, SmallRng::seed_from_u64(800_000 + t))
            };
            for tick in 0..ticks {
                s.advance_time(tick);
                s.insert(tick);
            }
            let got = s.sample_k().expect("nonempty");
            let a = got[0].index() - (ticks - t0);
            let b = got[1].index() - (ticks - t0);
            counts[(a * t0 + b) as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "joint (fused={fused}) not product-uniform: p = {}",
            out.p_value
        );
    }
}

/// Layer 2 (WOR): inclusion marginals on both backends at the same
/// threshold — the delay-(k−1) bank + query-time lane extension must
/// reproduce the delayed-engine ladder's law exactly.
#[test]
fn wor_marginals_uniform_on_both_backends() {
    let (t0, k, ticks) = (8u64, 3usize, 30u64);
    let trials = 25_000u64;
    for fused in [true, false] {
        let mut counts = vec![0u64; t0 as usize];
        for t in 0..trials {
            let mut s = if fused {
                TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(650_000 + t))
            } else {
                TsSamplerWor::independent(t0, k, SmallRng::seed_from_u64(650_000 + t))
            };
            for tick in 0..ticks {
                s.advance_time(tick);
                s.insert(tick);
            }
            for smp in s.sample_k().expect("nonempty") {
                counts[(smp.index() - (ticks - t0)) as usize] += 1;
            }
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "WOR marginals (fused={fused}) not uniform: p = {}",
            out.p_value
        );
    }
}

/// Layer 2 (WOR): pairwise joint — all unordered pairs over n = 5 active
/// elements equally likely through the fused path.
#[test]
fn wor_pairs_uniform_through_the_fused_path() {
    let (t0, k, ticks) = (5u64, 2usize, 20u64);
    let trials = 30_000u64;
    let n = t0;
    let mut counts = vec![0u64; (n * (n - 1) / 2) as usize];
    for t in 0..trials {
        let mut s = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(950_000 + t));
        for tick in 0..ticks {
            s.advance_time(tick);
            s.insert(tick);
        }
        let out = s.sample_k().expect("nonempty");
        let mut pos: Vec<u64> = out.iter().map(|s| s.index() - (ticks - t0)).collect();
        pos.sort_unstable();
        let (a, b) = (pos[0], pos[1]);
        let rank = a * n - a * (a + 1) / 2 + (b - a - 1);
        counts[rank as usize] += 1;
    }
    let out = chi_square_uniform_test(&counts);
    assert!(
        out.p_value > 1e-4,
        "fused WOR pairs not uniform: p = {}",
        out.p_value
    );
}

/// Layer 3: fused ingestion draws — at k = 64 the bank must stay under
/// k/32 + 1 = 3 RNG words per element (2k merge-coin bits per amortized
/// merge, packed 64 per word), where the pre-PR4 engines paid ~2k = 128.
#[test]
fn fused_ingestion_draws_are_amortized_k_over_32() {
    let k = 64usize;
    let t0 = 25_000u64; // ≈ n = 100k active at 4 arrivals/tick
    let elements = 100_000u64;
    fn drive<S: WindowSampler<u64>>(s: &mut S, elements: u64) {
        let mut i = 0u64;
        let mut tick = 0u64;
        let mut buf = Vec::with_capacity(4);
        while i < elements {
            buf.clear();
            buf.extend(i..(i + 4).min(elements));
            tick += 1;
            s.advance_and_insert(tick, &buf);
            i += buf.len() as u64;
        }
    }
    let bound = k as f64 / 32.0 + 1.0;

    let rng = CountingRng::new(SmallRng::seed_from_u64(21));
    let counter = rng.counter();
    let mut wr = TsSamplerWr::new(t0, k, rng);
    drive(&mut wr, elements);
    drop(wr);
    let per_elem = counter.words() as f64 / elements as f64;
    assert!(
        per_elem <= bound,
        "wr: {per_elem} draws/element above {bound}"
    );

    let rng = CountingRng::new(SmallRng::seed_from_u64(22));
    let counter = rng.counter();
    let mut wor = TsSamplerWor::new(t0, k, rng);
    drive(&mut wor, elements);
    drop(wor);
    let per_elem = counter.words() as f64 / elements as f64;
    assert!(
        per_elem <= bound,
        "wor: {per_elem} draws/element above {bound}"
    );
}

/// The committed perf baseline must record the fused-bank acceptance
/// numbers: `ts_wr_speedup_k64` and `ts_wor_speedup_k64` of at least 10×
/// over the retained independent construction (the PR target is ≥ 20×;
/// 10 here is the hand-edit/staleness guard, mirroring the seq test's
/// margin below its measured ≈300×), and the k/32 + 1 draw bound on
/// every fused ts row.
#[test]
fn committed_baseline_records_ts_bank_acceptance() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_throughput.json");
    let body = std::fs::read_to_string(path).expect("BENCH_throughput.json is committed");
    swsample_bench::json::validate(&body).expect("committed artifact parses");
    for field in ["ts_wr_speedup_k64", "ts_wor_speedup_k64"] {
        let key = format!("\"{field}\":");
        let at = body
            .find(&key)
            .unwrap_or_else(|| panic!("{field} field present"));
        let rest = &body[at + key.len()..];
        let end = rest.find([',', '\n', '}']).expect("number terminated");
        let speedup: f64 = rest[..end].trim().parse().expect("numeric speedup");
        assert!(
            speedup >= 10.0,
            "committed {field} {speedup}x below the 10x guard"
        );
    }
    // Every fused ts row obeys draws_per_element ≤ k/32 + 1.
    for line in body.lines() {
        let fused_ts =
            line.contains("\"sampler\": \"ts_wr\"") || line.contains("\"sampler\": \"ts_wor\"");
        if !fused_ts {
            continue;
        }
        let grab = |field: &str| -> f64 {
            let key = format!("\"{field}\": ");
            let at = line
                .find(&key)
                .unwrap_or_else(|| panic!("{field} in {line}"));
            let rest = &line[at + key.len()..];
            let end = rest.find([',', '}']).expect("terminated");
            rest[..end].trim().parse().expect("numeric")
        };
        let (k, dpe) = (grab("k"), grab("draws_per_element"));
        assert!(
            dpe <= k / 32.0 + 1.0,
            "committed row violates the draw bound: {line}"
        );
    }
}
