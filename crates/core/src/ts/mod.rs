//! Timestamp-based windows — §3 and §4 of the paper.
//!
//! An element with timestamp `T(p)` is active at time `t` iff
//! `t − T(p) < t₀`. The number of active elements `n = n(t)` is *unknown*
//! (it cannot even be approximated in sublinear space, Datar et al.), which
//! is what makes this model hard: a uniform sample over a domain of unknown
//! size must be produced.
//!
//! The machinery, bottom-up:
//!
//! * `bucket` — bucket structures `BS(x, y)`: index range, first-element
//!   timestamp, and *two* independent uniform samples `R`, `Q` (Q feeds the
//!   implicit-event generator).
//! * `covering` — the covering decomposition `ζ(a, b)` (Definition 3.1)
//!   and its `Incr` maintenance operator (Lemma 3.4): an `O(log)`-length
//!   list of dyadic buckets covering a stream suffix.
//! * `engine` — the single-sample engine: state maintenance per Lemma 3.5
//!   (case 1 "all covered elements active" / case 2 "one straddling
//!   bucket"), plus the implicit-event construction of Lemmas 3.6–3.8 that
//!   samples uniformly although the window size is unknown.
//! * `bank` — [`TsEngineBank`]: `k` single-sample engines *fused* over one
//!   shared covering decomposition with per-lane sample slots.
//! * `wr` — [`TsSamplerWr`]: `k` independent samples (Theorem 3.9 /
//!   `O(k log n)` for general `k`), on the fused bank.
//! * `wor` — [`TsSamplerWor`]: the §4 black-box reduction from sampling
//!   without replacement to `k` delayed with-replacement samplers
//!   (Lemmas 4.1–4.3, Theorem 4.4), on one bank at uniform delay `k−1`
//!   with query-time lane extension.
//!
//! # Design note: why boundary sharing preserves Theorem 3.9 independence
//!
//! Theorem 3.9's `k` engines are independent because they share no
//! randomness. Fusing them into one bank looks like it couples them — but
//! the coupling is confined to state that was never random. Split an
//! engine's state into two parts:
//!
//! 1. **The skeleton**: bucket boundaries `(a, b)`, first-timestamps
//!    `T(p_a)`, and the Lemma 3.5 case tag. Every transition touching the
//!    skeleton — the `Incr` walk's merge-or-keep decision (a `⌊log⌋`
//!    comparison on index ranges, Lemma 3.4), `split_straddle`, head
//!    discard, total expiry — is a *deterministic* function of the arrival
//!    indices, their timestamps, and the clock. `k` engines fed the same
//!    stream therefore hold byte-identical skeletons forever; storing the
//!    skeleton once is pure de-duplication, with no distributional
//!    content.
//! 2. **The sample slots** `R`, `Q` per bucket: the only randomized state.
//!    The bank keeps these per-lane and resolves every merge with per-lane
//!    fair coins — bit positions of shared `next_u64` words, no bit read
//!    by two lanes — so lane `i`'s slot process is exactly the solo
//!    engine's Markov chain (marginal correctness), and distinct lanes'
//!    coins are mutually independent (joint correctness: the `k` samples
//!    are independent, as Theorem 3.9 requires). Query-time draws (bucket
//!    selection, the Lemma 3.6–3.8 implicit events) were always per-query
//!    and remain per-lane.
//!
//! The equivalence is audited, not just argued: the per-engine
//! construction is retained ([`TsSamplerWr::independent`],
//! [`TsSamplerWor::independent`]) and `tests/ts_bank_equivalence.rs`
//! asserts lockstep skeleton equality at every tick plus per-lane and
//! cross-lane chi-square agreement at the seed thresholds.

pub mod bank;
pub(crate) mod bucket;
pub(crate) mod covering;
pub(crate) mod engine;
mod wor;
mod wr;

pub use bank::TsEngineBank;
pub use engine::TsEngine;
pub use wor::TsSamplerWor;
pub use wr::TsSamplerWr;
