//! Pearson chi-square goodness-of-fit testing.
//!
//! The uniformity claims of the paper's samplers (Theorems 2.1, 2.2, 3.9,
//! 4.4) are verified empirically by sampling many independent replicas and
//! comparing observed category counts against expected counts with a
//! chi-square test. The p-value comes from the chi-square CDF, i.e. the
//! regularized incomplete gamma function from [`crate::gamma`].

use crate::gamma::reg_gamma_upper;

/// Result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareOutcome {
    /// The Pearson X² statistic.
    pub statistic: f64,
    /// Degrees of freedom used for the p-value.
    pub dof: usize,
    /// Upper-tail probability `P(X² >= statistic)`.
    pub p_value: f64,
}

impl ChiSquareOutcome {
    /// `true` when the test does *not* reject uniformity at level `alpha`.
    pub fn accepts(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Pearson X² statistic for observed counts vs. expected counts.
///
/// # Panics
/// Panics if lengths differ, if any expected count is non-positive, or if
/// the slices are empty.
pub fn chi_square_statistic(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        expected.len(),
        "chi_square: length mismatch"
    );
    assert!(!observed.is_empty(), "chi_square: empty input");
    let mut stat = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        assert!(
            e > 0.0,
            "chi_square: expected count must be positive, got {e}"
        );
        let d = o as f64 - e;
        stat += d * d / e;
    }
    stat
}

/// Upper-tail p-value of the chi-square distribution with `dof` degrees of
/// freedom at `statistic`.
pub fn chi_square_pvalue(statistic: f64, dof: usize) -> f64 {
    assert!(dof > 0, "chi_square_pvalue: zero degrees of freedom");
    assert!(statistic >= 0.0, "chi_square_pvalue: negative statistic");
    reg_gamma_upper(dof as f64 / 2.0, statistic / 2.0)
}

/// Full goodness-of-fit test of `observed` against uniform expected counts.
///
/// `observed[i]` is the number of trials that landed in category `i`; the
/// expected count for every category is `total / categories`.
pub fn chi_square_uniform_test(observed: &[u64]) -> ChiSquareOutcome {
    let k = observed.len();
    assert!(
        k >= 2,
        "chi_square_uniform_test: need at least two categories"
    );
    let total: u64 = observed.iter().sum();
    assert!(total > 0, "chi_square_uniform_test: no observations");
    let expected = vec![total as f64 / k as f64; k];
    let statistic = chi_square_statistic(observed, &expected);
    let dof = k - 1;
    ChiSquareOutcome {
        statistic,
        dof,
        p_value: chi_square_pvalue(statistic, dof),
    }
}

/// Goodness-of-fit test against arbitrary expected *probabilities*
/// (they are scaled by the observed total internally).
pub fn chi_square_test(observed: &[u64], probabilities: &[f64]) -> ChiSquareOutcome {
    assert_eq!(observed.len(), probabilities.len());
    let total: u64 = observed.iter().sum();
    assert!(total > 0, "chi_square_test: no observations");
    let psum: f64 = probabilities.iter().sum();
    assert!(
        (psum - 1.0).abs() < 1e-9,
        "chi_square_test: probabilities sum to {psum}, not 1"
    );
    let expected: Vec<f64> = probabilities.iter().map(|p| p * total as f64).collect();
    let statistic = chi_square_statistic(observed, &expected);
    let dof = observed.len() - 1;
    ChiSquareOutcome {
        statistic,
        dof,
        p_value: chi_square_pvalue(statistic, dof),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_uniform_counts_have_pvalue_one() {
        let out = chi_square_uniform_test(&[100, 100, 100, 100]);
        assert_eq!(out.statistic, 0.0);
        assert!((out.p_value - 1.0).abs() < 1e-12);
        assert!(out.accepts(0.05));
    }

    #[test]
    fn extreme_skew_rejects() {
        let out = chi_square_uniform_test(&[1000, 0, 0, 0]);
        assert!(out.p_value < 1e-10);
        assert!(!out.accepts(0.001));
    }

    #[test]
    fn statistic_matches_hand_computation() {
        // observed [10, 20], expected [15, 15]: X² = 25/15 + 25/15 = 10/3
        let s = chi_square_statistic(&[10, 20], &[15.0, 15.0]);
        assert!((s - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pvalue_reference() {
        // SciPy: chi2.sf(3.84146, 1) = 0.05000 (the classic 5% critical value)
        let p = chi_square_pvalue(3.841_458_820_694_124, 1);
        assert!((p - 0.05).abs() < 1e-9, "p = {p}");
        // chi2.sf(16.919, 9) ~= 0.050
        let p = chi_square_pvalue(16.919, 9);
        assert!((p - 0.05).abs() < 1e-4, "p = {p}");
    }

    #[test]
    fn arbitrary_probability_test() {
        // 3:1 expected ratio, observed exactly 3:1 -> statistic 0.
        let out = chi_square_test(&[300, 100], &[0.75, 0.25]);
        assert!(out.statistic < 1e-12);
    }

    #[test]
    fn moderate_fluctuation_accepted() {
        // Multinomial-ish counts close to uniform should pass easily.
        let out = chi_square_uniform_test(&[98, 105, 102, 95, 100]);
        assert!(out.accepts(0.05), "p = {}", out.p_value);
    }

    #[test]
    #[should_panic]
    fn rejects_single_category() {
        chi_square_uniform_test(&[5]);
    }

    #[test]
    #[should_panic]
    fn rejects_probabilities_not_summing_to_one() {
        chi_square_test(&[1, 2], &[0.5, 0.4]);
    }
}
