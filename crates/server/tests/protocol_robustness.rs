//! Adversarial-bytes robustness for the wire protocol: no truncation,
//! bitflip, overlong varint, or oversized length prefix may ever panic
//! or hang the decoder — every failure is a typed [`ProtocolError`]
//! carrying the byte offset of the offending frame.

use proptest::prelude::*;
use swsample_durable::frame::{write_frame, FRAME_HEADER_BYTES};
use swsample_server::protocol::{
    read_client_msg, read_server_msg, ClientMsg, ErrorCode, ReadOutcome, ServerMsg, SubscribeKind,
    MAX_MESSAGE_BYTES, PROTOCOL_VERSION,
};
use swsample_server::stats::StatsSnapshot;

/// One representative of every client message.
fn client_corpus() -> Vec<ClientMsg> {
    vec![
        ClientMsg::Hello {
            version: PROTOCOL_VERSION,
            name: "robustness".into(),
            session: 0x0043_4841_4f53_0001,
        },
        ClientMsg::Ingest {
            seq: 3,
            batch: (0..40u64).map(|i| (i % 7, i / 8, i * 13)).collect(),
        },
        ClientMsg::Query { key: 99 },
        ClientMsg::Subscribe {
            kind: SubscribeKind::Aggregate,
            key: 5,
            every_ticks: 2,
            threshold: 0,
        },
        ClientMsg::Stats,
        ClientMsg::Bye,
        ClientMsg::Shutdown,
    ]
}

fn server_corpus() -> Vec<ServerMsg> {
    vec![
        ServerMsg::HelloAck {
            version: PROTOCOL_VERSION,
            conn_id: 4,
            template: "--window seq --n 32 --mode wr --algo paper --k 3 --seed 11".into(),
        },
        ServerMsg::IngestOk { seq: 3, events: 40 },
        ServerMsg::Busy {
            seq: 4,
            queued_events: 1 << 18,
        },
        ServerMsg::Samples {
            key: 99,
            samples: Some(vec![(1, 2, 3), (4, 5, 6), (u64::MAX, 0, u64::MAX)]),
        },
        ServerMsg::SubAck { id: 1 },
        ServerMsg::Push {
            id: 1,
            tick: 10,
            key: 5,
            count: 3,
            sum: 77,
        },
        ServerMsg::StatsReply(StatsSnapshot::default()),
        ServerMsg::Error {
            code: ErrorCode::Malformed,
            offset: 123,
            detail: "x".into(),
        },
        ServerMsg::Bye,
    ]
}

fn framed(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, payload).expect("vec write");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary garbage on the wire: the reader always returns a typed
    /// outcome, never panics.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut offset = 0u64;
        let mut r = &bytes[..];
        let _ = read_client_msg(&mut r, &mut offset).expect("in-memory read");
        let mut offset = 0u64;
        let mut r = &bytes[..];
        let _ = read_server_msg(&mut r, &mut offset).expect("in-memory read");
    }

    /// Arbitrary garbage as a *frame payload* (so it reaches the
    /// message decoder, not just the CRC check): typed error, no panic.
    #[test]
    fn random_payloads_decode_to_typed_errors(
        payload in proptest::collection::vec(any::<u8>(), 0..192),
    ) {
        if let Err(e) = ClientMsg::decode(&payload) {
            prop_assert!(matches!(e.code, ErrorCode::Malformed | ErrorCode::UnknownOpcode));
        }
        if let Err(e) = ServerMsg::decode(&payload) {
            prop_assert!(matches!(e.code, ErrorCode::Malformed | ErrorCode::UnknownOpcode));
        }
    }

    /// Truncating a valid frame anywhere yields `TornFrame` at the
    /// frame's offset (or a clean EOF at cut 0).
    #[test]
    fn truncation_is_torn_at_the_frame_offset(which in 0usize..7, frac in 0.0f64..1.0) {
        let msg = &client_corpus()[which];
        let bytes = framed(&msg.encode());
        let cut = 1 + ((bytes.len() - 2) as f64 * frac) as usize; // 1..len-1
        let mut offset = 0u64;
        let mut r = &bytes[..cut];
        match read_client_msg(&mut r, &mut offset).expect("in-memory read") {
            ReadOutcome::Bad(e) => {
                prop_assert_eq!(e.code, ErrorCode::TornFrame);
                prop_assert_eq!(e.offset, 0);
            }
            other => prop_assert!(false, "cut {cut}: expected torn, got {other:?}"),
        }
    }

    /// Flipping any bit of a framed message is detected — as torn
    /// framing (CRC/length damage) or a typed decode error, never an
    /// accepted different message and never a panic.
    #[test]
    fn bitflips_never_pass(which in 0usize..9, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let msg = &server_corpus()[which];
        let mut bytes = framed(&msg.encode());
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        let mut offset = 0u64;
        let mut r = &bytes[..];
        match read_server_msg(&mut r, &mut offset).expect("in-memory read") {
            ReadOutcome::Bad(e) => prop_assert_eq!(e.offset, 0),
            ReadOutcome::Eof => prop_assert!(false, "flip read as eof"),
            ReadOutcome::Msg(got) => {
                // The only byte a flip can change while keeping the CRC
                // valid is... none. Reaching here means the frame
                // re-validated, which the CRC forbids.
                prop_assert!(false, "flip at byte {pos} bit {bit} accepted: {got:?}");
            }
        }
    }

    /// A second frame's corruption reports the second frame's offset.
    #[test]
    fn offsets_point_at_the_bad_frame(bit in 0u8..8, tail in 1usize..12) {
        let first = framed(&ClientMsg::Query { key: 7 }.encode());
        let second = framed(&ClientMsg::Stats.encode());
        let mut bytes = first.clone();
        bytes.extend_from_slice(&second);
        let pos = first.len() + (tail % second.len());
        bytes[pos] ^= 1 << bit;
        let mut offset = 0u64;
        let mut r = &bytes[..];
        match read_client_msg(&mut r, &mut offset).expect("io") {
            ReadOutcome::Msg(ClientMsg::Query { key: 7 }) => {}
            other => {
                prop_assert!(false, "first frame should survive, got {other:?}");
            }
        }
        match read_client_msg(&mut r, &mut offset).expect("io") {
            ReadOutcome::Bad(e) => prop_assert_eq!(e.offset, first.len() as u64),
            other => prop_assert!(false, "expected bad second frame, got {other:?}"),
        }
    }
}

/// Overlong LEB128 varints — continuation bytes running past what a
/// u64 can hold — are rejected as malformed, not silently wrapped.
#[test]
fn overlong_varints_are_malformed() {
    // QUERY with key encoded as ten continuation bytes: the tenth byte
    // would need bits beyond 64, so the decoder must bail.
    let mut payload = vec![0x03u8]; // OP_QUERY
    payload.extend_from_slice(&[0x80; 10]);
    payload.push(0x00);
    let err = ClientMsg::decode(&payload).expect_err("overlong varint");
    assert_eq!(err.code, ErrorCode::Malformed);
    assert!(err.detail.contains("varint"), "detail: {}", err.detail);

    // An eleven-byte run with small continuation bits is still overlong
    // even though no individual byte overflows.
    let mut payload = vec![0x03u8];
    payload.extend_from_slice(&[
        0x81, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x81, 0x00,
    ]);
    let err = ClientMsg::decode(&payload).expect_err("11-byte varint");
    assert_eq!(err.code, ErrorCode::Malformed);
}

/// A length prefix beyond the message cap is torn framing — rejected
/// before any allocation, with the frame offset attached.
#[test]
fn oversized_length_prefix_is_torn_without_allocation() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(MAX_MESSAGE_BYTES + 1).to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 64]); // far fewer bytes than claimed
    let mut offset = 0u64;
    let mut r = &bytes[..];
    match read_client_msg(&mut r, &mut offset).expect("io") {
        ReadOutcome::Bad(e) => {
            assert_eq!(e.code, ErrorCode::TornFrame);
            assert_eq!(e.offset, 0);
            assert!(e.detail.contains("implausible"), "detail: {}", e.detail);
        }
        other => panic!("expected torn, got {other:?}"),
    }
}

/// Every corpus message survives a frame round-trip through the
/// offset-tracking reader.
#[test]
fn corpus_round_trips_with_offsets() {
    let mut bytes = Vec::new();
    for msg in client_corpus() {
        write_frame(&mut bytes, &msg.encode()).expect("vec write");
    }
    let total = bytes.len() as u64;
    let mut offset = 0u64;
    let mut r = &bytes[..];
    for expect in client_corpus() {
        match read_client_msg(&mut r, &mut offset).expect("io") {
            ReadOutcome::Msg(got) => assert_eq!(got, expect),
            other => panic!("expected {expect:?}, got {other:?}"),
        }
    }
    assert_eq!(offset, total);
    assert!(matches!(
        read_client_msg(&mut r, &mut offset).expect("io"),
        ReadOutcome::Eof
    ));
    assert_eq!(FRAME_HEADER_BYTES, 8);
}
