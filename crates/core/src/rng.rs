//! Instrumented randomness: a transparent [`RngCore`] wrapper that counts
//! how many random words a sampler consumes.
//!
//! The skip-ahead ingestion paths (see [`crate::skip`]) claim `O(log n)`
//! RNG draws per window instead of `Θ(n)`; [`CountingRng`] is how the
//! tests and the `bench_throughput` suite turn that claim into a measured,
//! machine-checkable number (`draws_per_element` in
//! `BENCH_throughput.json`).

use rand::RngCore;
use std::cell::Cell;
use std::rc::Rc;

/// Counts every `next_u32`/`next_u64` call made through it.
///
/// The count is in *RNG words requested*, not bits: one `next_u32` and one
/// `next_u64` each cost 1. That is the right unit for xoshiro-style
/// generators, where both cost one state advance.
///
/// The counter lives behind a shared handle ([`WordCounter`], from
/// [`counter`]), so a `CountingRng` can be moved *into* a sampler by
/// value — as every `'static`-bounded constructor requires — and the
/// caller can still read the tally afterwards without getting the
/// generator back. Cloning a `CountingRng` clones the generator but
/// **shares** the counter: both halves tally into the same cell.
///
/// [`counter`]: CountingRng::counter
#[derive(Debug, Clone)]
pub struct CountingRng<R> {
    inner: R,
    words: Rc<Cell<u64>>,
}

/// A read-side handle onto a [`CountingRng`]'s draw tally, alive after
/// the generator itself moved into a sampler.
#[derive(Debug, Clone)]
pub struct WordCounter(Rc<Cell<u64>>);

impl WordCounter {
    /// Random words drawn through the associated generator so far.
    pub fn words(&self) -> u64 {
        self.0.get()
    }
}

impl<R> CountingRng<R> {
    /// Wrap `inner`, starting the counter at zero.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            words: Rc::new(Cell::new(0)),
        }
    }

    /// Random words drawn since construction (or the last [`reset`]).
    ///
    /// [`reset`]: CountingRng::reset
    pub fn words(&self) -> u64 {
        self.words.get()
    }

    /// A shared handle onto the counter; keep it when moving the
    /// generator into a sampler.
    pub fn counter(&self) -> WordCounter {
        WordCounter(Rc::clone(&self.words))
    }

    /// Zero the counter.
    pub fn reset(&mut self) {
        self.words.set(0);
    }

    /// Unwrap the inner generator.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: RngCore> RngCore for CountingRng<R> {
    fn next_u32(&mut self) -> u32 {
        self.words.set(self.words.get() + 1);
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.words.set(self.words.get() + 1);
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn counts_words_and_resets() {
        let mut rng = CountingRng::new(SmallRng::seed_from_u64(1));
        assert_eq!(rng.words(), 0);
        let _ = rng.next_u64();
        let _ = rng.next_u32();
        assert_eq!(rng.words(), 2);
        rng.reset();
        assert_eq!(rng.words(), 0);
    }

    #[test]
    fn stream_is_unaltered() {
        let mut plain = SmallRng::seed_from_u64(7);
        let mut counted = CountingRng::new(SmallRng::seed_from_u64(7));
        for _ in 0..50 {
            assert_eq!(plain.next_u64(), counted.next_u64());
        }
    }

    #[test]
    fn counter_handle_survives_the_move() {
        let rng = CountingRng::new(SmallRng::seed_from_u64(3));
        let counter = rng.counter();
        let mut moved = rng; // stand-in for a sampler taking it by value
        let _ = moved.next_u64();
        let _ = moved.next_u32();
        drop(moved);
        assert_eq!(counter.words(), 2);
    }

    #[test]
    fn gen_range_draws_at_least_one_word() {
        let mut rng = CountingRng::new(SmallRng::seed_from_u64(2));
        for _ in 0..100 {
            let _ = rng.gen_range(0..10u64);
        }
        assert!(rng.words() >= 100);
    }
}
