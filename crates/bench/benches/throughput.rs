//! Criterion bench for experiment E7: head-to-head per-element cost of the
//! paper's samplers against every baseline, at matched parameters
//! (sequence: n = 4096, k = 8; timestamp: t0 = 1024, 4 arrivals/tick).
//!
//! The paper's disadvantage (a) of over-sampling — extra per-element cost —
//! shows up here, as does the price of deterministic bounds (the covering
//! decomposition does more bookkeeping per insert than a priority stack).
//!
//! Two additional groups cover the skip-ahead ingestion work: `e7_ablation`
//! pits the skip paths against their per-arrival reference twins (expect
//! order-of-magnitude gaps that widen with n; the authoritative numbers
//! with exact RNG-draw counts live in `BENCH_throughput.json`, produced by
//! the `bench_throughput` binary), and `e7_batched` measures the chunked
//! `insert_batch` API the CLI and suite ingest through. Set
//! `CRITERION_JSON=path` to capture all of it machine-readably.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use swsample_baselines::{
    ChainSampler, OverSampler, PrioritySampler, PriorityTopK, StreamReservoir, WindowBuffer,
};
use swsample_core::seq::{SeqSamplerWor, SeqSamplerWr};
use swsample_core::ts::{TsSamplerWor, TsSamplerWr};
use swsample_core::WindowSampler;
use swsample_stream::WindowSpec;

const N: u64 = 4096;
const K: usize = 8;
const T0: u64 = 1024;

fn bench_seq_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_seq");
    group.throughput(Throughput::Elements(1));
    macro_rules! seq_case {
        ($name:literal, $sampler:expr) => {
            group.bench_function($name, |b| {
                let mut s = $sampler;
                let mut i = 0u64;
                b.iter(|| {
                    s.insert(black_box(i));
                    i += 1;
                });
            });
        };
    }
    seq_case!(
        "SeqSamplerWr",
        SeqSamplerWr::new(N, K, SmallRng::seed_from_u64(1))
    );
    seq_case!(
        "SeqSamplerWor",
        SeqSamplerWor::new(N, K, SmallRng::seed_from_u64(2))
    );
    seq_case!(
        "ChainSampler",
        ChainSampler::new(N, K, SmallRng::seed_from_u64(3))
    );
    seq_case!(
        "OverSampler_2k",
        OverSampler::new(N, K, 2 * K, SmallRng::seed_from_u64(4))
    );
    seq_case!(
        "WindowBuffer",
        WindowBuffer::new(WindowSpec::Sequence(N), K, SmallRng::seed_from_u64(5))
    );
    seq_case!(
        "StreamReservoir",
        StreamReservoir::new(K, SmallRng::seed_from_u64(6))
    );
    group.finish();
}

fn bench_ts_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ts");
    group.throughput(Throughput::Elements(1));
    macro_rules! ts_case {
        ($name:literal, $sampler:expr) => {
            group.bench_function($name, |b| {
                let mut s = $sampler;
                let mut tick = 0u64;
                let mut i = 0u64;
                b.iter(|| {
                    if i % 4 == 0 {
                        tick += 1;
                        s.advance_time(tick);
                    }
                    s.insert(black_box(i));
                    i += 1;
                });
            });
        };
    }
    ts_case!(
        "TsSamplerWr",
        TsSamplerWr::new(T0, K, SmallRng::seed_from_u64(7))
    );
    ts_case!(
        "TsSamplerWor",
        TsSamplerWor::new(T0, K, SmallRng::seed_from_u64(8))
    );
    ts_case!(
        "PrioritySampler",
        PrioritySampler::new(T0, K, SmallRng::seed_from_u64(9))
    );
    ts_case!(
        "PriorityTopK",
        PriorityTopK::new(T0, K, SmallRng::seed_from_u64(10))
    );
    ts_case!(
        "WindowBuffer",
        WindowBuffer::new(WindowSpec::Timestamp(T0), K, SmallRng::seed_from_u64(11))
    );
    group.finish();
}

fn bench_skip_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ablation");
    group.throughput(Throughput::Elements(1));
    macro_rules! seq_case {
        ($name:literal, $sampler:expr) => {
            group.bench_function($name, |b| {
                let mut s = $sampler;
                let mut i = 0u64;
                b.iter(|| {
                    s.insert(black_box(i));
                    i += 1;
                });
            });
        };
    }
    seq_case!(
        "SeqSamplerWr_skip",
        SeqSamplerWr::new(N, K, SmallRng::seed_from_u64(20))
    );
    seq_case!(
        "SeqSamplerWr_naive",
        SeqSamplerWr::naive(N, K, SmallRng::seed_from_u64(21))
    );
    seq_case!(
        "SeqSamplerWor_skip",
        SeqSamplerWor::new(N, K, SmallRng::seed_from_u64(22))
    );
    seq_case!(
        "SeqSamplerWor_naive",
        SeqSamplerWor::naive(N, K, SmallRng::seed_from_u64(23))
    );
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    const CHUNK: u64 = 1024;
    let mut group = c.benchmark_group("e7_batched");
    group.throughput(Throughput::Elements(CHUNK));
    macro_rules! batch_case {
        ($name:literal, $sampler:expr) => {
            group.bench_function($name, |b| {
                let mut s = $sampler;
                let mut i = 0u64;
                let mut buf: Vec<u64> = Vec::with_capacity(CHUNK as usize);
                b.iter(|| {
                    buf.clear();
                    buf.extend(i..i + CHUNK);
                    s.insert_batch(black_box(&buf));
                    i += CHUNK;
                });
            });
        };
    }
    batch_case!(
        "SeqSamplerWr",
        SeqSamplerWr::new(N, K, SmallRng::seed_from_u64(30))
    );
    batch_case!(
        "SeqSamplerWor",
        SeqSamplerWor::new(N, K, SmallRng::seed_from_u64(31))
    );
    batch_case!(
        "ChainSampler",
        ChainSampler::new(N, K, SmallRng::seed_from_u64(32))
    );
    batch_case!(
        "StreamReservoir",
        StreamReservoir::new(K, SmallRng::seed_from_u64(33))
    );
    batch_case!(
        "WindowBuffer",
        WindowBuffer::new(WindowSpec::Sequence(N), K, SmallRng::seed_from_u64(34))
    );
    // Timestamp side: one advance_and_insert per tick's burst.
    group.bench_function("TsSamplerWr_advance_and_insert", |b| {
        let mut s = TsSamplerWr::new(T0, K, SmallRng::seed_from_u64(35));
        let mut tick = 0u64;
        let mut i = 0u64;
        let mut buf: Vec<u64> = Vec::with_capacity(CHUNK as usize);
        b.iter(|| {
            buf.clear();
            buf.extend(i..i + CHUNK);
            tick += 1;
            s.advance_and_insert(tick, black_box(&buf));
            i += CHUNK;
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_seq_family, bench_ts_family, bench_skip_ablation, bench_batched
}
criterion_main!(benches);
