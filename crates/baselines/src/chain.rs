//! Chain sampling (Babcock, Datar, Motwani — SODA'02) for sequence-based
//! windows.
//!
//! Each of the `k` independent instances maintains the current sample plus a
//! *chain of successors*: when element `i` is adopted as the sample, a
//! successor index is drawn uniformly from the `n` positions after `i`; when
//! that element arrives it is stored and given its own successor, and so on.
//! When the sample expires, the next chain element takes over — so a sample
//! is always available.
//!
//! The catch — the paper's central criticism — is that the chain length is a
//! random variable: `O(1)` expected, `O(log n)` with high probability, but
//! with **no deterministic bound**. Experiment E6 exhibits exactly this:
//! `memory_words()` here has a growing maximum over the stream's life, while
//! the paper's `SeqSamplerWr` has a hard ceiling.

use rand::Rng;
use std::collections::VecDeque;
use swsample_core::{MemoryWords, Sample, WindowSampler};

/// One chain: the current sample at the front, successors behind it.
#[derive(Debug, Clone)]
struct ChainInstance<T> {
    /// `(element, successor index)` pairs in arrival order.
    links: VecDeque<(Sample<T>, u64)>,
}

impl<T: Clone> ChainInstance<T> {
    fn new() -> Self {
        Self {
            links: VecDeque::new(),
        }
    }

    fn insert<R: Rng>(&mut self, rng: &mut R, value: &T, idx: u64, n: u64) {
        let count = idx + 1;
        // Adopt the arrival as the new sample with probability
        // 1/min(count, n+1). During warm-up this is plain reservoir
        // sampling. After warm-up the correct adoption probability is
        // 1/(n+1), not 1/n: expiry promotion already feeds probability
        // 1/n² to every window position (the expiring sample's successor is
        // uniform over the new window), and solving
        //   p + (1−p)/n² = (1−p)(1/n + 1/n²)
        // for uniformity gives p = 1/(n+1). (With 1/n the newest elements
        // are over-sampled by ≈1/n — the bias is measurable, and the test
        // `uniform_over_window` below catches it.)
        let adopt_denominator = count.min(n + 1);
        if rng.gen_range(0..adopt_denominator) == 0 {
            self.links.clear();
            let succ = idx + 1 + rng.gen_range(0..n);
            self.links
                .push_back((Sample::new(value.clone(), idx, idx), succ));
        } else if self.links.back().is_some_and(|(_, succ)| *succ == idx) {
            // The awaited successor arrived: extend the chain.
            let succ = idx + 1 + rng.gen_range(0..n);
            self.links
                .push_back((Sample::new(value.clone(), idx, idx), succ));
        }
        // Expire from the front; the next link becomes the sample.
        let oldest_active = count.saturating_sub(n);
        while self
            .links
            .front()
            .is_some_and(|(s, _)| s.index() < oldest_active)
        {
            self.links.pop_front();
        }
    }

    fn sample(&self) -> Option<&Sample<T>> {
        self.links.front().map(|(s, _)| s)
    }
}

impl<T> ChainInstance<T> {
    fn words(&self) -> usize {
        // Each link: value + index + ts + successor index.
        self.links.len() * 4
    }
}

/// `k` independent chain samplers over the last `n` arrivals — sampling with
/// replacement, expected `O(k)` but randomized memory.
#[derive(Debug, Clone)]
pub struct ChainSampler<T, R> {
    n: u64,
    count: u64,
    rng: R,
    chains: Vec<ChainInstance<T>>,
}

impl<T: Clone, R: Rng> ChainSampler<T, R> {
    /// Chain sampler for windows of the last `n ≥ 1` arrivals with `k ≥ 1`
    /// independent samples.
    pub fn new(n: u64, k: usize, rng: R) -> Self {
        assert!(n >= 1 && k >= 1);
        Self {
            n,
            count: 0,
            rng,
            chains: (0..k).map(|_| ChainInstance::new()).collect(),
        }
    }

    /// Length of the longest successor chain (the randomized-memory culprit).
    pub fn max_chain_len(&self) -> usize {
        self.chains.iter().map(|c| c.links.len()).max().unwrap_or(0)
    }
}

impl<T, R> MemoryWords for ChainSampler<T, R> {
    fn memory_words(&self) -> usize {
        self.chains.iter().map(ChainInstance::words).sum::<usize>() + 2
    }
}

impl<T: Clone, R: Rng> WindowSampler<T> for ChainSampler<T, R> {
    fn insert(&mut self, value: T) {
        let idx = self.count;
        for c in &mut self.chains {
            c.insert(&mut self.rng, &value, idx, self.n);
        }
        self.count += 1;
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        self.chains[0].sample().cloned()
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        self.chains.iter().map(|c| c.sample().cloned()).collect()
    }

    fn k(&self) -> usize {
        self.chains.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    #[test]
    fn empty_returns_none() {
        let mut s: ChainSampler<u64, _> = ChainSampler::new(10, 2, SmallRng::seed_from_u64(0));
        assert!(s.sample().is_none());
    }

    #[test]
    fn sample_always_in_window() {
        let mut s = ChainSampler::new(9, 3, SmallRng::seed_from_u64(1));
        for i in 0..400u64 {
            s.insert(i);
            for smp in s.sample_k().expect("nonempty") {
                assert!(smp.index() + 9 > i, "expired sample {} at {i}", smp.index());
            }
        }
    }

    #[test]
    fn uniform_over_window() {
        let n = 12u64;
        let stop = 40u64;
        let trials = 25_000u64;
        let mut counts = vec![0u64; n as usize];
        for t in 0..trials {
            let mut s = ChainSampler::new(n, 1, SmallRng::seed_from_u64(10_000 + t));
            for i in 0..stop {
                s.insert(i);
            }
            counts[(s.sample().expect("nonempty").index() - (stop - n)) as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "chain sampling not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn chain_length_fluctuates() {
        // The chain is a random variable: over a long stream it must exceed
        // 2 at some point (randomized bound) for window 64.
        let mut s = ChainSampler::new(64, 1, SmallRng::seed_from_u64(5));
        let mut max_len = 0;
        for i in 0..20_000u64 {
            s.insert(i);
            max_len = max_len.max(s.max_chain_len());
        }
        assert!(max_len > 2, "chain never grew: {max_len}");
    }
}
