//! The server runtime: acceptor, per-connection reader/writer threads,
//! the bounded central ingest queue, and the continuous-query
//! scheduler.
//!
//! Threading model (all `std`, no async runtime):
//!
//! * **Acceptor** — a non-blocking `accept` poll loop; each accepted
//!   socket gets a registry entry, a reader thread, and a writer
//!   thread, each wrapped in `catch_unwind` so one connection's panic
//!   never takes the server down (the `WorkStealPool` isolation
//!   idiom).
//! * **Readers** decode frames and either answer directly (`QUERY`,
//!   `STATS`, `SUBSCRIBE`) or push the batch onto the **bounded ingest
//!   queue**. When `queued events + incoming > queue_max_events` the
//!   batch is rejected with `BUSY` instead of buffered — backpressure
//!   is explicit, the queue's high-watermark can never pass its bound,
//!   and nothing is silently dropped (the client retries).
//! * **The ingest loop** drains the queue into
//!   [`MultiStreamEngine::ingest_parallel`] (or through
//!   [`DurableEngine::ingest`] when a WAL directory is configured) and
//!   acks each batch back to its connection. Because every
//!   connection's batches enter the FIFO queue in connection order,
//!   each key's event subsequence is applied in order — the engine's
//!   determinism contract extends across the network boundary.
//! * **The scheduler** ticks on a fixed cadence, evaluates due standing
//!   queries against a snapshot-consistent
//!   [`MultiStreamEngine::sample_k_many`] pass, and pushes results to
//!   subscribers through per-connection drop-oldest rings: replies are
//!   never dropped, pushes to a slow subscriber are (oldest first,
//!   counted and reported in `STATS`), and ingestion never blocks on a
//!   slow consumer.
//!
//! Shutdown (API call or the `SHUTDOWN` opcode) is graceful: stop
//! accepting, unblock readers, drain the ingest queue fully, fsync +
//! final-snapshot the WAL, then flush and close every connection.
//!
//! Hardening against misbehaving peers and flaky infrastructure:
//!
//! * **Deadlines** — per-connection read/write socket timeouts. A
//!   read-deadline wakeup at a frame boundary is an idle poll (the
//!   scheduler reaps truly idle connections on its ticks); a wakeup
//!   *mid-frame* means a stalled peer, which is dropped and counted.
//! * **Admission** — at the `--max-conns` cap the acceptor answers
//!   with a single typed `OVERLOAD` error frame and closes.
//! * **Slow consumers** — a subscriber whose ring has dropped more
//!   than `slow_consumer_budget` pushes is disconnected rather than
//!   allowed to soak the scheduler forever.
//! * **Exactly-once under retry** — a client that reconnects after a
//!   lost ack resends its batch under the same `HELLO` session id; the
//!   ingest loop dedupes on `(session, seq)` at apply time, so the
//!   retry is acked without double-applying.
//! * **Deterministic chaos** — a seeded [`FaultSchedule`]
//!   (`SWSAMPLE_FAULTS`) injects connection drops, read/write stalls,
//!   and wire byte-flips at the reader/writer layers, and transient
//!   WAL errors inside the durable engine, replayably.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufRead as _, BufReader, BufWriter, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use swsample_core::fault::{FaultInjector, FaultSchedule, FaultSite};
use swsample_core::{FleetBackend, MemoryWords, SamplerSpec};
use swsample_durable::engine::Event;
use swsample_durable::frame::write_frame;
use swsample_durable::wal::DEFAULT_SEGMENT_BYTES;
use swsample_durable::{DurableEngine, DurableOptions, ResumeOverrides};
use swsample_stream::MultiStreamEngine;

use crate::protocol::{
    read_client_msg, ClientMsg, ErrorCode, ProtocolError, ReadOutcome, ServerMsg, SubscribeKind,
    PROTOCOL_VERSION,
};
use crate::stats::{ConnStats, EngineStats, GlobalStats, StatsSnapshot};

/// Everything a [`Server`] needs to start. Build one with
/// [`ServerConfig::new`] and override fields as needed.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// The per-key sampler template.
    pub template: SamplerSpec,
    /// Fleet shard count.
    pub shards: usize,
    /// Ingest worker threads.
    pub threads: usize,
    /// Fleet backend.
    pub backend: FleetBackend,
    /// When set, wrap the fleet in a [`DurableEngine`] rooted here
    /// (created fresh, or resumed if the directory already holds a
    /// snapshot).
    pub wal_dir: Option<PathBuf>,
    /// Auto-snapshot cadence for the durable fleet.
    pub snapshot_every: Option<u64>,
    /// WAL segment-roll threshold.
    pub segment_bytes: u64,
    /// Bound on events waiting in the central ingest queue; the
    /// backpressure watermark.
    pub queue_max_events: usize,
    /// Per-connection outbound ring capacity (frames). Pushes beyond it
    /// drop oldest-push-first; replies are never dropped.
    pub ring_capacity: usize,
    /// Scheduler tick interval for continuous queries.
    pub tick: Duration,
    /// Test knob: sleep this long per drained batch, simulating a slow
    /// ingest loop to force backpressure.
    pub drain_delay: Duration,
    /// Socket read deadline. A peer that stalls *mid-frame* past it is
    /// dropped (counted in `deadline_drops`); at a frame boundary the
    /// wakeup is just an idle poll. `Duration::ZERO` disables.
    pub read_deadline: Duration,
    /// Socket write deadline: a peer that blocks our writer past it is
    /// dropped (counted in `deadline_drops`). `Duration::ZERO` disables.
    pub write_deadline: Duration,
    /// Connections with no traffic in either direction for this long
    /// are reaped on a scheduler tick. `Duration::ZERO` disables.
    pub idle_timeout: Duration,
    /// Open-connection cap; the acceptor refuses the excess with a
    /// typed `OVERLOAD` error frame.
    pub max_conns: usize,
    /// Disconnect a subscriber after its ring has dropped more than
    /// this many pushes. 0 disables.
    pub slow_consumer_budget: u64,
    /// Seeded network-fault schedule (drops, stalls, flips); also
    /// forwarded to the durable engine for transient WAL faults.
    /// Empty (the default) injects nothing.
    pub faults: FaultSchedule,
}

impl ServerConfig {
    /// Defaults for everything but the template: ephemeral loopback
    /// port, 16 shards, 1 thread, auto backend, no WAL, 256 Ki-event
    /// queue bound, 1024-frame rings, 100 ms ticks.
    pub fn new(template: SamplerSpec) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            template,
            shards: 16,
            threads: 1,
            backend: FleetBackend::Auto,
            wal_dir: None,
            snapshot_every: None,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            queue_max_events: 262_144,
            ring_capacity: 1024,
            tick: Duration::from_millis(100),
            drain_delay: Duration::ZERO,
            read_deadline: Duration::from_secs(30),
            write_deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(300),
            max_conns: 4096,
            slow_consumer_budget: 65_536,
            faults: FaultSchedule::default(),
        }
    }
}

/// The fleet behind the server: plain in-memory, or WAL-backed (boxed —
/// the durable engine carries WAL buffers that would bloat the enum).
enum Fleet {
    Plain(MultiStreamEngine<u64, u64>),
    Durable(Box<Mutex<DurableEngine<u64, u64>>>),
}

impl Fleet {
    fn apply(&self, batch: &[Event<u64, u64>]) -> Result<(), String> {
        match self {
            Fleet::Plain(engine) => engine.try_ingest_parallel(batch).map_err(|e| e.to_string()),
            Fleet::Durable(engine) => {
                let mut guard = engine.lock().expect("durable fleet lock poisoned");
                guard.ingest(batch).map(|_| ()).map_err(|e| e.to_string())
            }
        }
    }

    fn sample_k(&self, key: u64) -> Option<Vec<swsample_core::Sample<u64>>> {
        match self {
            Fleet::Plain(engine) => engine.sample_k(&key),
            Fleet::Durable(engine) => engine
                .lock()
                .expect("durable fleet lock poisoned")
                .engine()
                .sample_k(&key),
        }
    }

    fn sample_k_many(&self, keys: &[u64]) -> Vec<Option<Vec<swsample_core::Sample<u64>>>> {
        match self {
            Fleet::Plain(engine) => engine.sample_k_many(keys),
            Fleet::Durable(engine) => engine
                .lock()
                .expect("durable fleet lock poisoned")
                .engine()
                .sample_k_many(keys),
        }
    }

    fn engine_stats(&self) -> EngineStats {
        let grab = |e: &MultiStreamEngine<u64, u64>| {
            let par = e.parallel_stats();
            EngineStats {
                keys: e.num_keys() as u64,
                shards: e.num_shards() as u64,
                threads: e.num_threads() as u64,
                memory_words: e.memory_words() as u64,
                max_key_words: e.max_key_memory_words() as u64,
                parallel_units: par.units,
                parallel_steals: par.steals,
            }
        };
        match self {
            Fleet::Plain(engine) => grab(engine),
            Fleet::Durable(engine) => {
                grab(engine.lock().expect("durable fleet lock poisoned").engine())
            }
        }
    }

    fn template(&self) -> SamplerSpec {
        match self {
            Fleet::Plain(engine) => engine.template().clone(),
            Fleet::Durable(engine) => engine
                .lock()
                .expect("durable fleet lock poisoned")
                .engine()
                .template()
                .clone(),
        }
    }

    /// Transient WAL faults absorbed by the durable engine's bounded
    /// retry (0 for the plain fleet).
    fn wal_retries(&self) -> u64 {
        match self {
            Fleet::Plain(_) => 0,
            Fleet::Durable(engine) => engine
                .lock()
                .expect("durable fleet lock poisoned")
                .transient_retries(),
        }
    }

    /// Graceful close: fsync + final snapshot for the durable fleet, a
    /// no-op for the plain one.
    fn close(&self) {
        if let Fleet::Durable(engine) = self {
            let mut guard = engine.lock().expect("durable fleet lock poisoned");
            if let Err(e) = guard.close() {
                eprintln!("swsample-server: final snapshot failed: {e}");
            }
        }
    }
}

/// Per-connection outbound frame ring: drop-oldest for droppable
/// entries (continuous-query pushes), never for replies.
struct OutRing {
    cap: usize,
    entries: VecDeque<(bool, Vec<u8>)>,
    drops: u64,
    closed: bool,
}

impl OutRing {
    fn new(cap: usize) -> OutRing {
        OutRing {
            cap: cap.max(1),
            entries: VecDeque::new(),
            drops: 0,
            closed: false,
        }
    }

    /// Queue a frame payload; returns how many pushes were dropped to
    /// make room (0 or 1).
    fn push(&mut self, droppable: bool, payload: Vec<u8>) -> u64 {
        if self.closed {
            return 0;
        }
        if self.entries.len() >= self.cap {
            if let Some(pos) = self.entries.iter().position(|(d, _)| *d) {
                // Oldest droppable frame makes room.
                self.entries.remove(pos);
                self.drops += 1;
                self.entries.push_back((droppable, payload));
                return 1;
            }
            if droppable {
                // Ring full of replies: the incoming push is the one
                // that gives way.
                self.drops += 1;
                return 1;
            }
            // Replies are never dropped; the ring stretches (bounded in
            // practice by the client's own request pipelining).
        }
        self.entries.push_back((droppable, payload));
        0
    }
}

struct Conn {
    id: u64,
    stream: TcpStream,
    out: Mutex<OutRing>,
    out_cv: Condvar,
    events_in: AtomicU64,
    batches_in: AtomicU64,
    busy_rejections: AtomicU64,
    /// The client's `HELLO` session id (0 = no ingest dedup).
    session: AtomicU64,
    /// Milliseconds since server start of the last traffic in either
    /// direction; the scheduler's idle-reap clock.
    last_activity_ms: AtomicU64,
    /// Set once by the reaper so a connection is only ever counted (and
    /// shut down) once, even if teardown races the next tick.
    reaped: AtomicBool,
    /// Server start instant, for stamping `last_activity_ms`.
    started: Instant,
}

impl Conn {
    fn touch(&self) {
        self.last_activity_ms
            .store(self.started.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    fn send(&self, droppable: bool, msg: &ServerMsg) -> u64 {
        self.touch();
        let dropped = {
            let mut ring = self.out.lock().expect("out ring poisoned");
            ring.push(droppable, msg.encode())
        };
        self.out_cv.notify_all();
        dropped
    }

    fn close_ring(&self) {
        self.out.lock().expect("out ring poisoned").closed = true;
        self.out_cv.notify_all();
    }

    fn stats(&self) -> ConnStats {
        ConnStats {
            conn_id: self.id,
            events_in: self.events_in.load(Ordering::Relaxed),
            batches_in: self.batches_in.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            subscriber_drops: self.out.lock().expect("out ring poisoned").drops,
        }
    }
}

struct QueuedBatch {
    conn_id: u64,
    /// The connection's `HELLO` session id at enqueue time (0 = no
    /// dedup).
    session: u64,
    seq: u64,
    events: Vec<Event<u64, u64>>,
}

#[derive(Default)]
struct QueueInner {
    batches: VecDeque<QueuedBatch>,
    pending_events: usize,
    hwm_events: usize,
}

/// The bounded central ingest queue. `push` rejects (→ `BUSY`) instead
/// of exceeding `max_events`, so `hwm_events <= max_events` by
/// construction.
struct IngestQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    max_events: usize,
}

impl IngestQueue {
    fn new(max_events: usize) -> IngestQueue {
        IngestQueue {
            inner: Mutex::new(QueueInner::default()),
            cv: Condvar::new(),
            max_events: max_events.max(1),
        }
    }

    fn push(&self, batch: QueuedBatch) -> Result<(), u64> {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        let n = batch.events.len();
        if inner.pending_events + n > self.max_events {
            return Err(inner.pending_events as u64);
        }
        inner.pending_events += n;
        inner.hwm_events = inner.hwm_events.max(inner.pending_events);
        inner.batches.push_back(batch);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Next batch, blocking. `None` only after shutdown is flagged
    /// *and* the queue has fully drained — no enqueued event is lost.
    fn pop(&self, shutdown: &AtomicBool) -> Option<QueuedBatch> {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        loop {
            if let Some(batch) = inner.batches.pop_front() {
                inner.pending_events -= batch.events.len();
                return Some(batch);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(inner, Duration::from_millis(50))
                .expect("ingest queue poisoned");
            inner = guard;
        }
    }
}

struct Subscription {
    id: u64,
    conn_id: u64,
    kind: SubscribeKind,
    key: u64,
    every_ticks: u64,
    threshold: u64,
}

struct Shared {
    cfg: ServerConfig,
    fleet: Fleet,
    queue: IngestQueue,
    conns: Mutex<BTreeMap<u64, Arc<Conn>>>,
    subs: Mutex<Vec<Subscription>>,
    global: Mutex<GlobalStats>,
    sub_drops: AtomicU64,
    shutdown: AtomicBool,
    /// Pairs with `shutdown_cv` so the scheduler's absolute-deadline
    /// wait (and any embedding loop) wakes the moment shutdown is
    /// requested instead of on its next poll.
    shutdown_mx: Mutex<()>,
    shutdown_cv: Condvar,
    /// Highest-applied ingest watermark per `HELLO` session: the value
    /// is one past the last applied `seq`, so `seq < watermark` means
    /// "already applied — ack, don't reapply".
    sessions: Mutex<HashMap<u64, u64>>,
    /// The seeded network-fault injector (inert when no schedule).
    injector: FaultInjector,
    next_conn_id: AtomicU64,
    next_sub_id: AtomicU64,
    reader_threads: Mutex<Vec<JoinHandle<()>>>,
    writer_threads: Mutex<Vec<JoinHandle<()>>>,
    started: Instant,
}

impl Shared {
    fn global(&self) -> MutexGuard<'_, GlobalStats> {
        self.global.lock().expect("global counters poisoned")
    }

    /// Flag shutdown and wake everything that might be waiting on it:
    /// the ingest queue and the shutdown condvar.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.cv.notify_all();
        let _guard = self.shutdown_mx.lock().expect("shutdown lock poisoned");
        self.shutdown_cv.notify_all();
    }

    /// Sleep until `deadline` or until shutdown is requested, whichever
    /// comes first. Returns true when shutdown was requested.
    fn wait_shutdown_until(&self, deadline: Instant) -> bool {
        let mut guard = self.shutdown_mx.lock().expect("shutdown lock poisoned");
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self
                .shutdown_cv
                .wait_timeout(guard, deadline - now)
                .expect("shutdown lock poisoned");
            guard = next;
        }
    }

    /// One consistent snapshot: global counters, queue depth/watermark,
    /// fleet shape, and per-connection counters, all under the global
    /// lock (the single place these locks nest).
    fn snapshot(&self) -> StatsSnapshot {
        let mut global = self.global().clone();
        {
            let q = self.queue.inner.lock().expect("ingest queue poisoned");
            global.queue_events = q.pending_events as u64;
            global.queue_hwm_events = q.hwm_events as u64;
        }
        global.subscriber_drops = self.sub_drops.load(Ordering::Relaxed);
        global.faults_injected = self.injector.injected_total();
        global.wal_retries = self.fleet.wal_retries();
        let conns: Vec<ConnStats> = self
            .conns
            .lock()
            .expect("conn registry poisoned")
            .values()
            .map(|c| c.stats())
            .collect();
        StatsSnapshot {
            global,
            engine: self.fleet.engine_stats(),
            conns,
        }
    }

    fn conn(&self, id: u64) -> Option<Arc<Conn>> {
        self.conns
            .lock()
            .expect("conn registry poisoned")
            .get(&id)
            .cloned()
    }
}

/// A running server. Dropping it without [`shutdown`](Server::shutdown)
/// still shuts down gracefully (drains and snapshots), discarding the
/// final stats.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    ingest: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, build the fleet, and spawn the acceptor, ingest loop, and
    /// scheduler.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let fleet = build_fleet(&cfg).map_err(io::Error::other)?;
        let injector = FaultInjector::new(cfg.faults.clone());
        let shared = Arc::new(Shared {
            queue: IngestQueue::new(cfg.queue_max_events),
            cfg,
            fleet,
            conns: Mutex::new(BTreeMap::new()),
            subs: Mutex::new(Vec::new()),
            global: Mutex::new(GlobalStats::default()),
            sub_drops: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            shutdown_mx: Mutex::new(()),
            shutdown_cv: Condvar::new(),
            sessions: Mutex::new(HashMap::new()),
            injector,
            next_conn_id: AtomicU64::new(1),
            next_sub_id: AtomicU64::new(1),
            reader_threads: Mutex::new(Vec::new()),
            writer_threads: Mutex::new(Vec::new()),
            started: Instant::now(),
        });
        let spawn = |name: &str, body: Box<dyn FnOnce() + Send>| -> io::Result<JoinHandle<()>> {
            let tag = name.to_string();
            std::thread::Builder::new()
                .name(tag.clone())
                .spawn(move || {
                    if catch_unwind(AssertUnwindSafe(body)).is_err() {
                        eprintln!("swsample-server: {tag} thread panicked");
                    }
                })
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            spawn(
                "swsample-acceptor",
                Box::new(move || accept_loop(shared, listener)),
            )?
        };
        let ingest = {
            let shared = Arc::clone(&shared);
            spawn("swsample-ingest", Box::new(move || ingest_loop(shared)))?
        };
        let scheduler = {
            let shared = Arc::clone(&shared);
            spawn(
                "swsample-scheduler",
                Box::new(move || scheduler_loop(shared)),
            )?
        };
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            ingest: Some(ingest),
            scheduler: Some(scheduler),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A consistent stats snapshot of the running server.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// True once shutdown has been requested — by a `SHUTDOWN` frame or
    /// a [`shutdown`](Server::shutdown) call.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Block up to `timeout` waiting for a shutdown request; true when
    /// one arrived. The embedding loop's alternative to polling
    /// [`shutdown_requested`](Server::shutdown_requested) on a timer.
    pub fn wait_shutdown_requested(&self, timeout: Duration) -> bool {
        self.shared.wait_shutdown_until(Instant::now() + timeout)
    }

    /// Graceful shutdown: stop accepting, unblock readers, drain every
    /// enqueued batch into the fleet, fsync + final-snapshot the WAL,
    /// flush and close every connection. Returns the final stats after
    /// printing the one-line stderr metrics summary.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> StatsSnapshot {
        self.shared.request_shutdown();
        // 1. Stop accepting — after this join the registry can only
        //    shrink, so no reader escapes the next step.
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // 2. Unblock and join every reader: no new work can enter the
        //    ingest queue once they are gone.
        for conn in self
            .shared
            .conns
            .lock()
            .expect("conn registry poisoned")
            .values()
        {
            let _ = conn.stream.shutdown(Shutdown::Read);
        }
        let readers: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .shared
                .reader_threads
                .lock()
                .expect("reader threads poisoned"),
        );
        for handle in readers {
            let _ = handle.join();
        }
        // 3. The ingest loop drains the queue fully — every accepted
        //    batch is applied and acked — then closes the fleet (final
        //    WAL fsync + snapshot).
        self.shared.queue.cv.notify_all();
        if let Some(handle) = self.ingest.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        let stats = self.shared.snapshot();
        // 4. Writers flush their rings (reader teardown closed them)
        //    and half-close the sockets.
        let writers: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .shared
                .writer_threads
                .lock()
                .expect("writer threads poisoned"),
        );
        for handle in writers {
            let _ = handle.join();
        }
        let elapsed = self.shared.started.elapsed().as_secs_f64().max(1e-9);
        let elems_per_sec = stats.global.events_applied as f64 / elapsed;
        eprintln!("{}", stats.metrics_line(elems_per_sec));
        stats
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() || self.ingest.is_some() || self.scheduler.is_some() {
            self.shutdown_inner();
        }
    }
}

fn build_fleet(cfg: &ServerConfig) -> Result<Fleet, String> {
    match &cfg.wal_dir {
        None => MultiStreamEngine::with_backend(
            cfg.template.clone(),
            cfg.shards,
            swsample_baselines::spec::build::<u64>,
            cfg.threads,
            cfg.backend,
        )
        .map(Fleet::Plain)
        .map_err(|e| e.to_string()),
        Some(dir) => {
            let opts = DurableOptions {
                segment_bytes: cfg.segment_bytes,
                snapshot_every: cfg.snapshot_every,
                faults: cfg.faults.clone(),
                ..DurableOptions::default()
            };
            let has_snapshot = std::fs::read_dir(dir)
                .map(|entries| {
                    entries
                        .flatten()
                        .any(|e| e.path().extension().map(|x| x == "snap").unwrap_or(false))
                })
                .unwrap_or(false);
            let engine = if has_snapshot {
                DurableEngine::open_with(
                    dir,
                    opts,
                    ResumeOverrides {
                        shards: Some(cfg.shards),
                        threads: Some(cfg.threads),
                        backend: Some(cfg.backend),
                    },
                )
            } else {
                DurableEngine::create(
                    dir,
                    cfg.template.clone(),
                    cfg.shards,
                    cfg.threads,
                    cfg.backend,
                    opts,
                )
            };
            engine
                .map(|e| Fleet::Durable(Box::new(Mutex::new(e))))
                .map_err(|e| e.to_string())
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let open = shared.conns.lock().expect("conn registry poisoned").len();
                if open >= shared.cfg.max_conns {
                    reject_conn(&shared, stream);
                } else if let Err(e) = spawn_conn(&shared, stream) {
                    eprintln!("swsample-server: failed to start connection: {e}");
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                eprintln!("swsample-server: accept error: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// At the `--max-conns` cap: one typed `OVERLOAD` frame, then close.
fn reject_conn(shared: &Shared, stream: TcpStream) {
    shared.global().conns_rejected += 1;
    let payload = ServerMsg::Error {
        code: ErrorCode::Overload,
        offset: 0,
        detail: format!(
            "server at its connection cap ({}); retry later",
            shared.cfg.max_conns
        ),
    }
    .encode();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut writer = BufWriter::new(stream);
    let _ = write_frame(&mut writer, &payload);
    let _ = writer.flush();
}

fn spawn_conn(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    if !shared.cfg.read_deadline.is_zero() {
        stream.set_read_timeout(Some(shared.cfg.read_deadline))?;
    }
    if !shared.cfg.write_deadline.is_zero() {
        stream.set_write_timeout(Some(shared.cfg.write_deadline))?;
    }
    let id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
    let conn = Arc::new(Conn {
        id,
        stream: stream.try_clone()?,
        out: Mutex::new(OutRing::new(shared.cfg.ring_capacity)),
        out_cv: Condvar::new(),
        events_in: AtomicU64::new(0),
        batches_in: AtomicU64::new(0),
        busy_rejections: AtomicU64::new(0),
        session: AtomicU64::new(0),
        last_activity_ms: AtomicU64::new(shared.started.elapsed().as_millis() as u64),
        reaped: AtomicBool::new(false),
        started: shared.started,
    });
    shared
        .conns
        .lock()
        .expect("conn registry poisoned")
        .insert(id, Arc::clone(&conn));
    {
        let mut g = shared.global();
        g.connections_total += 1;
        g.connections_open += 1;
    }
    let reader = {
        let shared = Arc::clone(shared);
        let conn = Arc::clone(&conn);
        let stream = stream.try_clone()?;
        std::thread::Builder::new()
            .name(format!("swsample-conn-{id}-r"))
            .spawn(move || {
                if catch_unwind(AssertUnwindSafe(|| reader_loop(&shared, &conn, stream))).is_err() {
                    eprintln!("swsample-server: connection {id} reader panicked");
                }
                // Teardown runs whether the reader returned or panicked.
                conn_teardown(&shared, &conn);
            })?
    };
    let writer = {
        let shared = Arc::clone(shared);
        let conn = Arc::clone(&conn);
        std::thread::Builder::new()
            .name(format!("swsample-conn-{id}-w"))
            .spawn(move || {
                if catch_unwind(AssertUnwindSafe(|| writer_loop(&shared, &conn, stream))).is_err() {
                    eprintln!("swsample-server: connection {id} writer panicked");
                }
            })?
    };
    shared
        .reader_threads
        .lock()
        .expect("reader threads poisoned")
        .push(reader);
    shared
        .writer_threads
        .lock()
        .expect("writer threads poisoned")
        .push(writer);
    Ok(())
}

fn conn_teardown(shared: &Shared, conn: &Conn) {
    shared
        .conns
        .lock()
        .expect("conn registry poisoned")
        .remove(&conn.id);
    shared
        .subs
        .lock()
        .expect("subscriptions poisoned")
        .retain(|s| s.conn_id != conn.id);
    shared.global().connections_open -= 1;
    conn.close_ring();
}

/// True for the error kinds a socket read/write deadline produces.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn reader_loop(shared: &Arc<Shared>, conn: &Arc<Conn>, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    let mut offset = 0u64;
    let mut hello_done = false;
    'conn: loop {
        // Wait at the frame boundary without consuming anything. A
        // read-deadline wakeup with no bytes pending is an idle poll —
        // patience here is fine, the scheduler reaps idle connections —
        // but once the first byte of a frame lands, the deadline below
        // applies to the *rest of that frame*.
        loop {
            match reader.fill_buf() {
                Ok([]) => break 'conn, // clean EOF
                Ok(_) => break,
                Err(e) if is_timeout(&e) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break 'conn;
                    }
                }
                Err(_) => break 'conn,
            }
        }
        let outcome = match read_client_msg(&mut reader, &mut offset) {
            Ok(outcome) => outcome,
            Err(e) if is_timeout(&e) => {
                // A frame started but the peer stalled past the read
                // deadline mid-frame: drop the connection.
                shared.global().deadline_drops += 1;
                let _ = conn.stream.shutdown(Shutdown::Both);
                break;
            }
            // Any other `Err` is a connection-level I/O failure: just
            // drop the connection.
            Err(_) => break,
        };
        let msg = match outcome {
            ReadOutcome::Eof => break,
            ReadOutcome::Bad(e) => {
                // Typed protocol error, then close: framing is
                // unrecoverable mid-stream. A torn frame here is a peer
                // that died mid-INGEST — the partial batch was never
                // decoded, so nothing of it can reach the fleet.
                if e.code == ErrorCode::TornFrame {
                    shared.global().partial_frames += 1;
                }
                send_protocol_error(conn, &e);
                break;
            }
            ReadOutcome::Msg(msg) => msg,
        };
        conn.touch();
        if !shared.injector.is_empty() {
            if let Some(hit) = shared.injector.check(FaultSite::StallRx) {
                std::thread::sleep(Duration::from_millis(hit.stall_ms));
            }
            if shared.injector.check(FaultSite::DropRx).is_some() {
                // Injected network fault: sever right after a complete
                // frame — the client sees a dead connection and must
                // reconnect and resend (dedup keeps it exactly-once).
                let _ = conn.stream.shutdown(Shutdown::Both);
                break;
            }
        }
        if !hello_done {
            match msg {
                ClientMsg::Hello {
                    version, session, ..
                } if version == PROTOCOL_VERSION => {
                    hello_done = true;
                    conn.session.store(session, Ordering::Relaxed);
                    conn.send(
                        false,
                        &ServerMsg::HelloAck {
                            version: PROTOCOL_VERSION,
                            conn_id: conn.id,
                            template: shared.fleet.template().to_string(),
                        },
                    );
                    continue;
                }
                ClientMsg::Hello { version, .. } => {
                    send_protocol_error(
                        conn,
                        &ProtocolError {
                            code: ErrorCode::Version,
                            offset,
                            detail: format!(
                                "client speaks version {version}, server speaks {PROTOCOL_VERSION}"
                            ),
                        },
                    );
                    break;
                }
                _ => {
                    send_protocol_error(
                        conn,
                        &ProtocolError {
                            code: ErrorCode::State,
                            offset,
                            detail: "first message must be HELLO".into(),
                        },
                    );
                    break;
                }
            }
        }
        match msg {
            ClientMsg::Hello { .. } => {
                send_protocol_error(
                    conn,
                    &ProtocolError {
                        code: ErrorCode::State,
                        offset,
                        detail: "duplicate HELLO".into(),
                    },
                );
                break;
            }
            ClientMsg::Ingest { seq, batch } => {
                let n = batch.len() as u64;
                conn.events_in.fetch_add(n, Ordering::Relaxed);
                conn.batches_in.fetch_add(1, Ordering::Relaxed);
                {
                    let mut g = shared.global();
                    g.events_in += n;
                    g.batches_in += 1;
                }
                if batch.is_empty() {
                    conn.send(false, &ServerMsg::IngestOk { seq, events: 0 });
                    continue;
                }
                match shared.queue.push(QueuedBatch {
                    conn_id: conn.id,
                    session: conn.session.load(Ordering::Relaxed),
                    seq,
                    events: batch,
                }) {
                    Ok(()) => {} // acked by the ingest loop once applied
                    Err(queued_events) => {
                        conn.busy_rejections.fetch_add(1, Ordering::Relaxed);
                        shared.global().busy_rejections += 1;
                        conn.send(false, &ServerMsg::Busy { seq, queued_events });
                    }
                }
            }
            ClientMsg::Query { key } => {
                let samples = shared.fleet.sample_k(key).map(|samples| {
                    samples
                        .iter()
                        .map(|s| (*s.value(), s.index(), s.timestamp()))
                        .collect()
                });
                conn.send(false, &ServerMsg::Samples { key, samples });
            }
            ClientMsg::Subscribe {
                kind,
                key,
                every_ticks,
                threshold,
            } => {
                let id = shared.next_sub_id.fetch_add(1, Ordering::SeqCst);
                shared
                    .subs
                    .lock()
                    .expect("subscriptions poisoned")
                    .push(Subscription {
                        id,
                        conn_id: conn.id,
                        kind,
                        key,
                        every_ticks: every_ticks.max(1),
                        threshold,
                    });
                conn.send(false, &ServerMsg::SubAck { id });
            }
            ClientMsg::Stats => {
                conn.send(false, &ServerMsg::StatsReply(shared.snapshot()));
            }
            ClientMsg::Bye => {
                conn.send(false, &ServerMsg::Bye);
                break;
            }
            ClientMsg::Shutdown => {
                conn.send(false, &ServerMsg::Bye);
                shared.request_shutdown();
                break;
            }
        }
    }
}

fn send_protocol_error(conn: &Conn, e: &ProtocolError) {
    conn.send(
        false,
        &ServerMsg::Error {
            code: e.code,
            offset: e.offset,
            detail: e.detail.clone(),
        },
    );
}

fn writer_loop(shared: &Shared, conn: &Conn, stream: TcpStream) {
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = {
            let mut ring = conn.out.lock().expect("out ring poisoned");
            loop {
                if let Some((_, payload)) = ring.entries.pop_front() {
                    break Some(payload);
                }
                if ring.closed {
                    break None;
                }
                ring = conn.out_cv.wait(ring).expect("out ring poisoned");
            }
        };
        match payload {
            Some(payload) => {
                // Build the frame in memory so injected faults can cut
                // or corrupt it byte-precisely.
                let mut frame = Vec::with_capacity(payload.len() + 16);
                if write_frame(&mut frame, &payload).is_err() {
                    break;
                }
                if !shared.injector.is_empty() {
                    if let Some(hit) = shared.injector.check(FaultSite::StallTx) {
                        std::thread::sleep(Duration::from_millis(hit.stall_ms));
                    }
                    if let Some(hit) = shared.injector.check(FaultSite::DropTx) {
                        // Injected fault: send a strict prefix of the
                        // frame, then sever — the peer sees a torn
                        // frame, reconnects, and resends (its ack for
                        // this batch is lost, so dedup must hold).
                        let cut = 1 + (hit.aux as usize) % (frame.len() - 1);
                        let _ = writer.write_all(&frame[..cut]);
                        let _ = writer.flush();
                        let _ = conn.stream.shutdown(Shutdown::Both);
                        break;
                    }
                    if let Some(hit) = shared.injector.check(FaultSite::FlipTx) {
                        // Injected fault: flip one byte in flight; the
                        // peer's CRC rejects the frame.
                        let at = (hit.aux as usize) % frame.len();
                        frame[at] ^= 0x20;
                    }
                }
                if let Err(e) = writer.write_all(&frame).and_then(|_| writer.flush()) {
                    // Write deadline exceeded means a consumer that
                    // stopped draining; anything else is a dead peer.
                    if is_timeout(&e) {
                        shared.global().deadline_drops += 1;
                        let _ = conn.stream.shutdown(Shutdown::Both);
                    }
                    break;
                }
            }
            None => break,
        }
    }
    let _ = writer.flush();
    let _ = conn.stream.shutdown(Shutdown::Write);
}

fn ingest_loop(shared: Arc<Shared>) {
    while let Some(batch) = shared.queue.pop(&shared.shutdown) {
        if !shared.cfg.drain_delay.is_zero() {
            std::thread::sleep(shared.cfg.drain_delay);
        }
        let n = batch.events.len() as u64;
        // Session dedup at *apply* time (not enqueue): after a lost ack
        // the client's resent copy can coexist in the FIFO with the
        // original, and only whichever drains first may apply. `seq <
        // watermark` is acked as applied — to the client an ack for a
        // dedup'd retry is indistinguishable from the lost original.
        let duplicate = batch.session != 0 && {
            let sessions = shared.sessions.lock().expect("session table poisoned");
            sessions
                .get(&batch.session)
                .is_some_and(|&watermark| batch.seq < watermark)
        };
        let reply = if duplicate {
            shared.global().dup_batches += 1;
            ServerMsg::IngestOk {
                seq: batch.seq,
                events: n,
            }
        } else {
            match shared.fleet.apply(&batch.events) {
                Ok(()) => {
                    shared.global().events_applied += n;
                    if batch.session != 0 {
                        shared
                            .sessions
                            .lock()
                            .expect("session table poisoned")
                            .insert(batch.session, batch.seq + 1);
                    }
                    ServerMsg::IngestOk {
                        seq: batch.seq,
                        events: n,
                    }
                }
                Err(detail) => ServerMsg::Error {
                    code: ErrorCode::Internal,
                    offset: 0,
                    detail,
                },
            }
        };
        if let Some(conn) = shared.conn(batch.conn_id) {
            conn.send(false, &reply);
        }
    }
    // Queue fully drained; make everything durable before exit.
    shared.fleet.close();
}

fn scheduler_loop(shared: Arc<Shared>) {
    let mut tick = 0u64;
    // Absolute deadlines: each tick is scheduled at `previous + tick`
    // rather than `now + tick`, so jitter doesn't accumulate and tick
    // cadence is independent of how long tick work takes. A shutdown
    // request wakes the wait immediately (no fixed-interval polling).
    let mut next = Instant::now() + shared.cfg.tick;
    loop {
        if shared.wait_shutdown_until(next) {
            break;
        }
        tick += 1;
        let now = Instant::now();
        next += shared.cfg.tick;
        if next < now {
            // We fell behind (a long reap or sample pass); resume the
            // cadence from now instead of burst-ticking to catch up.
            next = now + shared.cfg.tick;
        }
        shared.global().ticks = tick;
        reap_connections(&shared);
        // Clone the due subscriptions out so sampling and delivery run
        // without the subscription lock.
        let due: Vec<(u64, u64, SubscribeKind, u64, u64)> = shared
            .subs
            .lock()
            .expect("subscriptions poisoned")
            .iter()
            .filter(|s| tick.is_multiple_of(s.every_ticks))
            .map(|s| (s.id, s.conn_id, s.kind, s.key, s.threshold))
            .collect();
        if due.is_empty() {
            continue;
        }
        let mut keys: Vec<u64> = due.iter().map(|d| d.3).collect();
        keys.sort_unstable();
        keys.dedup();
        // One snapshot-consistent pass over the shard locks for every
        // due key.
        let samples = shared.fleet.sample_k_many(&keys);
        let aggregate = |key: u64| -> Option<(u64, u64)> {
            let at = keys.binary_search(&key).ok()?;
            let sample = samples[at].as_ref()?;
            let sum = sample.iter().map(|s| *s.value()).sum();
            Some((sample.len() as u64, sum))
        };
        for (id, conn_id, kind, key, threshold) in due {
            let Some((count, sum)) = aggregate(key) else {
                continue;
            };
            if kind == SubscribeKind::Threshold && sum < threshold {
                continue;
            }
            if let Some(conn) = shared.conn(conn_id) {
                let dropped = conn.send(
                    true,
                    &ServerMsg::Push {
                        id,
                        tick,
                        key,
                        count,
                        sum,
                    },
                );
                if dropped > 0 {
                    shared.sub_drops.fetch_add(dropped, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Scheduler-tick sweep over open connections: sever any that sat idle
/// past `idle_timeout`, and any subscriber whose ring dropped more
/// pushes than `slow_consumer_budget` (a consumer that persistently
/// can't keep up is better disconnected than silently lossy forever).
fn reap_connections(shared: &Shared) {
    let idle = shared.cfg.idle_timeout;
    let budget = shared.cfg.slow_consumer_budget;
    if idle.is_zero() && budget == 0 {
        return;
    }
    let now_ms = shared.started.elapsed().as_millis() as u64;
    let mut idle_victims: Vec<Arc<Conn>> = Vec::new();
    let mut slow_victims: Vec<Arc<Conn>> = Vec::new();
    {
        let conns = shared.conns.lock().expect("connections poisoned");
        for conn in conns.values() {
            let idle_for = now_ms.saturating_sub(conn.last_activity_ms.load(Ordering::Relaxed));
            let is_idle = !idle.is_zero() && u128::from(idle_for) >= idle.as_millis();
            let is_slow = budget > 0 && conn.out.lock().expect("out ring poisoned").drops > budget;
            if (is_idle || is_slow) && !conn.reaped.swap(true, Ordering::Relaxed) {
                if is_idle {
                    idle_victims.push(Arc::clone(conn));
                } else {
                    slow_victims.push(Arc::clone(conn));
                }
            }
        }
    }
    // Counters and socket teardown outside the connection-map lock; the
    // reader thread notices the severed socket and unregisters.
    if !idle_victims.is_empty() {
        shared.global().idle_reaped += idle_victims.len() as u64;
    }
    if !slow_victims.is_empty() {
        shared.global().slow_disconnects += slow_victims.len() as u64;
    }
    for conn in idle_victims.into_iter().chain(slow_victims) {
        let _ = conn.stream.shutdown(Shutdown::Both);
        conn.close_ring();
    }
}
