//! [`MultiStreamEngine`] — a sharded fleet of per-key window samplers.
//!
//! The paper maintains *one* window sample; a serving system maintains
//! one **per user**: millions of independent logical streams multiplexed
//! over one physical event feed, each answering the same window queries.
//! This engine is that shape. It owns a sharded registry of
//! [`ErasedWindowSampler`]s, one per key, all built lazily from a single
//! template [`SamplerSpec`] (each key gets its own derived RNG seed, so
//! per-key sample streams are mutually independent), and ingests a keyed
//! batch in shard-major, key-major order so the per-sampler batch fast
//! paths (skip-ahead hops, engine-major timestamp ingestion) still fire
//! even when arrivals interleave keys.
//!
//! Memory scales as the paper promises per key: a fleet of `m` active
//! keys with a sequence-WR template costs at most `m · (7k + 3)` words —
//! deterministic, because every per-key sampler inherits its theorem's
//! hard ceiling. [`MultiStreamEngine::memory_words`] and
//! [`MultiStreamEngine::max_key_memory_words`] expose both sides of that
//! accounting.
//!
//! ```
//! use swsample_core::spec::SamplerSpec;
//! use swsample_stream::MultiStreamEngine;
//!
//! // One 100-arrival WR window per user key.
//! let spec: SamplerSpec = "--window seq --n 100 --k 4 --seed 7".parse().unwrap();
//! let mut engine: MultiStreamEngine<u64, u64> = MultiStreamEngine::new(spec).unwrap();
//! engine.ingest(&[(17, 0, 111), (42, 0, 222), (17, 1, 333)]);
//! assert_eq!(engine.num_keys(), 2);
//! assert_eq!(engine.sample_k(&17).unwrap().len(), 4);
//! assert!(engine.sample_k(&7).is_none(), "untouched key has no window");
//! ```
//!
//! Sharding uses an FxHash-style multiply-rotate hash (the rustc /
//! Firefox workhorse) implemented locally — fast, deterministic across
//! runs, and dependency-free.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use swsample_core::spec::{SamplerFactory, SamplerSpec, SpecError};
use swsample_core::{ErasedWindowSampler, MemoryWords, Sample};

/// FxHash: multiply-rotate hashing as used by rustc. Not cryptographic —
/// exactly what a shard selector wants.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

/// `BuildHasher` for [`FxHasher`], usable as a `HashMap` hasher.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[inline]
fn fx_hash_key<K: Hash>(key: &K) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// SplitMix64 finalizer: decorrelates the per-key seed from the raw key
/// hash so adjacent keys do not get adjacent RNG streams.
#[inline]
fn mix_seed(template_seed: u64, key_hash: u64) -> u64 {
    let mut z = template_seed ^ key_hash.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A sharded registry of independent per-key window samplers, all
/// described by one template [`SamplerSpec`]. See the [module
/// docs](self) for the model and an example.
pub struct MultiStreamEngine<K, T: Clone> {
    template: SamplerSpec,
    factory: SamplerFactory<T>,
    shards: Vec<HashMap<K, Box<dyn ErasedWindowSampler<T>>, FxBuildHasher>>,
    shard_mask: u64,
    keys: usize,
}

impl<K, T: Clone> std::fmt::Debug for MultiStreamEngine<K, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiStreamEngine")
            .field("template", &self.template)
            .field("shards", &self.shards.len())
            .field("keys", &self.keys)
            .finish()
    }
}

impl<K: Hash + Eq + Clone, T: Clone + 'static> MultiStreamEngine<K, T> {
    /// Default shard count: enough to keep per-shard maps small without
    /// bloating empty engines.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Engine whose per-key samplers are built by
    /// [`SamplerSpec::build`] — i.e. the template must use a core-owned
    /// algorithm (paper or reservoir-l). Validates (and test-builds) the
    /// template eagerly.
    pub fn new(template: SamplerSpec) -> Result<Self, SpecError> {
        Self::with_factory(template, Self::DEFAULT_SHARDS, SamplerSpec::build::<T>)
    }

    /// Engine with an explicit shard count and sampler factory. Pass
    /// `swsample_baselines::spec::build` to allow baseline-algorithm
    /// templates. `shards` is rounded up to a power of two.
    pub fn with_factory(
        template: SamplerSpec,
        shards: usize,
        factory: SamplerFactory<T>,
    ) -> Result<Self, SpecError> {
        // Fail now, not on the millionth event: the factory must accept
        // the template (validity + algorithm coverage in one probe).
        factory(&template)?;
        let shards = shards.max(1).next_power_of_two();
        let mut maps = Vec::with_capacity(shards);
        maps.resize_with(shards, HashMap::default);
        Ok(Self {
            template,
            factory,
            shard_mask: shards as u64 - 1,
            shards: maps,
            keys: 0,
        })
    }

    /// The template every per-key sampler is built from (per-key seeds
    /// are derived from its `seed`).
    pub fn template(&self) -> &SamplerSpec {
        &self.template
    }

    /// Number of shards (a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of keys with materialized samplers.
    pub fn num_keys(&self) -> usize {
        self.keys
    }

    #[inline]
    fn shard_of(&self, hash: u64) -> usize {
        // Fx mixes well in the high bits; fold them down before masking.
        ((hash >> 32) ^ hash) as usize & self.shard_mask as usize
    }

    fn sampler_entry(&mut self, hash: u64, key: &K) -> &mut Box<dyn ErasedWindowSampler<T>> {
        let shard = self.shard_of(hash);
        let (template, factory, keys) = (&self.template, self.factory, &mut self.keys);
        self.shards[shard].entry(key.clone()).or_insert_with(|| {
            let mut spec = template.clone();
            spec.seed = mix_seed(template.seed, hash);
            *keys += 1;
            factory(&spec).expect("template was validated at construction")
        })
    }

    /// Ingest a keyed batch: `(key, now, value)` triples with
    /// non-decreasing `now` per key (for timestamp-window templates;
    /// sequence templates ignore `now`).
    ///
    /// Elements are regrouped shard-major then key-major — preserving
    /// per-key arrival order — and each key's consecutive same-timestamp
    /// run enters its sampler through one `advance_and_insert` call, so
    /// the skip/batch fast paths fire even on heavily interleaved feeds.
    /// Samplers for unseen keys are created lazily from the template.
    ///
    /// # Panics
    /// Panics if a key's timestamps run backwards (the per-key sampler's
    /// clock contract).
    pub fn ingest(&mut self, batch: &[(K, u64, T)]) {
        // (shard, key-hash, batch index): sorting groups shard-major then
        // key-major while the index keeps per-key arrival order. Distinct
        // keys that collide on hash are separated by the equality check
        // in the run loop below.
        let mut order: Vec<(u64, u32)> = batch
            .iter()
            .enumerate()
            .map(|(i, (key, _, _))| (fx_hash_key(key), i as u32))
            .collect();
        order.sort_unstable_by_key(|&(hash, i)| (self.shard_of(hash), hash, i));

        let mut run: Vec<T> = Vec::new();
        let mut pos = 0usize;
        while pos < order.len() {
            let (hash, first) = order[pos];
            let key = &batch[first as usize].0;
            // One maximal same-key stretch.
            let mut end = pos;
            while end < order.len()
                && order[end].0 == hash
                && batch[order[end].1 as usize].0 == *key
            {
                end += 1;
            }
            let sampler = self.sampler_entry(hash, key);
            // Split the stretch into maximal same-timestamp runs.
            let mut i = pos;
            while i < end {
                let now = batch[order[i].1 as usize].1;
                run.clear();
                while i < end && batch[order[i].1 as usize].1 == now {
                    run.push(batch[order[i].1 as usize].2.clone());
                    i += 1;
                }
                sampler.advance_and_insert(now, &run);
            }
            pos = end;
        }
    }

    /// The key's current `k`-sample, or `None` if the key has never
    /// arrived or its window is empty.
    pub fn sample_k(&mut self, key: &K) -> Option<Vec<Sample<T>>> {
        self.sampler_mut(key)?.sample_k()
    }

    /// One uniform sample from the key's window, or `None` as in
    /// [`sample_k`](MultiStreamEngine::sample_k).
    pub fn sample(&mut self, key: &K) -> Option<Sample<T>> {
        self.sampler_mut(key)?.sample()
    }

    /// Direct access to a key's sampler (queries take `&mut` — see
    /// [`swsample_core::WindowSampler`] on why).
    pub fn sampler_mut(&mut self, key: &K) -> Option<&mut Box<dyn ErasedWindowSampler<T>>> {
        let hash = fx_hash_key(key);
        let shard = self.shard_of(hash);
        self.shards[shard].get_mut(key)
    }

    /// Has this key a materialized sampler?
    pub fn contains_key(&self, key: &K) -> bool {
        let hash = fx_hash_key(key);
        self.shards[self.shard_of(hash)].contains_key(key)
    }

    /// Iterate over all materialized keys (shard order, unspecified
    /// within a shard).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.shards.iter().flat_map(|s| s.keys())
    }

    /// Largest single-key footprint in words — the quantity the paper's
    /// per-window theorems cap deterministically.
    pub fn max_key_memory_words(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.values())
            .map(|b| b.memory_words())
            .max()
            .unwrap_or(0)
    }
}

impl<K, T: Clone> MemoryWords for MultiStreamEngine<K, T> {
    /// Fleet-wide footprint: the sum of every per-key sampler's words.
    /// Registry scaffolding (hash-map tables, boxes) is bookkeeping
    /// outside the paper's §1.4 stream-element model, exactly as RNG
    /// state is excluded for single samplers.
    fn memory_words(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.values())
            .map(|b| b.memory_words())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::{ValueGen, ZipfGen};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seq_wr_spec(n: u64, k: usize, seed: u64) -> SamplerSpec {
        format!("--window seq --n {n} --k {k} --seed {seed}")
            .parse()
            .expect("spec")
    }

    #[test]
    fn fx_hash_is_deterministic_and_spreads() {
        let a = fx_hash_key(&1234u64);
        assert_eq!(a, fx_hash_key(&1234u64));
        assert_ne!(a, fx_hash_key(&1235u64));
        // Spread check: 4096 consecutive keys across 16 shards.
        let mut counts = [0usize; 16];
        for key in 0..4096u64 {
            let h = fx_hash_key(&key);
            counts[(((h >> 32) ^ h) & 15) as usize] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (128..=384).contains(&c),
                "shard {shard} got {c} of 4096 keys"
            );
        }
    }

    #[test]
    fn lazy_creation_and_per_key_windows() {
        let mut e: MultiStreamEngine<&str, u64> =
            MultiStreamEngine::new(seq_wr_spec(3, 2, 1)).expect("engine");
        assert_eq!(e.num_keys(), 0);
        e.ingest(&[
            ("alice", 0, 1),
            ("bob", 0, 100),
            ("alice", 0, 2),
            ("alice", 0, 3),
            ("alice", 0, 4),
        ]);
        assert_eq!(e.num_keys(), 2);
        assert!(e.contains_key(&"alice") && e.contains_key(&"bob"));
        // Alice's window is her last 3 arrivals — untouched by Bob's.
        for s in e.sample_k(&"alice").expect("nonempty") {
            assert!((2..=4).contains(s.value()), "stale sample {s:?}");
        }
        for s in e.sample_k(&"bob").expect("nonempty") {
            assert_eq!(*s.value(), 100);
        }
        assert!(e.sample_k(&"carol").is_none());
        assert!(e.sample(&"carol").is_none());
        assert_eq!(e.keys().count(), 2);
    }

    #[test]
    fn interleaved_ingest_equals_per_key_ingest() {
        // The grouped batched path must produce exactly the samples a
        // dedicated per-key sampler produces: grouping is a reordering
        // of already-commuting operations, and seeds are derived purely
        // from (template seed, key).
        let template = seq_wr_spec(10, 3, 99);
        let mut e: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::new(template.clone()).expect("engine");
        let keys = [3u64, 17, 290_017];
        let mut batch = Vec::new();
        for round in 0..200u64 {
            for &k in &keys {
                batch.push((k, 0u64, round * 10 + k));
            }
        }
        e.ingest(&batch);

        for &key in &keys {
            let mut spec = template.clone();
            spec.seed = mix_seed(template.seed, fx_hash_key(&key));
            let mut solo = spec.build::<u64>().expect("builds");
            let values: Vec<u64> = (0..200u64).map(|r| r * 10 + key).collect();
            solo.insert_batch(&values);
            assert_eq!(
                e.sample_k(&key),
                solo.sample_k(),
                "key {key}: engine diverges from dedicated sampler"
            );
        }
    }

    #[test]
    fn timestamp_template_expires_per_key() {
        let spec: SamplerSpec = "--window ts --w 5 --mode wor --k 2 --seed 4"
            .parse()
            .expect("spec");
        let mut e: MultiStreamEngine<u8, u64> = MultiStreamEngine::new(spec).expect("engine");
        let mut batch = Vec::new();
        for t in 0..50u64 {
            batch.push((1u8, t, t));
            if t % 3 == 0 {
                batch.push((2u8, t, 1000 + t));
            }
        }
        e.ingest(&batch);
        for s in e.sample_k(&1).expect("nonempty") {
            assert!(s.timestamp() >= 45, "expired sample {s:?}");
        }
        for s in e.sample_k(&2).expect("nonempty") {
            assert!(s.timestamp() >= 45 && *s.value() >= 1000);
        }
    }

    #[test]
    fn distinct_keys_get_distinct_seeds() {
        let template = seq_wr_spec(100, 4, 7);
        let mut e: MultiStreamEngine<u64, u64> = MultiStreamEngine::new(template).expect("engine");
        let batch: Vec<(u64, u64, u64)> = (0..64u64).map(|k| (k, 0, 1)).collect();
        e.ingest(&batch);
        let mut seeds: Vec<u64> = (0..64u64)
            .map(|k| {
                e.sampler_mut(&k)
                    .expect("present")
                    .spec()
                    .expect("built via spec")
                    .seed
            })
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64, "per-key seed collision");
    }

    #[test]
    fn rejects_bad_templates_eagerly() {
        // k = 0 is invalid; chain needs the baselines factory.
        let bad: SamplerSpec = "--window seq --n 5 --k 0".parse().expect("parses");
        assert!(MultiStreamEngine::<u64, u64>::new(bad).is_err());
        let chain: SamplerSpec = "--window seq --n 5 --algo chain".parse().expect("parses");
        assert!(MultiStreamEngine::<u64, u64>::new(chain).is_err());
    }

    /// The acceptance-criterion test: a 100k-key zipf-skewed stream
    /// through the batched keyed path, with every per-key footprint under
    /// the Theorem 2.1 cap and fleet memory under `keys · cap`.
    #[test]
    fn hundred_thousand_keys_within_paper_caps() {
        let (keys, k, n) = (100_000u64, 16usize, 1_000u64);
        let seq_wr_cap = 7 * k + 3; // Theorem 2.1 ceiling (see tests/theorem_bounds.rs)
        let mut e: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::with_factory(seq_wr_spec(n, k, 42), 64, SamplerSpec::build::<u64>)
                .expect("engine");

        let mut rng = SmallRng::seed_from_u64(7);
        let mut zipf = ZipfGen::new(keys, 1.05);
        let mut batch: Vec<(u64, u64, u64)> = Vec::with_capacity(1024);
        let total = 400_000u64;
        for i in 0..total {
            batch.push((zipf.next_value(&mut rng), i / 64, i));
            if batch.len() == 1024 {
                e.ingest(&batch);
                batch.clear();
            }
        }
        e.ingest(&batch);

        assert!(
            e.num_keys() > 40_000,
            "zipf(1.05) over 100k keys, 400k draws: expected ~48k distinct keys, got {}",
            e.num_keys()
        );
        assert!(
            e.max_key_memory_words() <= seq_wr_cap,
            "hottest key {} words > deterministic cap {seq_wr_cap}",
            e.max_key_memory_words()
        );
        assert!(
            e.memory_words() <= e.num_keys() * seq_wr_cap,
            "fleet {} words > {} keys x {seq_wr_cap}",
            e.memory_words(),
            e.num_keys()
        );
        // And the fleet still answers per-key queries.
        let hot = e.sample_k(&0).expect("hottest key nonempty");
        assert_eq!(hot.len(), k);
    }
}
