//! Quickstart: all four samplers of the paper in one tour.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample::core::seq::{SeqSamplerWor, SeqSamplerWr};
use swsample::core::ts::{TsSamplerWor, TsSamplerWr};
use swsample::core::{MemoryWords, WindowSampler};

fn main() {
    // ── Sequence-based windows: the last n arrivals ─────────────────────
    let n = 1_000u64;
    let k = 5usize;

    // Theorem 2.1: k uniform samples WITH replacement, O(k) words.
    let mut wr = SeqSamplerWr::new(n, k, SmallRng::seed_from_u64(1));
    // Theorem 2.2: k distinct uniform samples (WITHOUT replacement).
    let mut wor = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(2));

    for value in 0..25_000u64 {
        wr.insert(value);
        wor.insert(value);
    }

    println!("── sequence windows (n = {n}, k = {k}) after 25,000 arrivals ──");
    let samples = wr.sample_k().expect("window is non-empty");
    println!(
        "with replacement:    {:?}",
        samples.iter().map(|s| *s.value()).collect::<Vec<_>>()
    );
    let samples = wor.sample_k().expect("window is non-empty");
    println!(
        "without replacement: {:?}",
        samples.iter().map(|s| *s.value()).collect::<Vec<_>>()
    );
    println!(
        "memory: {} words (WR), {} words (WOR) — deterministic O(k), window-size independent",
        wr.memory_words(),
        wor.memory_words()
    );

    // ── Timestamp-based windows: the last t0 clock ticks ────────────────
    let t0 = 60u64; // e.g. "the last 60 seconds"
    let mut ts_wr = TsSamplerWr::new(t0, k, SmallRng::seed_from_u64(3));
    let mut ts_wor = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(4));

    // Bursty arrivals: tick 3·i carries i%7 events (bursts + gaps).
    let mut value = 0u64;
    for tick in 0..3_000u64 {
        ts_wr.advance_time(tick);
        ts_wor.advance_time(tick);
        for _ in 0..(tick % 7) {
            ts_wr.insert(value);
            ts_wor.insert(value);
            value += 1;
        }
    }

    println!("\n── timestamp windows (t0 = {t0} ticks) after {value} bursty arrivals ──");
    let samples = ts_wr.sample_k().expect("window is non-empty");
    println!(
        "with replacement:    {:?}",
        samples.iter().map(|s| *s.value()).collect::<Vec<_>>()
    );
    let samples = ts_wor.sample_k().expect("window is non-empty");
    println!(
        "without replacement: {:?}",
        samples.iter().map(|s| *s.value()).collect::<Vec<_>>()
    );
    println!(
        "memory: {} words (WR), {} words (WOR) — deterministic O(k log n)",
        ts_wr.memory_words(),
        ts_wor.memory_words()
    );
    println!("\nevery sample above is provably uniform over the current window —");
    println!("see `cargo run -p swsample-bench --bin experiments` for the evidence.");
}
