//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so this crate re-implements exactly the slice of `rand`
//! 0.8.5 that the `swsample` workspace uses:
//!
//! * [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//!   (`seed_from_u64`, `from_seed`);
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64, matching
//!   real `rand` 0.8's `SmallRng` on 64-bit targets bit for bit (see the
//!   golden-value test in `rngs`);
//! * [`distributions::Standard`] for the primitive types.
//!
//! Integer `gen_range` uses bitmask rejection sampling, so it is *exactly*
//! uniform — the workspace's samplers prove exact distributional claims
//! (see `swsample-core::rngutil`) and their chi-square acceptance tests
//! would catch a biased generator.
//!
//! If the registry ever becomes reachable, deleting `vendor/` and pointing
//! the workspace dependency back at crates.io `rand = "0.8"` is a drop-in
//! swap: every API here matches the upstream signature, and the swap is
//! behavior-preserving at the distribution level. Bit-for-bit stream
//! compatibility with upstream holds for `SmallRng::seed_from_u64` +
//! `next_u64` (golden-value test in `rngs`), but NOT for draws routed
//! through `gen_range` or `Standard`: upstream samples integers with
//! widening-multiply zone rejection, this crate with bitmask rejection —
//! same uniform distribution, different consumption of RNG words. After a
//! swap, seeded tests stay correct (they assert distributional and
//! structural properties, not pinned draw values), but exact sampled
//! values will differ.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 random bits against the scaled threshold, like upstream.
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for all practical RNGs).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded through SplitMix64.
    ///
    /// NOTE: this trait-level default is a simple SplitMix64 expansion and
    /// does NOT reproduce upstream `rand_core`'s default (which is
    /// PCG32-based). That is fine here because the only RNG in this crate,
    /// [`rngs::SmallRng`], overrides `seed_from_u64` with an
    /// implementation that matches upstream `rand` 0.8 exactly.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let z = splitmix64(&mut state);
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step (Steele, Lea, Flood 2014): advances `state` and
/// returns the mixed output. Single source of truth for seed expansion —
/// [`rngs::SmallRng`]'s stream-compatibility guarantee depends on these
/// exact constants.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// Gated like the code it exercises: `cargo test -p rand` without the
// `small_rng` feature must still compile (dependents enable the feature,
// standalone test runs don't).
#[cfg(all(test, feature = "small_rng"))]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    use super::RngCore;

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.gen_range(0..7u64);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "7 values in 1000 draws: {seen:?}");
        for _ in 0..1000 {
            let x = rng.gen_range(3..=5u64);
            assert!((3..=5).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_close_to_uniform() {
        // Bitmask rejection is exactly uniform; sanity-check empirically.
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 120_000u32;
        let mut counts = [0u32; 6];
        for _ in 0..n {
            counts[rng.gen_range(0..6usize)] += 1;
        }
        let expect = n as f64 / 6.0;
        for c in counts {
            assert!((c as f64 - expect).abs() < 0.05 * expect, "{counts:?}");
        }
    }

    #[test]
    fn gen_range_u128_huge_denominator() {
        let mut rng = SmallRng::seed_from_u64(11);
        let den = (u64::MAX as u128) * (u64::MAX as u128);
        for _ in 0..100 {
            assert!(rng.gen_range(0..den) < den);
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
    }
}
