//! Gemulla–Lehner top-k priority sampling (SIGMOD'08) — sampling *without
//! replacement* from timestamp-based windows.
//!
//! Natural extension of BDM priority sampling: every element draws a
//! priority in `(0,1)` and the sample is the `k` highest-priority active
//! elements. An element must be stored as long as fewer than `k` later
//! elements out-prioritize it (it could still enter the top-k once they
//! expire). Expected memory is `O(k log n)` — but, as with all
//! priority-based methods, only in expectation; the paper's Theorem 4.4
//! achieves the same bound deterministically.

use rand::Rng;
use std::collections::VecDeque;
use swsample_core::{MemoryWords, Sample, WindowSampler};

/// Stored element: sample, priority, and how many later elements have a
/// higher priority.
#[derive(Debug, Clone)]
struct Entry<T> {
    sample: Sample<T>,
    priority: f64,
    dominated_by: usize,
}

/// Gemulla–Lehner without-replacement priority sampler over a timestamp
/// window of width `t0`.
#[derive(Debug, Clone)]
pub struct PriorityTopK<T, R> {
    t0: u64,
    k: usize,
    now: u64,
    next_index: u64,
    rng: R,
    /// Arrival order; every entry has `dominated_by < k`.
    entries: VecDeque<Entry<T>>,
}

impl<T: Clone, R: Rng> PriorityTopK<T, R> {
    /// Sampler over windows of width `t0 ≥ 1` keeping the top `k ≥ 1`
    /// priorities.
    pub fn new(t0: u64, k: usize, rng: R) -> Self {
        assert!(t0 >= 1 && k >= 1);
        Self {
            t0,
            k,
            now: 0,
            next_index: 0,
            rng,
            entries: VecDeque::new(),
        }
    }

    /// Number of stored elements (the randomized quantity).
    pub fn stored(&self) -> usize {
        self.entries.len()
    }

    fn expire(&mut self, now: u64) {
        while self
            .entries
            .front()
            .is_some_and(|e| now - e.sample.timestamp() >= self.t0)
        {
            self.entries.pop_front();
        }
    }
}

impl<T, R> MemoryWords for PriorityTopK<T, R> {
    fn memory_words(&self) -> usize {
        // value + index + ts + priority + counter per entry.
        self.entries.len() * 5 + 4
    }
}

impl<T: Clone, R: Rng> WindowSampler<T> for PriorityTopK<T, R> {
    fn advance_time(&mut self, now: u64) {
        assert!(now >= self.now, "PriorityTopK: clock moved backwards");
        self.now = now;
        self.expire(now);
    }

    fn insert(&mut self, value: T) {
        let idx = self.next_index;
        self.next_index += 1;
        let priority: f64 = self.rng.gen_range(0.0..1.0);
        let k = self.k;
        for e in &mut self.entries {
            if e.priority < priority {
                e.dominated_by += 1;
            }
        }
        self.entries.retain(|e| e.dominated_by < k);
        self.entries.push_back(Entry {
            sample: Sample::new(value, idx, self.now),
            priority,
            dominated_by: 0,
        });
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        self.entries
            .iter()
            .max_by(|a, b| {
                a.priority
                    .partial_cmp(&b.priority)
                    .expect("priorities are finite")
            })
            .map(|e| e.sample.clone())
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        if self.entries.is_empty() {
            return None;
        }
        let mut sorted: Vec<&Entry<T>> = self.entries.iter().collect();
        sorted.sort_by(|a, b| b.priority.partial_cmp(&a.priority).expect("finite"));
        Some(
            sorted
                .into_iter()
                .take(self.k)
                .map(|e| e.sample.clone())
                .collect(),
        )
    }

    fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    fn drive(t0: u64, k: usize, ticks: u64, seed: u64) -> Option<Vec<Sample<u64>>> {
        let mut s = PriorityTopK::new(t0, k, SmallRng::seed_from_u64(seed));
        for tick in 0..ticks {
            s.advance_time(tick);
            s.insert(tick);
        }
        s.sample_k()
    }

    #[test]
    fn empty_returns_none() {
        let mut s: PriorityTopK<u64, _> = PriorityTopK::new(5, 2, SmallRng::seed_from_u64(0));
        assert!(s.sample_k().is_none());
    }

    #[test]
    fn k_distinct_active_samples() {
        for seed in 0..50 {
            let out = drive(12, 4, 40, seed).expect("nonempty");
            assert_eq!(out.len(), 4);
            let mut idx: Vec<u64> = out.iter().map(|s| s.index()).collect();
            idx.sort_unstable();
            for w in idx.windows(2) {
                assert_ne!(w[0], w[1]);
            }
            for &i in &idx {
                assert!(i >= 28, "expired sample {i}");
            }
        }
    }

    #[test]
    fn marginal_inclusion_uniform() {
        let (t0, k, ticks) = (8u64, 2usize, 24u64);
        let trials = 25_000u64;
        let mut counts = vec![0u64; t0 as usize];
        for t in 0..trials {
            for s in drive(t0, k, ticks, 40_000 + t).expect("nonempty") {
                counts[(s.index() - (ticks - t0)) as usize] += 1;
            }
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "GL top-k marginals: p = {}",
            out.p_value
        );
    }

    #[test]
    fn stored_is_randomized_but_not_tiny() {
        let mut s = PriorityTopK::new(512, 3, SmallRng::seed_from_u64(5));
        let mut max_stored = 0;
        for tick in 0..10_000u64 {
            s.advance_time(tick);
            s.insert(tick);
            max_stored = max_stored.max(s.stored());
        }
        assert!(max_stored >= 10, "stored stayed at {max_stored}");
    }

    #[test]
    fn fewer_than_k_active_returns_all() {
        let out = drive(3, 10, 30, 1).expect("nonempty");
        assert_eq!(out.len(), 3);
    }
}
