//! The boxed-sampler store: one `Box<dyn ErasedWindowSampler>` per key.
//!
//! This is the fallback fleet backend ([`FleetBackend::Erased`]): fully
//! general — any template any [`SamplerFactory`] can build, including the
//! baseline algorithm families — at the cost of one heap box and one
//! vtable dispatch per key per event. The homogeneous-template fast path
//! lives in [`super::soa`].
//!
//! [`FleetBackend::Erased`]: swsample_core::spec::FleetBackend::Erased

use swsample_core::spec::{SamplerFactory, SamplerSpec};
use swsample_core::state::{SamplerState, StateError};
use swsample_core::{ErasedWindowSampler, Sample};

/// Per-key boxed samplers, slot-aligned with the shard's
/// [`KeyRegistry`](super::registry::KeyRegistry).
pub(crate) struct ErasedStore<T: Clone> {
    samplers: Vec<Box<dyn ErasedWindowSampler<T>>>,
    template: SamplerSpec,
    factory: SamplerFactory<T>,
}

impl<T: Clone + 'static> ErasedStore<T> {
    pub(crate) fn new(template: SamplerSpec, factory: SamplerFactory<T>) -> Self {
        Self {
            samplers: Vec::new(),
            template,
            factory,
        }
    }

    /// Materialize the next key slot with the given derived seed.
    pub(crate) fn push_key(&mut self, seed: u64) {
        let mut spec = self.template.clone();
        spec.seed = seed;
        let sampler = (self.factory)(&spec).expect("template was validated at construction");
        self.samplers.push(sampler);
    }

    /// Mutable access to one key's sampler (the per-element dispatch the
    /// SoA backend exists to avoid).
    #[inline]
    pub(crate) fn sampler_mut(&mut self, slot: usize) -> &mut dyn ErasedWindowSampler<T> {
        self.samplers[slot].as_mut()
    }

    pub(crate) fn sample_k(&mut self, slot: usize) -> Option<Vec<Sample<T>>> {
        self.samplers[slot].sample_k()
    }

    pub(crate) fn sample(&mut self, slot: usize) -> Option<Sample<T>> {
        self.samplers[slot].sample()
    }

    pub(crate) fn memory_words(&self, slot: usize) -> usize {
        self.samplers[slot].memory_words()
    }

    /// One key's compact checkpoint record, or `None` when the boxed
    /// family does not support durable state (see
    /// [`swsample_core::WindowSampler::save_state`]).
    pub(crate) fn save_slot(&self, slot: usize) -> Option<SamplerState<T>> {
        self.samplers[slot].save_state()
    }

    /// Overwrite one key's state from a checkpoint record. The slot's
    /// sampler was built from the same template, so config mismatches
    /// reduce to family mismatches ([`StateError::Mismatch`]).
    pub(crate) fn restore_slot(
        &mut self,
        slot: usize,
        state: SamplerState<T>,
    ) -> Result<(), StateError> {
        self.samplers[slot].restore_state(state)
    }

    /// Store scaffolding per the §1.4 exclusions: each boxed sampler's
    /// fat pointer (2 words).
    pub(crate) fn overhead_words(&self) -> usize {
        self.samplers.len() * 2
    }
}
